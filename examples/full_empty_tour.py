"""A tour of the APRIL hardware mechanisms, at the assembly level.

    python examples/full_empty_tour.py

Demonstrates, on a 2-node machine:

1. the Table 2 load/store flavors and the ``Jfull``/``Jempty`` branches
   (a one-word producer/consumer channel);
2. an L-structure lock (the full/empty bit *is* the lock);
3. the frame-pointer instructions and per-context FPU register windows;
4. the interprocessor-interrupt and fence mechanisms of Section 3.4.
"""

from repro.isa.assembler import assemble
from repro.isa.tags import fixnum_value
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs
from repro.runtime.sync import SYNC_ASM, SyncAllocator

CHANNEL_DEMO = stubs.thread_start_stub() + SYNC_ASM + """
; main sends three values through a one-word channel to an inline
; consumer loop, using the non-trapping flavors + Jempty to poll once,
; then the trapping flavors to synchronize for real.
main:
    set channel, t6
    set 0, t4            ; sum
    set 3, t3            ; rounds
round:
    cmpr t3, 0
    ble done
    ; produce: store + set full (traps if still full = flow control)
    sll t3, 2, t2        ; value = fixnum(round)
    stftt t2, [t6+0]
    ; consume: load + set empty (would trap if empty)
    ldett [t6+0], t1
    addr t4, t1, t4
    ba round
    @subr t3, 1, t3
done:
    ; check the channel really is empty now, via the condition bit
    ldnt [t6+0], t0      ; non-trapping: just sets the f/e condition
    jempty was_empty
    set 0, a0            ; (wrong)
    ret
was_empty:
    mov t4, a0
    ret

.align 8
channel:
    .word 0
"""


def channel_demo():
    print("1. full/empty channel: produce/consume 3+2+1 through one word")
    machine = AlewifeMachine(assemble(CHANNEL_DEMO),
                             MachineConfig(num_processors=1))
    machine.memory.set_full(machine.program.address_of("channel"), False)
    result = machine.run()
    print("   result: %s (expected 6)\n" % result.value)
    assert result.value == 6


def lock_demo():
    print("2. L-structure lock: the word's full/empty bit is the lock")
    machine = AlewifeMachine(
        assemble(stubs.thread_start_stub() + "main:\n    set 0, a0\n    ret\n"),
        MachineConfig(num_processors=1))
    sync = SyncAllocator(machine)
    lock = sync.new_lock()
    print("   new lock at %#x: free=%s" % (lock, sync.lock_is_free(lock)))
    machine.memory.set_full(lock, False)   # what ldett does atomically
    print("   after ldett (acquire): free=%s" % sync.lock_is_free(lock))
    machine.memory.set_full(lock, True)
    print("   after stftt (release): free=%s\n" % sync.lock_is_free(lock))


def fpu_demo():
    print("3. per-context FPU windows: four contexts, eight registers each")
    from repro.core.fpu import FPU
    fpu = FPU()
    for context in range(4):
        fpu.write(context, 0, context * 1.5)
    values = [fpu.read(context, 0) for context in range(4)]
    print("   f0 per context: %s (no interference)\n" % values)
    assert values == [0.0, 1.5, 3.0, 4.5]


def ipi_demo():
    print("4. IPIs + fence: memory-mapped out-of-band operations")
    source = stubs.thread_start_stub() + """
    .equ IO_IPI_TARGET, 0x8
    .equ IO_IPI_SEND, 0xC
    main:
        set 0xFFFF, t0
        sll t0, 16, t0       ; t0 = 0xFFFF0000, the I/O register base
        set 1, t1
        stio t1, [t0+IO_IPI_TARGET]
        set 99, t1
        stio t1, [t0+IO_IPI_SEND]
        set 4, a0
        ret
    """
    config = MachineConfig(num_processors=2, memory_mode="coherent")
    machine = AlewifeMachine(assemble(source), config)
    received = []
    machine.runtime.set_ipi_receiver(
        lambda cpu, message: received.append((cpu.node_id, message)))
    result = machine.run()
    print("   node 0 sent IPI payload 99 to node 1; delivered: %s" % received)
    print("   main returned %s\n" % result.value)
    assert result.value == 1


def main():
    channel_demo()
    lock_demo()
    fpu_demo()
    ipi_demo()
    print("All mechanisms behaved as the paper describes.")


if __name__ == "__main__":
    main()
