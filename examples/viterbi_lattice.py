"""Domain example: the speech workload — a Viterbi lattice relaxation
with futures stored *into a data structure* (paper Sections 2.2/3.3).

    python examples/viterbi_lattice.py

Each lattice node's best-path score is computed by a future written
into the layer's vector; the next layer's tasks touch those entries
implicitly when they do arithmetic on them — word-grain
producer/consumer synchronization riding the future tag bits, with no
barrier between layers.
"""

from repro import workloads
from repro.lang.run import run_mult

speech = workloads.get("speech")


def main():
    layers, width = 6, 8
    expected = speech.reference(layers, width)
    print("Viterbi lattice: %d layers x %d nodes "
          "(best path score, native reference = %d)\n"
          % (layers, width, expected))

    rows = []
    for mode in ("sequential", "eager", "lazy"):
        for processors in (1, 4):
            if mode == "sequential" and processors > 1:
                continue
            result = run_mult(speech.source(), mode=mode,
                              processors=processors, args=(layers, width))
            assert result.value == expected, "simulation mismatch!"
            rows.append((mode, processors, result))

    base = rows[0][2].cycles
    print("%-11s %4s %12s %9s %9s %s" % (
        "mode", "cpus", "cycles", "speedup", "util", "touches hit/wait"))
    for mode, processors, result in rows:
        print("%-11s %4d %12d %8.2fx %8.1f%% %10d/%d" % (
            mode, processors, result.cycles, base / result.cycles,
            100 * result.stats.utilization,
            result.stats.touches_resolved,
            result.stats.touches_unresolved))
    print("\n'wait' touches are consumers that reached a lattice entry "
          "before its producer resolved it — the synchronization the "
          "full/empty mechanism makes cheap.")


if __name__ == "__main__":
    main()
