"""Quickstart: compile a Mul-T program with futures and run it on a
simulated APRIL multiprocessor.

    python examples/quickstart.py

Walks through the three Table 3 configurations on the same program:
sequential (futures stripped), eager task creation, and lazy task
creation, on 1 and 4 processors.
"""

from repro.lang.run import run_mult

PROGRAM = """
; Parallel Fibonacci: a future around each recursive call, exactly the
; paper's fib benchmark (Section 7).
(define (fib n)
  (if (< n 2)
      n
      (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main n) (fib n))
"""


def main():
    n = 10
    print("fib(%d) on simulated APRIL machines\n" % n)
    baseline = None
    for mode, processors in [
        ("sequential", 1),
        ("eager", 1), ("eager", 4),
        ("lazy", 1), ("lazy", 4),
    ]:
        result = run_mult(PROGRAM, mode=mode, processors=processors,
                          args=(n,))
        if baseline is None:
            baseline = result.cycles
        print("%-11s %d cpu%s: result=%-4d %9d cycles  (%.2fx T-seq)  "
              "%d futures, %d context switches" % (
                  mode, processors, "s" if processors > 1 else " ",
                  result.value, result.cycles,
                  result.cycles / baseline,
                  result.stats.futures_created,
                  result.stats.context_switches))
    print("\nLazy task creation inlines unstolen futures: compare the "
          "1-cpu rows.")


if __name__ == "__main__":
    main()
