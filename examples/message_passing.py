"""Message-passing on shared-memory hardware (paper Section 3.4).

    python examples/message_passing.py

APRIL's out-of-band mechanisms — interprocessor interrupts plus block
transfers — "form a primitive for the message-passing computational
model".  This example rings a token around four nodes through
full/empty-flow-controlled mailboxes, each hop delivered by an IPI,
while every node also runs an ordinary Mul-T computation: the two
models coexist on one machine.
"""

from repro.isa import tags
from repro.isa.assembler import assemble
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.machine.trace import Tracer
from repro.runtime import stubs
from repro.runtime.ipi import MessagePassing

#: Every node spins on a little arithmetic so the ring has time to turn.
PROGRAM = stubs.thread_start_stub() + """
main:
    set 3000, t0
loop:
    cmpr t0, 0
    ble done
    ba loop
    @subr t0, 1, t0
done:
    set 0, a0
    ret
"""


def main():
    nodes = 4
    laps = 3
    machine = AlewifeMachine(assemble(PROGRAM),
                             MachineConfig(num_processors=nodes))
    mp = MessagePassing(machine)
    tracer = Tracer(machine, capacity=200)
    hops = []

    def forward(node):
        def handler(src, words):
            value = tags.fixnum_value(words[0])
            hops.append((src, node, value))
            if value < nodes * laps:
                mp.send(node, (node + 1) % nodes,
                        [tags.make_fixnum(value + 1)],
                        charge_to=machine.cpus[node])
        return handler

    for node in range(nodes):
        mp.on_message(node, forward(node))

    # A compute thread on every node, so the ring interrupts real work.
    runtime = machine.runtime
    for node in range(1, nodes):
        closure = runtime.kernel_heap(node).closure(
            machine.program.address_of("main"))
        runtime.scheduler.enqueue(
            runtime.new_thread(node, entry_closure=closure,
                               name="worker-%d" % node), node)

    print("Token ring over %d nodes, %d laps, IPI per hop\n" % (nodes, laps))
    mp.send(0, 1, [tags.make_fixnum(1)])
    machine.run()

    for src, dst, value in hops:
        lap = (value - 1) // nodes + 1
        print("  hop %2d (lap %d): node %d -> node %d" % (value, lap, src, dst))
    print("\nmessages sent: %d, delivered: %d" % (mp.sent, mp.delivered))
    print("all %d processors also retired their compute loops:" % nodes)
    for cpu in machine.cpus:
        print("  node %d: %d instructions" % (
            cpu.node_id, cpu.stats.instructions))
    assert len(hops) == nodes * laps
    print("\nLast few traced instructions on the machine:")
    print("\n".join("  %r" % r for r in tracer.last(3)))


if __name__ == "__main__":
    main()
