"""Scalability study: explore the Section 8 model interactively.

    python examples/scalability_study.py

Prints Table 4, the Figure 5 decomposition, and two sweeps the paper
discusses in prose: context-switch cost and network latency tolerance.
"""

from repro.harness.figure5 import headline_numbers, render_report
from repro.model.params import ModelParams
from repro.model.utilization import solve, utilization_curve


def main():
    print(render_report())

    numbers = headline_numbers()
    print("\nHeadline numbers (paper Section 8):")
    print("  base round-trip latency : %d cycles (paper: 55)"
          % numbers["base_round_trip"])
    print("  U(1) = %.3f, U(3) = %.3f (paper: ~0.80 at three threads)"
          % (numbers["U(1)"], numbers["U(3)"]))
    print("  peak U = %.3f at p=%d, capped by network bandwidth "
          "(paper: ~0.80)" % (numbers["U_max"], numbers["plateau_at"]))

    print("\nContext-switch cost sweep at p=3 "
          "(the '10 cycles is fine' claim):")
    for c in (4, 10, 16, 32, 64):
        u, _, _ = solve(ModelParams(context_switch=c), 3)
        print("  C=%2d cycles -> U(3) = %.3f" % (c, u))

    print("\nLatency tolerance with 4 task frames "
          "(Section 3's 150-300 cycle range):")
    for radix in (20, 40, 80, 110):
        # Pure latency sweep: pin contention so only T varies.
        params = ModelParams(network_radix=radix)
        curve = utilization_curve(params, max_threads=4,
                                  vary_network=False)
        print("  T=%3d cycles -> U(1)=%.3f  U(4)=%.3f  (%.1fx from "
              "multithreading)" % (params.base_round_trip, curve[0],
                                   curve[3], curve[3] / curve[0]))


if __name__ == "__main__":
    main()
