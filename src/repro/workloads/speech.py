"""The ``speech`` benchmark (paper Section 7) — synthetic substitute.

The paper's ``speech`` is "a modified Viterbi graph search algorithm
used in a connected speech recognition system called SUMMIT".  SUMMIT's
lattices and acoustic scores are not available, so this module builds
the closest synthetic equivalent (see DESIGN.md substitutions): a
layered HMM-style lattice of ``layers`` x ``width`` nodes whose
transition costs come from a deterministic linear-congruential hash,
relaxed layer by layer with the Viterbi recurrence

    best[l][j] = min_k ( best[l-1][k] + cost(l, k, j) )

Each node relaxation is a ``future`` stored into the layer's vector —
word-level producer/consumer synchronization through futures in a data
structure, exactly the usage pattern Sections 2.2/3.3 motivate: the
next layer's tasks touch the previous layer's entries implicitly when
they do arithmetic on them.
"""

NAME = "speech"
DEFAULT_LAYERS = 5
DEFAULT_WIDTH = 10
TABLE3_LAYERS = 5
TABLE3_WIDTH = 10

#: LCG parameters: small enough that (x * MUL + INC) stays a fixnum.
_MUL = 1103
_INC = 12345
_MOD = 100003

SOURCE = """
; lj packs (layer, j) into one fixnum: lj = layer*1024 + j (width < 1024).
(define (hash-cost x)
  (remainder (+ (* x 1103) 12345) 100003))
(define (trans-cost lj k)
  (let ((layer (quotient lj 1024)) (j (remainder lj 1024)))
    (remainder (hash-cost (+ (* layer 919) (+ (* k 31) j))) 1000)))
(define (relax-loop prev width lj k)
  (if (= k width)
      999999
      (min2 (+ (vector-ref prev k) (trans-cost lj k))
            (relax-loop prev width lj (+ k 1)))))
(define (relax-node prev width lj)
  (relax-loop prev width lj 0))
(define (fill-layer v prev width lj)
  (if (= (remainder lj 1024) width)
      v
      (begin
        (vector-set! v (remainder lj 1024)
                     (future (relax-node prev width lj)))
        (fill-layer v prev width (+ lj 1)))))
(define (relax-layer prev width layer)
  (fill-layer (make-vector width 0) prev width (* layer 1024)))
(define (run-layers prev width layer layers)
  (if (= layer layers)
      prev
      (run-layers (relax-layer prev width layer) width (+ layer 1) layers)))
(define (vector-min v k n)
  (if (= k n)
      999999
      (min2 (vector-ref v k) (vector-min v (+ k 1) n))))
(define (main layers width)
  (let ((final (run-layers (make-vector width 0) width 1 (+ layers 1))))
    (vector-min final 0 width)))
"""


def source():
    """Mul-T source text; ``main`` takes (layers, width)."""
    return SOURCE


def _hash_cost(x):
    return (x * _MUL + _INC) % _MOD


def _trans_cost(layer, k, j):
    return _hash_cost(layer * 919 + k * 31 + j) % 1000


def reference(layers=DEFAULT_LAYERS, width=DEFAULT_WIDTH):
    """Expected best-path score, computed natively."""
    best = [0] * width
    for layer in range(1, layers + 1):
        best = [
            min(best[k] + _trans_cost(layer, k, j) for k in range(width))
            for j in range(width)
        ]
    return min(best)


def args(layers=DEFAULT_LAYERS, width=DEFAULT_WIDTH):
    """Argument tuple for ``main``."""
    return (layers, width)
