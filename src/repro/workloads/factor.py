"""The ``factor`` benchmark (paper Section 7).

"factor finds the largest prime factor of each number in a range of
numbers and sums them up."

Each number is independent work of uneven size (trial division), so the
workload has a natural medium grain.  The range is split by recursive
bisection with a ``future`` on one half — the standard Mul-T idiom that
gives both parallel slack and logarithmic stack depth.
"""

NAME = "factor"
DEFAULT_LO = 10000
DEFAULT_COUNT = 24
TABLE3_COUNT = 24

SOURCE = """
(define (lpf-loop n d)
  (cond ((> (* d d) n) n)
        ((= (remainder n d) 0) (lpf-loop (quotient n d) d))
        (else (lpf-loop n (+ d 1)))))
(define (largest-prime-factor n) (lpf-loop n 2))
(define (factor-range lo hi)
  (if (= lo hi)
      (largest-prime-factor lo)
      (let ((mid (quotient (+ lo hi) 2)))
        (+ (future (factor-range lo mid))
           (factor-range (+ mid 1) hi)))))
(define (main lo hi) (factor-range lo hi))
"""


def source():
    """Mul-T source text; ``main`` takes (lo, hi) inclusive."""
    return SOURCE


def _lpf(n):
    d = 2
    while d * d <= n:
        if n % d == 0:
            n //= d
        else:
            d += 1
    return n


def reference(lo=DEFAULT_LO, count=DEFAULT_COUNT):
    """Expected result: sum of largest prime factors over the range."""
    return sum(_lpf(n) for n in range(lo, lo + count))


def args(lo=DEFAULT_LO, count=DEFAULT_COUNT):
    """Argument tuple for ``main``: inclusive (lo, hi)."""
    return (lo, lo + count - 1)
