"""The ``queens`` benchmark (paper Section 7).

"queens finds all solutions to the n-queens chess problem" (n=8 in the
paper).  The search tree is explored with a ``future`` per subtree, the
classic Mul-T parallel backtracking idiom.  The board is a list of
already-placed column numbers shared read-only between tasks.

The default board is smaller than the paper's (8) to keep the
instruction-level simulation quick; the shape of the Table 3 columns
does not depend on the board size.
"""

NAME = "queens"
DEFAULT_N = 5
TABLE3_N = 5

SOURCE = """
(define (safe? col placed dist)
  (if (null? placed)
      #t
      (let ((p (car placed)))
        (and (not (= p col))
             (not (= (- p col) dist))
             (not (= (- col p) dist))
             (safe? col (cdr placed) (+ dist 1))))))
(define (try-cols n col placed remaining)
  (if (> col n)
      0
      (+ (if (safe? col placed 1)
             (future (place n (cons col placed) (- remaining 1)))
             0)
         (try-cols n (+ col 1) placed remaining))))
(define (place n placed remaining)
  (if (= remaining 0)
      1
      (try-cols n 1 placed remaining)))
(define (main n) (place n '() n))
"""


def source():
    """Mul-T source text; ``main`` takes the board size."""
    return SOURCE


def reference(n=DEFAULT_N):
    """Number of n-queens solutions, computed natively."""
    solutions = 0
    placed = []

    def place(row):
        nonlocal solutions
        if row == n:
            solutions += 1
            return
        for col in range(n):
            if all(col != c and abs(col - c) != row - r
                   for r, c in enumerate(placed)):
                placed.append(col)
                place(row + 1)
                placed.pop()

    place(0)
    return solutions


def args(n=DEFAULT_N):
    """Argument tuple for ``main``."""
    return (n,)
