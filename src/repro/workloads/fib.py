"""The ``fib`` benchmark (paper Section 7).

"fib is the ubiquitous doubly recursive Fibonacci program with
`future's around each of its recursive calls."

The finest-grain workload of the four: each task is a handful of
instructions, so it maximally stresses task-creation overhead — the
reason its eager-futures overhead factor is ~14x on APRIL and ~28x on
the Encore (Table 3), and the showcase for lazy task creation (~1.5x).
"""

NAME = "fib"
DEFAULT_N = 10        # paper runs were larger; n=10 keeps simulation fast
TABLE3_N = 10

SOURCE = """
(define (fib n)
  (if (< n 2)
      n
      (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main n) (fib n))
"""


def source():
    """Mul-T source text; ``main`` takes n."""
    return SOURCE


def reference(n=DEFAULT_N):
    """Expected result, computed natively."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def args(n=DEFAULT_N):
    """Argument tuple for ``main``."""
    return (n,)
