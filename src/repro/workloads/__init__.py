"""The four Mul-T benchmarks of the paper's Section 7 (Table 3)."""

from repro.workloads import factor, fib, queens, speech

ALL = (fib, factor, queens, speech)
BY_NAME = {module.NAME: module for module in ALL}


def get(name):
    """Look up a workload module by its paper name."""
    if name not in BY_NAME:
        raise KeyError(
            "unknown workload %r (have: %s)" % (name, ", ".join(BY_NAME)))
    return BY_NAME[name]
