"""The APRIL instruction set architecture (paper Section 4).

Tagged data encodings, the instruction set with the Table 2 full/empty
load/store flavors, binary encoding, a two-pass assembler with branch
delay slots, a disassembler, and a postpass delay-slot optimizer.
"""

from repro.isa.assembler import Program, assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction, Opcode
from repro.isa.optimizer import assemble_optimized

__all__ = [
    "Instruction", "Opcode", "Program",
    "assemble", "assemble_optimized", "disassemble", "decode", "encode",
]
