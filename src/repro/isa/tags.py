"""APRIL data type encodings (paper Figure 3).

APRIL words are 32 bits wide and carry their type in the low-order bits,
as in the Berkeley SPUR processor:

======== ============ ==========================================
Type     Low bits     Payload
======== ============ ==========================================
Fixnum   ``00``       signed 30-bit integer in the high 30 bits
Other    ``010``      8-byte-aligned pointer (vectors, closures)
Cons     ``110``      8-byte-aligned pointer to a pair
Future   ``101``      8-byte-aligned pointer to a future cell
======== ============ ==========================================

The crucial property (paper Section 4): *future pointers are detected by
their non-zero least significant bit*.  Compute instructions trap when an
operand has bit 0 set; memory instructions trap when an address operand
has bit 0 set.  Fixnum arithmetic operates directly on the tagged
representation because ``(a << 2) + (b << 2) == (a + b) << 2``.

Addresses are *byte* addresses (words live at multiples of 4).  Heap
objects are 8-byte aligned — "object allocation at word boundaries is
favored for other reasons" [11] — so the low three bits of a pointer are
free to hold the tag, and a tagged pointer is simply ``address | tag``.
Compiled code addresses a field of an object with a displacement that
cancels the tag, e.g. ``ld [consptr + (4 - TAG_CONS)], rd`` fetches the
cdr of a pair.
"""

from repro.errors import TagError

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
BYTES_PER_WORD = 4
OBJECT_ALIGN = 8

#: Low-bit tag values from Figure 3 of the paper.
TAG_FIXNUM = 0b00   # two-bit tag; any word with low bits 00
TAG_OTHER = 0b010
TAG_CONS = 0b110
TAG_FUTURE = 0b101

#: Mask covering a three-bit pointer tag.
PTR_TAG_MASK = 0b111

FIXNUM_MIN = -(1 << 29)
FIXNUM_MAX = (1 << 29) - 1

_TAG_NAMES = {
    TAG_OTHER: "other",
    TAG_CONS: "cons",
    TAG_FUTURE: "future",
}


def make_fixnum(value):
    """Encode a Python int as an APRIL fixnum word.

    Raises :class:`TagError` if the value does not fit in 30 signed bits.
    """
    if not FIXNUM_MIN <= value <= FIXNUM_MAX:
        raise TagError("fixnum out of range: %d" % value)
    return (value << 2) & WORD_MASK


def fixnum_value(word):
    """Decode a fixnum word into a signed Python int."""
    if word & 0b11:
        raise TagError("not a fixnum: %#010x" % word)
    value = word >> 2
    if value > (1 << 29) - 1:
        value -= 1 << 30
    return value


def is_fixnum(word):
    """True if the word carries the fixnum tag (low two bits ``00``)."""
    return (word & 0b11) == 0


def make_pointer(tag, address):
    """Encode an 8-byte-aligned byte address with a three-bit tag."""
    if tag not in _TAG_NAMES:
        raise TagError("invalid pointer tag: %#o" % tag)
    if address < 0 or address > WORD_MASK:
        raise TagError("address out of range: %d" % address)
    if address % OBJECT_ALIGN:
        raise TagError("pointer target not 8-byte aligned: %d" % address)
    return address | tag


def pointer_address(word):
    """Recover the 8-byte-aligned byte address from a tagged pointer."""
    return word & ~PTR_TAG_MASK & WORD_MASK


def pointer_tag(word):
    """Return the three-bit tag of a pointer word."""
    return word & PTR_TAG_MASK


def is_pointer(word):
    """True if the word carries any pointer tag (other/cons/future)."""
    return (word & PTR_TAG_MASK) in _TAG_NAMES


def is_future(word):
    """True if this word is a future pointer.

    Per the paper, futures are recognized by a set least-significant bit;
    of the defined encodings only ``101`` has bit 0 set.
    """
    return (word & PTR_TAG_MASK) == TAG_FUTURE


def has_future_lsb(word):
    """The hardware future-detection predicate: is bit 0 set?

    This is what the modified non-fixnum trap on SPARC tests (Section 5):
    it fires on *any* word whose lowest bit is set, which by construction
    is exactly the future tag.
    """
    return bool(word & 1)


def make_cons(address):
    """Encode a cons (pair) pointer."""
    return make_pointer(TAG_CONS, address)


def make_other(address):
    """Encode an 'other' pointer (vector, closure, string...)."""
    return make_pointer(TAG_OTHER, address)


def make_future(address):
    """Encode a future pointer."""
    return make_pointer(TAG_FUTURE, address)


def is_cons(word):
    """True for cons-tagged words."""
    return (word & PTR_TAG_MASK) == TAG_CONS


def is_other(word):
    """True for other-tagged words."""
    return (word & PTR_TAG_MASK) == TAG_OTHER


def tag_name(word):
    """Human-readable type name of a tagged word."""
    if is_fixnum(word):
        return "fixnum"
    return _TAG_NAMES.get(word & PTR_TAG_MASK, "untagged")


def describe(word):
    """Render a tagged word for debugging, e.g. ``fixnum(42)``."""
    if is_fixnum(word):
        return "fixnum(%d)" % fixnum_value(word)
    if is_pointer(word):
        return "%s@%d" % (tag_name(word), pointer_address(word))
    return "raw(%#010x)" % word
