"""A two-pass assembler for APRIL assembly.

Syntax (one statement per line; ``;`` starts a comment)::

    .equ NFRAMES, 4          ; named constant
    .org 0x100               ; move the location counter forward
    .word 42                 ; literal data word (label or integer)
    .fixnum -7               ; data word encoded as an APRIL fixnum
    .space 8                 ; reserve zeroed words

    entry:                   ; label (word address)
        set 1000, sp         ; pseudo: load a 32-bit constant
        add a0, 1, t0        ; compute: op rs1, rs2|imm, rd
        cmp t0, a1
        ble done
        ld [a0+1], t1        ; loads: op [base+offset], rd
        st t1, [sp+0]        ; stores: op src, [base+offset]
        call fact            ; PC-relative call, links ra
        ret                  ; pseudo: jmpl [ra+0], r0
    done:
        halt

**Branch delay slots.**  APRIL has a single-cycle branch delay slot
(paper Section 3).  The assembler keeps the toolchain honest by
automatically inserting a ``nop`` after every branch, ``call``, and
``jmpl`` (and the ``ret`` pseudo).  A source line beginning with ``@``
is placed *into* the preceding delay slot instead, letting hand-written
run-time code (or the optimizer in :mod:`repro.isa.optimizer`) fill
slots explicitly::

        call fact
        @mov t3, a0          ; executes in fact's delay slot

Pseudo-instructions: ``nop``, ``mov s, d``, ``set imm|label, d``,
``b label`` (alias ``ba``), ``ret``, ``ld``/``st`` (aliases for the
default trapping flavors ``ldnt``/``stnt``), ``neg s, d``, ``not s, d``,
``inc``/``dec d``.
"""

from repro.errors import AssemblerError
from repro.isa import registers, tags
from repro.isa.encoding import IMM11_MAX, IMM11_MIN, encode
from repro.isa.instructions import Category, Instruction, Opcode, category_of

#: Opcodes followed by an architectural delay slot.
DELAYED_OPS = frozenset(
    op for op in Opcode
    if category_of(op) in (Category.BRANCH, Category.JUMP)
)

_OPCODES_BY_NAME = {op.name.lower(): op for op in Opcode}

_ALIAS_OPS = {
    "ld": Opcode.LDNT,
    "st": Opcode.STNT,
    "b": Opcode.BA,
}


class Program:
    """An assembled APRIL program.

    All addresses are *byte* addresses; instructions and data words are
    4 bytes each, and ``words[i]`` lives at ``base + 4*i``.

    Attributes:
        base: byte address the program is linked at (multiple of 4).
        words: the encoded 32-bit instruction/data words.
        labels: mapping of label name to absolute byte address.
        source_map: mapping of byte address to (line number, source text).
    """

    def __init__(self, base, words, labels, source_map):
        self.base = base
        self.words = words
        self.labels = labels
        self.source_map = source_map

    def __len__(self):
        return len(self.words)

    @property
    def end(self):
        """First byte address past the program."""
        return self.base + 4 * len(self.words)

    def address_of(self, label):
        """Absolute byte address of a label."""
        if label not in self.labels:
            raise AssemblerError("unknown label: %s" % label)
        return self.labels[label]

    def location(self, address):
        """Source (line, text) for a byte address, or ``None``."""
        return self.source_map.get(address)


class _Statement:
    """One parsed source statement awaiting label resolution."""

    __slots__ = ("kind", "line", "mnemonic", "operands", "address", "size",
                 "is_slot")

    def __init__(self, kind, line, mnemonic=None, operands=(), is_slot=False):
        self.kind = kind          # 'instr' | 'word' | 'fixnum' | 'space'
        self.line = line
        self.mnemonic = mnemonic
        self.operands = operands
        self.address = None
        self.size = 1
        self.is_slot = is_slot    # auto-inserted branch delay slot nop


def _tokenize_operands(text):
    """Split an operand field on top-level commas."""
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, base=0):
        self.base = base

    def assemble(self, source):
        """Assemble APRIL assembly source text into a :class:`Program`."""
        statements, labels_at, equs = self._parse(source)
        labels = self._layout(statements, labels_at)
        labels.update(equs)
        return self._emit(statements, labels)

    # -- pass 0: parse ---------------------------------------------------

    def _parse(self, source):
        statements = []
        labels_at = []          # (label, statement index) pairs
        equs = {}
        pending_org = None
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.replace("_", "").isalnum() or label[0].isdigit():
                    raise AssemblerError("bad label %r" % label, lineno)
                labels_at.append((label, len(statements), pending_org))
                pending_org = None
                line = rest.strip()
            if not line:
                continue
            fill_slot = line.startswith("@")
            if fill_slot:
                line = line[1:].strip()
            mnemonic, _, operand_text = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = _tokenize_operands(operand_text)

            if mnemonic == ".equ":
                if len(operands) != 2:
                    raise AssemblerError(".equ needs name, value", lineno)
                equs[operands[0]] = self._parse_int(operands[1], lineno)
                continue
            if mnemonic == ".org":
                pending_org = self._parse_int(operands[0], lineno)
                statements.append(_Statement("org", lineno, operands=(pending_org,)))
                continue
            if mnemonic == ".word":
                statements.append(_Statement("word", lineno, operands=tuple(operands)))
                continue
            if mnemonic == ".fixnum":
                statements.append(
                    _Statement("fixnum", lineno, operands=tuple(operands))
                )
                continue
            if mnemonic == ".space":
                stmt = _Statement("space", lineno)
                stmt.size = self._parse_int(operands[0], lineno)
                statements.append(stmt)
                continue
            if mnemonic == ".align":
                stmt = _Statement("align", lineno)
                stmt.size = self._parse_int(operands[0], lineno)
                if stmt.size % 4 or stmt.size <= 0:
                    raise AssemblerError(
                        ".align needs a positive multiple of 4", lineno)
                statements.append(stmt)
                continue
            if mnemonic.startswith("."):
                raise AssemblerError("unknown directive %s" % mnemonic, lineno)

            for expanded in self._expand(mnemonic, operands, lineno):
                stmt = _Statement("instr", lineno, expanded[0], expanded[1])
                statements.append(stmt)
            if fill_slot:
                self._fill_previous_slot(statements, lineno)
            elif self._needs_delay_slot(mnemonic):
                statements.append(
                    _Statement("instr", lineno, "nop", (), is_slot=True)
                )
        return statements, labels_at, equs

    def _needs_delay_slot(self, mnemonic):
        op = _OPCODES_BY_NAME.get(mnemonic) or _ALIAS_OPS.get(mnemonic)
        if mnemonic == "ret":
            return True
        return op in DELAYED_OPS if op is not None else False

    def _fill_previous_slot(self, statements, lineno):
        """Move this just-appended instruction into the preceding nop slot."""
        if len(statements) < 2:
            raise AssemblerError("@-slot with no preceding branch", lineno)
        filler = statements.pop()
        prev = statements[-1]
        if prev.kind != "instr" or not prev.is_slot:
            raise AssemblerError(
                "@-slot must directly follow a branch/call/jmpl", lineno
            )
        statements[-1] = filler

    def _expand(self, mnemonic, operands, lineno):
        """Expand pseudo-instructions; yields (mnemonic, operands) pairs.

        ``set`` with a label or wide constant becomes ``lui``+``oril``;
        a narrow literal becomes a single ``addr``.
        """
        if mnemonic == "nop":
            return [("nop", ())]
        if mnemonic == "halt":
            return [("halt", ())]
        if mnemonic == "mov":
            self._arity(operands, 2, lineno)
            return [("or", (operands[0], "r0", operands[1]))]
        if mnemonic == "neg":
            self._arity(operands, 2, lineno)
            return [("subr", ("r0", operands[0], operands[1]))]
        if mnemonic == "not":
            self._arity(operands, 2, lineno)
            return [("xor", (operands[0], "-1", operands[1]))]
        if mnemonic == "inc":
            self._arity(operands, 1, lineno)
            return [("addr", (operands[0], "1", operands[0]))]
        if mnemonic == "dec":
            self._arity(operands, 1, lineno)
            return [("addr", (operands[0], "-1", operands[0]))]
        if mnemonic == "cmpr":
            # Raw compare: set CCs without the strict future check
            # (address and tag comparisons in run-time code).
            self._arity(operands, 2, lineno)
            return [("subr", (operands[0], operands[1], "r0"))]
        if mnemonic == "ret":
            return [("jmpl", ("[ra+0]", "r0"))]
        if mnemonic == "b":
            return [("ba", tuple(operands))]
        if mnemonic == "set":
            self._arity(operands, 2, lineno)
            value, rd = operands
            literal = self._try_int(value)
            if literal is not None and IMM11_MIN <= literal <= IMM11_MAX:
                return [("addr", ("r0", value, rd))]
            # Wide constant or label: lui/oril pair resolved in pass 2.
            return [("lui", (rd, "%hi:" + value)), ("oril", (rd, "%lo:" + value))]
        return [(mnemonic, tuple(operands))]

    @staticmethod
    def _arity(operands, count, lineno):
        if len(operands) != count:
            raise AssemblerError(
                "expected %d operands, got %d" % (count, len(operands)), lineno
            )

    # -- pass 1: layout ----------------------------------------------------

    def _layout(self, statements, labels_at):
        labels = {}
        address = self.base
        addresses = []
        for stmt in statements:
            if stmt.kind == "org":
                target = stmt.operands[0]
                if target < address:
                    raise AssemblerError(".org moves backwards", stmt.line)
                if target % 4:
                    raise AssemblerError(".org target not word aligned", stmt.line)
                addresses.append(address)
                address = target
                continue
            if stmt.kind == "align":
                boundary = stmt.size
                padding = (boundary - address % boundary) % boundary
                stmt.address = address
                stmt.size = padding // 4
                addresses.append(address)
                address += padding
                continue
            stmt.address = address
            addresses.append(address)
            if stmt.kind == "word" or stmt.kind == "fixnum":
                stmt.size = len(stmt.operands)
            address += stmt.size * 4
        for label, index, _org in labels_at:
            if label in labels:
                raise AssemblerError("duplicate label %r" % label)
            if index < len(statements):
                # Skip org/align to the next emitting statement.
                j = index
                while j < len(statements) and statements[j].kind in ("org", "align"):
                    j += 1
                labels[label] = statements[j].address if j < len(statements) else address
            else:
                labels[label] = address
        return labels

    # -- pass 2: emit --------------------------------------------------------

    def _emit(self, statements, labels):
        end = self.base
        for stmt in statements:
            if stmt.kind != "org":
                end = max(end, stmt.address + stmt.size * 4)
        words = [0] * ((end - self.base) // 4)
        source_map = {}
        for stmt in statements:
            if stmt.kind == "org":
                continue
            offset = (stmt.address - self.base) // 4
            if stmt.kind in ("space", "align"):
                continue
            if stmt.kind == "word":
                for k, operand in enumerate(stmt.operands):
                    words[offset + k] = self._resolve_value(operand, labels, stmt.line) & tags.WORD_MASK
            elif stmt.kind == "fixnum":
                for k, operand in enumerate(stmt.operands):
                    value = self._resolve_value(operand, labels, stmt.line)
                    words[offset + k] = tags.make_fixnum(value)
            else:
                instr = self._build(stmt, labels)
                try:
                    words[offset] = encode(instr)
                except Exception as exc:
                    raise AssemblerError(str(exc), stmt.line)
                source_map[stmt.address] = (stmt.line, "%s %s" % (
                    stmt.mnemonic, ", ".join(stmt.operands)))
        return Program(self.base, words, labels, source_map)

    def _build(self, stmt, labels):
        mnemonic, operands, lineno = stmt.mnemonic, stmt.operands, stmt.line
        op = _ALIAS_OPS.get(mnemonic) or _OPCODES_BY_NAME.get(mnemonic)
        if op is None:
            raise AssemblerError("unknown mnemonic %r" % mnemonic, lineno)
        cat = category_of(op)

        if op in (Opcode.LUI, Opcode.ORIL):
            self._arity(operands, 2, lineno)
            rd = self._reg(operands[0], lineno)
            imm = self._resolve_hilo(operands[1], labels, lineno)
            return Instruction(op, rd=rd, imm=imm, use_imm=True)

        if cat in (Category.COMPUTE, Category.LOGIC):
            if op is Opcode.CMP:
                self._arity(operands, 2, lineno)
                rs1 = self._reg(operands[0], lineno)
                rhs = operands[1]
                rd = 0
            else:
                self._arity(operands, 3, lineno)
                rs1 = self._reg(operands[0], lineno)
                rhs = operands[1]
                rd = self._reg(operands[2], lineno)
            reg = registers.register_number(rhs)
            if reg is not None:
                return Instruction(op, rd=rd, rs1=rs1, rs2=reg)
            imm = self._resolve_value(rhs, labels, lineno)
            return Instruction(op, rd=rd, rs1=rs1, imm=imm, use_imm=True)

        if cat is Category.LOAD or op is Opcode.LDIO:
            self._arity(operands, 2, lineno)
            rs1, imm = self._mem_operand(operands[0], labels, lineno)
            rd = self._reg(operands[1], lineno)
            return Instruction(op, rd=rd, rs1=rs1, imm=imm, use_imm=True)

        if cat is Category.STORE or op is Opcode.STIO:
            self._arity(operands, 2, lineno)
            rd = self._reg(operands[0], lineno)
            rs1, imm = self._mem_operand(operands[1], labels, lineno)
            return Instruction(op, rd=rd, rs1=rs1, imm=imm, use_imm=True)

        if cat is Category.BRANCH or op is Opcode.CALL:
            self._arity(operands, 1, lineno)
            target = operands[0]
            literal = self._try_int(target)
            if literal is not None:
                offset = literal  # explicit offsets are in instructions
            else:
                if target not in labels:
                    raise AssemblerError("unknown label %r" % target, lineno)
                delta = labels[target] - stmt.address
                if delta % 4:
                    raise AssemblerError(
                        "branch target %r not word aligned" % target, lineno
                    )
                offset = delta >> 2
            return Instruction(op, imm=offset, use_imm=True)

        if op is Opcode.JMPL:
            self._arity(operands, 2, lineno)
            rs1, imm = self._mem_operand(operands[0], labels, lineno)
            rd = self._reg(operands[1], lineno)
            return Instruction(op, rd=rd, rs1=rs1, imm=imm, use_imm=True)

        if op is Opcode.TRAP:
            self._arity(operands, 1, lineno)
            return Instruction(
                op, imm=self._resolve_value(operands[0], labels, lineno),
                use_imm=True,
            )

        if op is Opcode.FLUSH:
            self._arity(operands, 1, lineno)
            rs1, imm = self._mem_operand(operands[0], labels, lineno)
            return Instruction(op, rs1=rs1, imm=imm, use_imm=True)

        if op in (Opcode.RDFP, Opcode.RDPSR):
            self._arity(operands, 1, lineno)
            return Instruction(op, rd=self._reg(operands[0], lineno))

        if op in (Opcode.STFP, Opcode.WRPSR):
            self._arity(operands, 1, lineno)
            return Instruction(op, rs1=self._reg(operands[0], lineno))

        if operands:
            raise AssemblerError("%s takes no operands" % mnemonic, lineno)
        return Instruction(op)

    # -- operand helpers -----------------------------------------------------

    def _reg(self, text, lineno):
        number = registers.register_number(text)
        if number is None:
            raise AssemblerError("expected register, got %r" % text, lineno)
        return number

    def _mem_operand(self, text, labels, lineno):
        """Parse ``[reg+offset]`` / ``[reg-offset]`` / ``[reg]``."""
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise AssemblerError("expected [base+offset], got %r" % text, lineno)
        inner = text[1:-1].strip()
        for sep in ("+", "-"):
            if sep in inner:
                base_text, _, offset_text = inner.partition(sep)
                base = self._reg(base_text.strip(), lineno)
                offset = self._resolve_value(offset_text.strip(), labels, lineno)
                return base, (offset if sep == "+" else -offset)
        return self._reg(inner, lineno), 0

    @staticmethod
    def _try_int(text):
        try:
            return int(text, 0)
        except ValueError:
            return None

    def _parse_int(self, text, lineno):
        value = self._try_int(text)
        if value is None:
            raise AssemblerError("expected integer, got %r" % text, lineno)
        return value

    def _resolve_value(self, text, labels, lineno):
        literal = self._try_int(text)
        if literal is not None:
            return literal
        if labels is not None and text in labels:
            return labels[text]
        raise AssemblerError("unresolved symbol %r" % text, lineno)

    def _resolve_hilo(self, text, labels, lineno):
        """Resolve a ``%hi:``/``%lo:`` operand from a ``set`` expansion."""
        if text.startswith("%hi:"):
            value = self._resolve_value(text[4:], labels, lineno) & tags.WORD_MASK
            return (value >> 14) & 0x3FFFF
        if text.startswith("%lo:"):
            value = self._resolve_value(text[4:], labels, lineno) & tags.WORD_MASK
            return value & 0x3FFF
        return self._resolve_value(text, labels, lineno)


def assemble(source, base=0):
    """Assemble source text at a base word address (module-level helper)."""
    return Assembler(base=base).assemble(source)
