"""The APRIL instruction set (paper Section 4, Tables 1 and 2).

APRIL is a basic RISC instruction set augmented with special memory
instructions for full/empty-bit operations, multithreading, and cache
support.  The categories follow Table 1 of the paper:

* **Compute** — three-address register-to-register ALU operations.
  Condition codes are set as a side effect.  *Strict* compute
  instructions (arithmetic, compare) trap when an operand is a future
  (detected by its set least-significant bit, Section 4).
* **Memory** — loads/stores interacting with the cache controller and
  the full/empty bits.  The eight load flavors of Table 2 (and the
  symmetric eight stores) are enumerated here with their trap/wait and
  set-bit semantics.
* **Branch / jump** — conditional branches on ALU condition codes, the
  ``Jfull``/``Jempty`` branches on the full/empty condition bit, and the
  ``jmpl`` jump-and-link.
* **Frame pointer** — ``INCFP``/``DECFP``/``RDFP``/``STFP`` manipulate
  the task-frame pointer (Section 4).
* **Trap / PSR** — software traps (the run-time system's entry points),
  ``rdpsr``/``wrpsr``, and ``rett``.
* **Out-of-band** — ``FLUSH``, ``LDIO``, ``STIO`` for the multimodel
  mechanisms of Section 3.4 (software coherence, IPIs, block transfer,
  fence).
"""

import enum

from repro.isa import registers


class Category(enum.Enum):
    """Broad instruction classes, mirroring Table 1."""

    COMPUTE = "compute"   # strict ALU ops: future-detecting, set CCs
    LOGIC = "logic"       # raw bit ops: no strictness, set CCs
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    FRAME = "frame"       # FP manipulation
    SYSTEM = "system"     # trap, rdpsr/wrpsr, rett, nop
    OOB = "oob"           # out-of-band: flush, ldio, stio


class Opcode(enum.IntEnum):
    """All APRIL opcodes.  Values are the 8-bit opcode field."""

    # -- strict compute (trap on future operand, set condition codes) --
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04       # truncating quotient
    REM = 0x05       # remainder
    CMP = 0x06       # subtract, set CCs, discard result

    # -- raw logic / address arithmetic (no future trap, set CCs) --
    AND = 0x10
    OR = 0x11
    XOR = 0x12
    ANDN = 0x13
    SLL = 0x14
    SRL = 0x15
    SRA = 0x16
    ADDR = 0x17      # raw add: address arithmetic / tag manipulation
    SUBR = 0x18      # raw subtract
    LUI = 0x19       # rd = imm18 << 14
    ORIL = 0x1A      # rd |= imm18 (low bits); pairs with LUI for SET

    # -- loads (Table 2): ld[e][t|n][t|w] --------------------------------
    # naming: optional 'e' = set f/e bit to Empty after the load;
    # then Trap / No-trap on an empty location;
    # then Trap / Wait on a remote cache miss.
    LDTT = 0x20
    LDETT = 0x21
    LDNT = 0x22
    LDENT = 0x23
    LDNW = 0x24
    LDENW = 0x25
    LDTW = 0x26
    LDETW = 0x27
    LDR = 0x28       # raw load: ignores f/e and future-address traps
                     # (run-time system internal; waits on miss)

    # -- stores: st[f][t|n][t|w]; trap on *full* locations ---------------
    STTT = 0x30
    STFTT = 0x31
    STNT = 0x32
    STFNT = 0x33
    STNW = 0x34
    STFNW = 0x35
    STTW = 0x36
    STFTW = 0x37
    STR = 0x38       # raw store (run-time internal; waits on miss)

    # -- branches (PC-relative, 24-bit word offset) -----------------------
    BA = 0x40
    BN = 0x41        # branch never (useful as annulled nop slot)
    BE = 0x42
    BNE = 0x43
    BL = 0x44        # signed less
    BLE = 0x45
    BG = 0x46
    BGE = 0x47
    BNEG = 0x48
    BPOS = 0x49
    BCS = 0x4A       # carry set (unsigned less)
    BCC = 0x4B
    BVS = 0x4C
    BVC = 0x4D
    JFULL = 0x4E     # branch if full/empty condition bit says "full"
    JEMPTY = 0x4F

    # -- jumps -------------------------------------------------------------
    JMPL = 0x50      # rd <- return PC; PC <- R[rs1] + imm
    CALL = 0x51      # ra <- return PC; PC <- PC + offset (24-bit)

    # -- frame pointer manipulation (Section 4) ----------------------------
    INCFP = 0x58
    DECFP = 0x59
    RDFP = 0x5A
    STFP = 0x5B

    # -- system -------------------------------------------------------------
    TRAP = 0x60      # software trap to vector imm
    RDPSR = 0x61
    WRPSR = 0x62
    RETT = 0x63      # return from trap (retry or resume per trap frame)
    NOP = 0x64
    HALT = 0x65      # stop this processor (simulator control)

    # -- out-of-band (Section 3.4 mechanisms) -------------------------------
    FLUSH = 0x70     # write back + invalidate the cache line of [rs1+imm]
    LDIO = 0x71      # memory-mapped I/O read (fence counter, IPI status)
    STIO = 0x72      # memory-mapped I/O write (IPI send, block transfer)


class LoadFlavor:
    """Semantics of one load opcode (a row of Table 2)."""

    __slots__ = ("set_empty", "trap_on_empty", "wait_on_miss", "raw")

    def __init__(self, set_empty, trap_on_empty, wait_on_miss, raw=False):
        self.set_empty = set_empty
        self.trap_on_empty = trap_on_empty
        self.wait_on_miss = wait_on_miss
        self.raw = raw


class StoreFlavor:
    """Semantics of one store opcode (mirror of Table 2 for stores)."""

    __slots__ = ("set_full", "trap_on_full", "wait_on_miss", "raw")

    def __init__(self, set_full, trap_on_full, wait_on_miss, raw=False):
        self.set_full = set_full
        self.trap_on_full = trap_on_full
        self.wait_on_miss = wait_on_miss
        self.raw = raw


#: Table 2 of the paper, transcribed.  "wait_on_miss" False means the
#: controller traps the processor on a remote miss (forcing a context
#: switch); True means it holds the processor until the data arrives.
LOAD_FLAVORS = {
    Opcode.LDTT: LoadFlavor(False, True, False),
    Opcode.LDETT: LoadFlavor(True, True, False),
    Opcode.LDNT: LoadFlavor(False, False, False),
    Opcode.LDENT: LoadFlavor(True, False, False),
    Opcode.LDNW: LoadFlavor(False, False, True),
    Opcode.LDENW: LoadFlavor(True, False, True),
    Opcode.LDTW: LoadFlavor(False, True, True),
    Opcode.LDETW: LoadFlavor(True, True, True),
    Opcode.LDR: LoadFlavor(False, False, True, raw=True),
}

STORE_FLAVORS = {
    Opcode.STTT: StoreFlavor(False, True, False),
    Opcode.STFTT: StoreFlavor(True, True, False),
    Opcode.STNT: StoreFlavor(False, False, False),
    Opcode.STFNT: StoreFlavor(True, False, False),
    Opcode.STNW: StoreFlavor(False, False, True),
    Opcode.STFNW: StoreFlavor(True, False, True),
    Opcode.STTW: StoreFlavor(False, True, True),
    Opcode.STFTW: StoreFlavor(True, True, True),
    Opcode.STR: StoreFlavor(True, False, True, raw=True),
}

#: Strict ALU opcodes: trap when an operand has its LSB set (a future).
STRICT_COMPUTE = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM, Opcode.CMP}
)

RAW_LOGIC = frozenset(
    {
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.ANDN,
        Opcode.SLL, Opcode.SRL, Opcode.SRA,
        Opcode.ADDR, Opcode.SUBR, Opcode.LUI, Opcode.ORIL,
    }
)

BRANCHES = frozenset(op for op in Opcode if 0x40 <= op.value <= 0x4F)

_CATEGORY_RANGES = (
    (0x01, 0x06, Category.COMPUTE),
    (0x10, 0x1A, Category.LOGIC),
    (0x20, 0x28, Category.LOAD),
    (0x30, 0x38, Category.STORE),
    (0x40, 0x4F, Category.BRANCH),
    (0x50, 0x51, Category.JUMP),
    (0x58, 0x5B, Category.FRAME),
    (0x60, 0x65, Category.SYSTEM),
    (0x70, 0x72, Category.OOB),
)


def category_of(opcode):
    """Return the :class:`Category` of an opcode."""
    value = int(opcode)
    for lo, hi, cat in _CATEGORY_RANGES:
        if lo <= value <= hi:
            return cat
    raise ValueError("unknown opcode: %r" % (opcode,))


class Instruction:
    """A decoded APRIL instruction.

    ``rd``/``rs1``/``rs2`` are encoded register numbers (0..39); ``imm``
    is a signed immediate (its width depends on the format); ``use_imm``
    selects the I-form of three-operand instructions.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "use_imm")

    def __init__(self, op, rd=0, rs1=0, rs2=0, imm=0, use_imm=False):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.use_imm = use_imm

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.op == other.op
            and self.rd == other.rd
            and self.rs1 == other.rs1
            and self.rs2 == other.rs2
            and self.imm == other.imm
            and self.use_imm == other.use_imm
        )

    def __hash__(self):
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm, self.use_imm))

    def __repr__(self):
        return "Instruction(%s, rd=%d, rs1=%d, rs2=%d, imm=%d, use_imm=%s)" % (
            self.op.name, self.rd, self.rs1, self.rs2, self.imm, self.use_imm
        )

    @property
    def category(self):
        """The instruction's :class:`Category`."""
        return category_of(self.op)

    def source_registers(self):
        """Encoded register numbers this instruction reads."""
        cat = self.category
        regs = []
        if cat in (Category.COMPUTE, Category.LOGIC):
            if self.op not in (Opcode.LUI, Opcode.ORIL):
                regs.append(self.rs1)
                if not self.use_imm:
                    regs.append(self.rs2)
            if self.op is Opcode.ORIL:
                regs.append(self.rd)
        elif cat is Category.LOAD:
            regs.append(self.rs1)
        elif cat is Category.STORE:
            regs.extend((self.rs1, self.rd))
        elif cat is Category.JUMP:
            regs.append(self.rs1)
        elif self.op in (Opcode.STFP, Opcode.WRPSR):
            regs.append(self.rs1)
        elif cat is Category.OOB:
            regs.append(self.rs1)
            if self.op is Opcode.STIO:
                regs.append(self.rd)
        return regs

    def destination_register(self):
        """Encoded register this instruction writes, or ``None``."""
        cat = self.category
        if cat in (Category.COMPUTE, Category.LOGIC):
            if self.op is Opcode.CMP:
                return None
            return self.rd
        if cat is Category.LOAD or self.op in (
            Opcode.JMPL, Opcode.RDFP, Opcode.RDPSR, Opcode.LDIO
        ):
            return self.rd
        return None


def render_operand(value):
    """Format an immediate for disassembly."""
    if -4096 < value < 4096:
        return str(value)
    return hex(value)


def render(instr):
    """Disassemble one :class:`Instruction` to canonical assembly text."""
    op = instr.op
    name = op.name.lower()
    cat = category_of(op)
    rn = registers.register_name
    if cat in (Category.COMPUTE, Category.LOGIC):
        if op in (Opcode.LUI, Opcode.ORIL):
            return "%s %s, %s" % (name, rn(instr.rd), render_operand(instr.imm))
        rhs = render_operand(instr.imm) if instr.use_imm else rn(instr.rs2)
        if op is Opcode.CMP:
            return "%s %s, %s" % (name, rn(instr.rs1), rhs)
        return "%s %s, %s, %s" % (name, rn(instr.rs1), rhs, rn(instr.rd))
    if cat is Category.LOAD or op is Opcode.LDIO:
        return "%s [%s%+d], %s" % (name, rn(instr.rs1), instr.imm, rn(instr.rd))
    if cat is Category.STORE or op is Opcode.STIO:
        return "%s %s, [%s%+d]" % (name, rn(instr.rd), rn(instr.rs1), instr.imm)
    if cat is Category.BRANCH:
        return "%s %s" % (name, render_operand(instr.imm))
    if op is Opcode.JMPL:
        return "jmpl [%s%+d], %s" % (rn(instr.rs1), instr.imm, rn(instr.rd))
    if op is Opcode.CALL:
        return "call %s" % render_operand(instr.imm)
    if op in (Opcode.INCFP, Opcode.DECFP, Opcode.RETT, Opcode.NOP, Opcode.HALT):
        return name
    if op in (Opcode.RDFP, Opcode.RDPSR):
        return "%s %s" % (name, rn(instr.rd))
    if op in (Opcode.STFP, Opcode.WRPSR):
        return "%s %s" % (name, rn(instr.rs1))
    if op is Opcode.TRAP:
        return "trap %d" % instr.imm
    if op is Opcode.FLUSH:
        return "flush [%s%+d]" % (rn(instr.rs1), instr.imm)
    raise ValueError("cannot render %r" % (instr,))
