"""Postpass branch-delay-slot filling (paper Section 2.1, reference [10]).

"Single-thread performance is optimized, and techniques used in RISC
processors for enhancing pipeline performance can be applied" — the
canonical such technique for APRIL's single-cycle branch delay slot is
Hennessy & Gross-style postpass scheduling: move the instruction
preceding a branch into its delay slot when that is semantically
transparent, replacing the assembler's conservative ``nop``.

The pass is deliberately conservative.  A candidate may move into the
slot of branch B only if **all** of:

* it is a plain instruction (not itself delayed, not a trap, not data);
* it is not a jump target (no label attached);
* it does not write a register B reads (a ``jmpl`` base), nor read or
  write B's link register (``call``/``jmpl`` write the link *before*
  the slot executes);
* B is conditional only if the candidate leaves the condition codes
  untouched (loads, stores, ``lui``/``oril`` — everything else in the
  ALU sets CCs as a side effect, per Section 3);
* B is ``jfull``/``jempty`` only if the candidate is not a memory
  operation (those set the full/empty condition bit).

Because the slot executes on *both* branch outcomes — exactly like the
original pre-branch position — no liveness analysis beyond the above is
needed.
"""

from repro.isa import registers
from repro.isa.assembler import Assembler, _OPCODES_BY_NAME, _ALIAS_OPS
from repro.isa.instructions import Category, Opcode, category_of

#: Opcodes that do not modify the integer condition codes.
_CC_SAFE = frozenset(
    [Opcode.LUI, Opcode.ORIL, Opcode.NOP]
    + [op for op in Opcode
       if category_of(op) in (Category.LOAD, Category.STORE,
                              Category.FRAME, Category.OOB)]
)

#: Conditional branches that read the integer condition codes.
_CC_READERS = frozenset(
    op for op in Opcode
    if category_of(op) is Category.BRANCH
    and op not in (Opcode.BA, Opcode.BN, Opcode.JFULL, Opcode.JEMPTY)
)

_FE_READERS = frozenset({Opcode.JFULL, Opcode.JEMPTY})


def _opcode_of(stmt):
    if stmt.kind != "instr":
        return None
    return _ALIAS_OPS.get(stmt.mnemonic) or _OPCODES_BY_NAME.get(stmt.mnemonic)


def _reg_operand(text):
    return registers.register_number(text.strip())


def _written_registers(stmt, op):
    """Registers a parsed statement writes (conservative, by syntax)."""
    cat = category_of(op)
    ops = stmt.operands
    if cat in (Category.COMPUTE, Category.LOGIC):
        if op is Opcode.CMP:
            return set()
        if op in (Opcode.LUI, Opcode.ORIL):
            reg = _reg_operand(ops[0]) if ops else None
        else:
            reg = _reg_operand(ops[-1]) if ops else None
        return {reg} if reg is not None else set()
    if cat is Category.LOAD or op is Opcode.LDIO:
        reg = _reg_operand(ops[-1]) if ops else None
        return {reg} if reg is not None else set()
    if op in (Opcode.RDFP, Opcode.RDPSR):
        reg = _reg_operand(ops[0]) if ops else None
        return {reg} if reg is not None else set()
    return set()


def _read_registers_of_branch(stmt, op):
    """Registers a branch/jump reads before its slot executes."""
    if op is Opcode.JMPL:
        # "[base+off]" operand
        inner = stmt.operands[0].strip().lstrip("[").rstrip("]")
        for sep in ("+", "-"):
            if sep in inner:
                inner = inner.split(sep, 1)[0]
        reg = _reg_operand(inner)
        return {reg} if reg is not None else set()
    return set()


def _link_register(stmt, op):
    if op is Opcode.CALL:
        return registers.RA
    if op is Opcode.JMPL:
        reg = _reg_operand(stmt.operands[-1])
        return reg
    return None


def _reads_any(stmt, op, regs):
    """Does the statement's operand text mention any of the registers?

    Syntactic and conservative: any occurrence (read or write position)
    counts, which can only reject legal moves, never accept bad ones.
    """
    mentioned = set()
    for operand in stmt.operands:
        text = operand.strip().lstrip("[").rstrip("]")
        for chunk in text.replace("+", " ").replace("-", " ").split():
            reg = registers.register_number(chunk)
            if reg is not None:
                mentioned.add(reg)
    return bool(mentioned & regs)


class DelaySlotFiller:
    """The postpass pass, hooked into the assembler pipeline."""

    def __init__(self):
        self.filled = 0
        self.total_slots = 0

    def run(self, statements, labeled_ids):
        """Fill slots; returns the new statement list.

        ``labeled_ids`` is the set of ``id()`` values of statements that
        carry a label (jump targets) — neither a labeled candidate nor a
        labeled branch may take part in a move (moving a labeled
        candidate would relocate the target; filling a labeled branch's
        slot would make the candidate execute on the jump-in path where
        it previously did not).
        """
        result = list(statements)
        i = 2
        while i < len(result):
            slot = result[i]
            if not (slot.kind == "instr" and getattr(slot, "is_slot", False)):
                i += 1
                continue
            self.total_slots += 1
            branch = result[i - 1]
            candidate = result[i - 2]
            if self._can_fill(candidate, branch, labeled_ids):
                # [cand, branch, nop] -> [branch, cand]; the candidate
                # becomes the slot instruction.
                candidate.is_slot = True
                del result[i]
                result[i - 2], result[i - 1] = branch, candidate
                self.filled += 1
                continue
            i += 1
        return result

    def _can_fill(self, candidate, branch, labeled_ids):
        if id(candidate) in labeled_ids or id(branch) in labeled_ids:
            return False     # jump targets cannot move or absorb code
        branch_op = _opcode_of(branch)
        cand_op = _opcode_of(candidate)
        if branch_op is None or cand_op is None:
            return False
        if getattr(candidate, "is_slot", False):
            return False
        cand_cat = category_of(cand_op)
        if cand_cat in (Category.BRANCH, Category.JUMP):
            return False
        if cand_op in (Opcode.TRAP, Opcode.HALT, Opcode.RETT):
            return False
        if branch_op in _CC_READERS and cand_op not in _CC_SAFE:
            return False
        if branch_op in _FE_READERS and cand_cat in (Category.LOAD,
                                                     Category.STORE):
            return False
        writes = _written_registers(candidate, cand_op)
        branch_reads = _read_registers_of_branch(branch, branch_op)
        if writes & branch_reads:
            return False
        link = _link_register(branch, branch_op)
        if link is not None and link != 0:
            if link in writes or _reads_any(candidate, cand_op, {link}):
                return False
        return True


class OptimizingAssembler(Assembler):
    """Assembler with the delay-slot filler enabled.

    Statistics of the last assembly are exposed as
    :attr:`slots_filled` / :attr:`slots_total`.
    """

    def __init__(self, base=0):
        super().__init__(base=base)
        self.slots_filled = 0
        self.slots_total = 0

    def assemble(self, source):
        statements, labels_at, equs = self._parse(source)
        # Anchor each label to its statement *object* so indices can be
        # re-derived after the pass moves things around.
        anchors = [
            (label, statements[index] if index < len(statements) else None,
             org)
            for label, index, org in labels_at
        ]
        labeled_ids = {id(stmt) for _l, stmt, _o in anchors
                       if stmt is not None}
        filler = DelaySlotFiller()
        statements = filler.run(statements, labeled_ids)
        self.slots_filled = filler.filled
        self.slots_total = filler.total_slots
        position = {id(stmt): idx for idx, stmt in enumerate(statements)}
        labels_at = [
            (label,
             position[id(stmt)] if stmt is not None else len(statements),
             org)
            for label, stmt, org in anchors
        ]
        labels = self._layout(statements, labels_at)
        labels.update(equs)
        return self._emit(statements, labels)


def assemble_optimized(source, base=0):
    """Assemble with delay-slot filling; returns the Program."""
    return OptimizingAssembler(base=base).assemble(source)
