"""Binary encoding of APRIL instructions into 32-bit words.

The paper does not specify bit-level encodings; this module defines a
clean fixed-width encoding so the simulator can keep programs in
simulated memory as genuine 32-bit words (and so the assembler and
disassembler have a real round-trip to honor).

All formats start with an 8-bit opcode in bits 31..24.

=========== ===========================================================
Format      Layout (bit 31 .. bit 0)
=========== ===========================================================
R (ALU)     op:8 | rd:6 | rs1:6 | i=0:1 | pad:5 | rs2:6
I (ALU)     op:8 | rd:6 | rs1:6 | i=1:1 | imm:11 (signed)
M (memory)  op:8 | rd:6 | rs1:6 | imm:12 (signed)
U (lui/oril) op:8 | rd:6 | imm:18 (unsigned)
B (branch)  op:8 | offset:24 (signed, in words)
T (trap)    op:8 | pad:16 | vector:8
Z (no-arg)  op:8 | pad:24
=========== ===========================================================

``SET rd, imm32`` is a pseudo-instruction the assembler expands into
``LUI rd, imm >> 14`` followed by ``ORIL rd, imm & 0x3FFF``.
"""

from repro.errors import EncodingError
from repro.isa.instructions import Category, Instruction, Opcode, category_of

IMM11_MIN, IMM11_MAX = -(1 << 10), (1 << 10) - 1
IMM12_MIN, IMM12_MAX = -(1 << 11), (1 << 11) - 1
IMM18_MAX = (1 << 18) - 1
OFF24_MIN, OFF24_MAX = -(1 << 23), (1 << 23) - 1

_U_OPS = (Opcode.LUI, Opcode.ORIL)
_M_OPS_EXTRA = (Opcode.JMPL, Opcode.FLUSH, Opcode.LDIO, Opcode.STIO)
_Z_OPS = (
    Opcode.INCFP, Opcode.DECFP, Opcode.RETT, Opcode.NOP, Opcode.HALT,
)
_ONE_REG_D = (Opcode.RDFP, Opcode.RDPSR)
_ONE_REG_S = (Opcode.STFP, Opcode.WRPSR)

_OPCODES_BY_VALUE = {int(op): op for op in Opcode}


def _check_reg(value, what):
    if not 0 <= value < 64:
        raise EncodingError("%s out of range: %d" % (what, value))


def _signed(value, bits):
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def encode(instr):
    """Encode an :class:`Instruction` into a 32-bit integer word."""
    op = instr.op
    word = int(op) << 24
    cat = category_of(op)

    if op in _U_OPS:
        _check_reg(instr.rd, "rd")
        if not 0 <= instr.imm <= IMM18_MAX:
            raise EncodingError("imm18 out of range: %d" % instr.imm)
        return word | (instr.rd << 18) | instr.imm

    if cat in (Category.COMPUTE, Category.LOGIC):
        _check_reg(instr.rd, "rd")
        _check_reg(instr.rs1, "rs1")
        word |= (instr.rd << 18) | (instr.rs1 << 12)
        if instr.use_imm:
            if not IMM11_MIN <= instr.imm <= IMM11_MAX:
                raise EncodingError("imm11 out of range: %d" % instr.imm)
            return word | (1 << 11) | (instr.imm & 0x7FF)
        _check_reg(instr.rs2, "rs2")
        return word | instr.rs2

    if cat in (Category.LOAD, Category.STORE) or op in _M_OPS_EXTRA:
        _check_reg(instr.rd, "rd")
        _check_reg(instr.rs1, "rs1")
        if not IMM12_MIN <= instr.imm <= IMM12_MAX:
            raise EncodingError("imm12 out of range: %d" % instr.imm)
        return word | (instr.rd << 18) | (instr.rs1 << 12) | (instr.imm & 0xFFF)

    if cat is Category.BRANCH or op is Opcode.CALL:
        if not OFF24_MIN <= instr.imm <= OFF24_MAX:
            raise EncodingError("branch offset out of range: %d" % instr.imm)
        return word | (instr.imm & 0xFFFFFF)

    if op is Opcode.TRAP:
        if not 0 <= instr.imm < 256:
            raise EncodingError("trap vector out of range: %d" % instr.imm)
        return word | instr.imm

    if op in _Z_OPS:
        return word

    if op in _ONE_REG_D:
        _check_reg(instr.rd, "rd")
        return word | (instr.rd << 18)

    if op in _ONE_REG_S:
        _check_reg(instr.rs1, "rs1")
        return word | (instr.rs1 << 12)

    raise EncodingError("cannot encode opcode %r" % op)


def decode(word):
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`EncodingError` for unknown opcodes, so executing data
    as code fails loudly.
    """
    opval = (word >> 24) & 0xFF
    op = _OPCODES_BY_VALUE.get(opval)
    if op is None:
        raise EncodingError("unknown opcode byte %#04x in word %#010x" % (opval, word))
    cat = category_of(op)

    if op in _U_OPS:
        return Instruction(op, rd=(word >> 18) & 0x3F, imm=word & IMM18_MAX,
                           use_imm=True)

    if cat in (Category.COMPUTE, Category.LOGIC):
        rd = (word >> 18) & 0x3F
        rs1 = (word >> 12) & 0x3F
        if word & (1 << 11):
            return Instruction(op, rd=rd, rs1=rs1, imm=_signed(word, 11),
                               use_imm=True)
        return Instruction(op, rd=rd, rs1=rs1, rs2=word & 0x3F)

    if cat in (Category.LOAD, Category.STORE) or op in _M_OPS_EXTRA:
        return Instruction(
            op,
            rd=(word >> 18) & 0x3F,
            rs1=(word >> 12) & 0x3F,
            imm=_signed(word, 12),
            use_imm=True,
        )

    if cat is Category.BRANCH or op is Opcode.CALL:
        return Instruction(op, imm=_signed(word, 24), use_imm=True)

    if op is Opcode.TRAP:
        return Instruction(op, imm=word & 0xFF, use_imm=True)

    if op in _Z_OPS:
        return Instruction(op)

    if op in _ONE_REG_D:
        return Instruction(op, rd=(word >> 18) & 0x3F)

    if op in _ONE_REG_S:
        return Instruction(op, rs1=(word >> 12) & 0x3F)

    raise EncodingError("cannot decode opcode %r" % op)


class DecodeCache:
    """Memoizing decoder: code words repeat, so cache word -> Instruction.

    Simulated programs are read-only once loaded, and the cache is keyed
    by the word *value*, so self-modifying code would still decode
    correctly (a changed word is a different key).

    :meth:`predecode` is the second cache level: word -> bound
    :class:`~repro.core.execops.ExecEntry` handler, the translation
    cache that lets the processor dispatch through an opcode-indexed
    table of prebuilt closures instead of re-interpreting the
    instruction fields on every execution.
    """

    def __init__(self):
        self._cache = {}
        self._entries = {}

    def decode(self, word):
        instr = self._cache.get(word)
        if instr is None:
            instr = decode(word)
            self._cache[word] = instr
        return instr

    def predecode(self, word):
        """Word -> predecoded :class:`ExecEntry` (cached).

        Raises exactly what :meth:`decode` raises on bad words, so the
        fast path's illegal-instruction behavior matches the reference.
        """
        entry = self._entries.get(word)
        if entry is None:
            # Imported here: repro.core.execops imports from this
            # module's siblings, keeping the isa -> core layering
            # one-way at import time.
            from repro.core.execops import build_entry

            entry = build_entry(self.decode(word))
            self._entries[word] = entry
        return entry
