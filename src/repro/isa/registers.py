"""APRIL register architecture (paper Section 3, Figure 2).

The user-visible processor state comprises four *task frames*, each a set
of 32 general-purpose registers plus a PC chain and a Processor State
Register, and a set of 8 *global* registers that are accessible
regardless of the active frame.  Only one task frame is active at a
time, designated by the frame pointer (FP).

Register names accepted by the assembler:

* ``r0`` .. ``r31``  — frame-relative registers of the *active* frame.
  ``r0`` is hardwired to zero (reads return 0, writes are discarded),
  which gives us NOP/MOV encodings for free.
* ``g0`` .. ``g7``  — the global registers (encoded as numbers 32..39).

Software conventions used by the Mul-T compiler and run-time system
(these are conventions, not hardware):

========= ========= ==================================================
Name      Register  Role
========= ========= ==================================================
``zero``  r0        hardwired zero
``sp``    r14       stack pointer (grows upward, byte-addressed)
``ra``    r15       return address (link register)
``a0-a3`` r2..r5    first four arguments / return value in ``a0``
``t0-t7`` r6..r13   caller-saved temporaries
``s0-s5`` r16..r21  callee-saved locals
``cl``    r22       callee's closure pointer
``gp``    g0        heap allocation pointer register (per processor)
``gl``    g1        heap allocation limit
``rt``    g2        scratch for run-time handlers
``nil``   g3        the ``()``/``#f`` singleton (fast null tests)
``true``  g4        the ``#t`` singleton
========= ========= ==================================================
"""

NUM_FRAME_REGISTERS = 32
NUM_GLOBAL_REGISTERS = 8
NUM_TASK_FRAMES = 4

#: Encoded register numbers: 0..31 frame-relative, 32..39 global.
GLOBAL_BASE = NUM_FRAME_REGISTERS
NUM_REGISTER_NAMES = NUM_FRAME_REGISTERS + NUM_GLOBAL_REGISTERS

ZERO = 0
SP = 14
RA = 15

#: Argument registers a0..a3 (a0 doubles as the return-value register).
ARG_REGS = (2, 3, 4, 5)
#: Caller-saved temporaries t0..t7.
TEMP_REGS = (6, 7, 8, 9, 10, 11, 12, 13)
#: Callee-saved locals s0..s5.
SAVED_REGS = (16, 17, 18, 19, 20, 21)

GP = GLOBAL_BASE + 0
GL = GLOBAL_BASE + 1
RT = GLOBAL_BASE + 2
NIL = GLOBAL_BASE + 3
TRUE = GLOBAL_BASE + 4

#: Closure register: callee finds its closure (captured environment) here.
CL = 22

_ALIASES = {
    "zero": ZERO,
    "sp": SP,
    "ra": RA,
    "cl": CL,
    "gp": GP,
    "gl": GL,
    "rt": RT,
    "nil": NIL,
    "true": TRUE,
}
for _i, _r in enumerate(ARG_REGS):
    _ALIASES["a%d" % _i] = _r
for _i, _r in enumerate(TEMP_REGS):
    _ALIASES["t%d" % _i] = _r
for _i, _r in enumerate(SAVED_REGS):
    _ALIASES["s%d" % _i] = _r


def register_number(name):
    """Parse a register name (``r5``, ``g2``, ``sp``...) to its number.

    Returns ``None`` if the name is not a register.
    """
    name = name.lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if len(name) >= 2 and name[0] in "rg" and name[1:].isdigit():
        index = int(name[1:])
        if name[0] == "r" and 0 <= index < NUM_FRAME_REGISTERS:
            return index
        if name[0] == "g" and 0 <= index < NUM_GLOBAL_REGISTERS:
            return GLOBAL_BASE + index
    return None


def register_name(number):
    """Render an encoded register number as its canonical name."""
    if 0 <= number < NUM_FRAME_REGISTERS:
        return "r%d" % number
    if GLOBAL_BASE <= number < NUM_REGISTER_NAMES:
        return "g%d" % (number - GLOBAL_BASE)
    raise ValueError("invalid register number: %d" % number)


def is_global(number):
    """True if an encoded register number names a global register."""
    return number >= GLOBAL_BASE
