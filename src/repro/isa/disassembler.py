"""Disassembler for APRIL binary words.

Turns encoded 32-bit words back into canonical assembly text.  Data
words that do not decode to a known opcode are rendered as ``.word``
directives, so a full program image can always be listed.
"""

from repro.errors import EncodingError
from repro.isa.encoding import decode
from repro.isa.instructions import render


def disassemble_word(word):
    """Disassemble a single 32-bit word to text.

    Returns canonical assembly, or a ``.word`` directive if the word is
    not a valid instruction.
    """
    try:
        return render(decode(word))
    except (EncodingError, ValueError):
        return ".word %#010x" % word


def disassemble(words, base=0, labels=None):
    """Disassemble a sequence of words into a listing string.

    Args:
        words: iterable of 32-bit words.
        base: word address of the first word (for the address column).
        labels: optional mapping of label name -> address; matching
            addresses get a label line in the listing.

    Returns:
        A newline-joined listing like::

            0x0010  fact:
            0x0010      cmp a0, 2
            0x0011      bl base_case
    """
    by_address = {}
    if labels:
        for name, address in labels.items():
            by_address.setdefault(address, []).append(name)
    lines = []
    for offset, word in enumerate(words):
        address = base + 4 * offset
        for name in sorted(by_address.get(address, ())):
            lines.append("%#06x  %s:" % (address, name))
        lines.append("%#06x      %s" % (address, disassemble_word(word)))
    return "\n".join(lines)


def disassemble_around(read_word, pc, before=3, after=3, labels=None):
    """Disassemble a window of words around ``pc`` with a ``=>`` marker.

    The window is the word at ``pc`` plus ``before`` words preceding it
    and ``after`` words following it — the listing the monitor's
    ``disas`` command and the watchdog post-mortem show at each blocked
    or active pc.

    Args:
        read_word: callable ``(byte address) -> word``; addresses the
            backing store cannot serve (it may raise) are skipped.
        pc: byte address the marker points at.
        before/after: window half-widths, in words.
        labels: optional label name -> address mapping, as in
            :func:`disassemble`.

    Returns the newline-joined listing (possibly empty).
    """
    by_address = {}
    if labels:
        for name, address in labels.items():
            by_address.setdefault(address, []).append(name)
    start = pc - 4 * before
    if start < 0:
        start = 0
    lines = []
    for address in range(start, pc + 4 * after + 4, 4):
        try:
            word = read_word(address)
        except Exception:
            continue
        for name in sorted(by_address.get(address, ())):
            lines.append("%#06x  %s:" % (address, name))
        marker = "=>" if address == pc else "  "
        lines.append("%#06x   %s %s" % (address, marker,
                                        disassemble_word(word)))
    return "\n".join(lines)
