"""The serve wire protocol: newline-delimited JSON, one object per line.

Requests
--------

Every request is a single JSON object on one line.  ``op`` selects the
request type (default ``"job"``); ``id`` is an arbitrary client token
echoed verbatim on the response so pipelined requests can be matched
out of order::

    {"op": "job", "id": 7, "job": {"program": "fib", "system": "APRIL",
                                   "processors": 2, "args": [8]}}
    {"op": "job", "id": 8, "job": {"source": "(define (main) 42)"}}
    {"op": "metrics", "id": 9}
    {"op": "ping"}
    {"op": "trace", "id": 10, "last": 5}
    {"op": "trace", "id": 11, "trace_id": 42}
    {"op": "trace", "id": 12, "slowest": 3}

The ``trace`` op reads the request flight recorder
(:mod:`repro.serve.trace`): ``last`` N completed traces (default 10),
``slowest`` K by service latency, or one exact trace by ``trace_id``
(the ``trace`` field every job response carries).  The response always
includes the in-flight table and the recorder's counters; pulling a
completed trace twice yields byte-identical JSON.

Job specs come in two forms.  The **named-workload form** (key
``program``) names one cell of the sweep vocabulary — program, system
row, variant, processor count, args, config overrides — and is
validated by :func:`repro.exp.spec.validate_cell`, exactly the checks
``april sweep`` applies to a grid.  The **source form** (key
``source``) carries inline Mul-T source plus compile/run knobs and
maps to :meth:`repro.exp.job.Job.from_spec`.

Responses
---------

One JSON object per line, always carrying the echoed ``id`` and a
``status``:

* ``"ok"`` — the job finished; ``result`` is the full worker payload,
  ``hash`` the content hash, ``served`` how it was satisfied
  (``"hit"`` from cache, ``"executed"`` as the single-flight leader,
  ``"deduped"`` as a follower of a concurrent identical request).
* ``"failed"`` — the job ran and failed; ``kind``/``message`` carry
  the typed worker failure (same vocabulary as sweep cells).
* ``"rejected"`` — admission control said no *before* running
  anything: ``kind`` is ``"overloaded"`` (queue full),
  ``"rate-limited"`` (token bucket empty), or ``"draining"``
  (SIGTERM received).  The 429 of this protocol: clients should back
  off and retry.
* ``"error"`` — the request itself was malformed (bad JSON, unknown
  op, invalid job spec); ``kind``/``message`` say why.
"""

import json

from repro.errors import ReproError, ServeRequestError
from repro.exp.job import Job, canonical_json

#: Protocol tag echoed by ``ping`` and ``metrics`` responses.
PROTOCOL = "april-serve/1"

#: Longest accepted request line (also the asyncio stream limit).
MAX_LINE_BYTES = 1 << 20

#: Request types the server understands.
OPS = ("job", "metrics", "ping", "trace")

#: Keys a source-form job spec may carry (see Job.from_spec).
SOURCE_KEYS = frozenset((
    "source", "mode", "software_checks", "optimize", "processors",
    "config", "entry", "args", "max_cycles", "expect",
))

_MODES = ("eager", "lazy", "sequential")


def parse_request(line):
    """One wire line -> request dict; raises :class:`ServeRequestError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServeRequestError("request is not UTF-8: %s" % exc,
                                    kind="bad-json")
    try:
        request = json.loads(line)
    except ValueError as exc:
        raise ServeRequestError("request is not valid JSON: %s" % exc,
                                kind="bad-json")
    if not isinstance(request, dict):
        raise ServeRequestError("request must be a JSON object",
                                kind="bad-request")
    op = request.get("op", "job")
    if op not in OPS:
        raise ServeRequestError(
            "unknown op %r (have: %s)" % (op, ", ".join(OPS)),
            kind="bad-request")
    return request


def job_from_spec(spec):
    """A validated :class:`~repro.exp.job.Job` from a wire job spec.

    Accepts both the named-workload form and the source form; every
    validation problem becomes a :class:`ServeRequestError` (kind
    ``"bad-job"``) so the server can answer with a typed error and
    move on.
    """
    from repro.errors import SweepSpecError
    from repro.exp.spec import cell_to_job, validate_cell

    if not isinstance(spec, dict):
        raise ServeRequestError("job spec must be a JSON object",
                                kind="bad-job")
    if "program" in spec:
        try:
            validate_cell(spec)
            return cell_to_job(spec)
        except SweepSpecError as exc:
            raise ServeRequestError(str(exc), kind="bad-job")
    if "source" not in spec:
        raise ServeRequestError(
            "job spec needs either \"program\" (named workload) or "
            "\"source\" (inline Mul-T)", kind="bad-job")
    unknown = sorted(set(spec) - SOURCE_KEYS)
    if unknown:
        raise ServeRequestError(
            "unknown job spec key(s) %s (have: %s)"
            % (", ".join(unknown), ", ".join(sorted(SOURCE_KEYS))),
            kind="bad-job")
    if not isinstance(spec["source"], str) or not spec["source"].strip():
        raise ServeRequestError("source must be non-empty Mul-T text",
                                kind="bad-job")
    if spec.get("mode", "eager") not in _MODES:
        raise ServeRequestError(
            "unknown mode %r (have: %s)"
            % (spec.get("mode"), ", ".join(_MODES)), kind="bad-job")
    args = spec.get("args", [])
    if not (isinstance(args, list)
            and all(isinstance(a, int) for a in args)):
        raise ServeRequestError("args must be a list of ints",
                                kind="bad-job")
    for knob, minimum in (("processors", 1), ("max_cycles", 1)):
        value = spec.get(knob)
        if value is not None and (not isinstance(value, int)
                                  or value < minimum):
            raise ServeRequestError("%s must be a positive int" % knob,
                                    kind="bad-job")
    if not isinstance(spec.get("config", {}), dict):
        raise ServeRequestError("config must be an object of knob "
                                "overrides", kind="bad-job")
    try:
        return Job.from_spec(spec)
    except (TypeError, ValueError, ReproError) as exc:
        raise ServeRequestError("bad job spec: %s" % exc, kind="bad-job")


def compile_job(job):
    """The ``(content_hash, worker_payload, cacheable)`` triple for a
    job, compiling its source; compile problems become typed
    bad-job errors rather than server crashes."""
    try:
        return job.content_hash(), job.payload(), job.cacheable
    except ReproError as exc:
        raise ServeRequestError(
            "job does not compile: %s" % exc, kind="bad-job")


def encode(response):
    """One response dict as a canonical wire line (bytes)."""
    return (canonical_json(response) + "\n").encode("utf-8")


# -- response shapes -------------------------------------------------------


def ok_response(request_id, content_hash, result, served):
    return {"id": request_id, "status": "ok", "hash": content_hash,
            "served": served, "result": result}


def failed_response(request_id, content_hash, result, served):
    response = {"id": request_id, "status": "failed",
                "hash": content_hash, "served": served,
                "kind": result.get("kind", "exception"),
                "message": result.get("message", "")}
    if result.get("context"):
        response["context"] = result["context"]
    return response


def rejected_response(request_id, kind, message):
    return {"id": request_id, "status": "rejected", "kind": kind,
            "message": message}


def error_response(request_id, exc):
    kind = getattr(exc, "kind", "bad-request")
    return {"id": request_id, "status": "error", "kind": kind,
            "message": str(exc)}
