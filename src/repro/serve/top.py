"""``april top`` — the live terminal dashboard for ``april serve``.

Polls a running server's ``metrics`` and ``trace`` ops on an interval
and renders one compact frame per poll: request rate (exact, from
counter deltas between polls), hit/dedupe ratios, queue depth, worker
utilization, p50/p99 service latency per served axis (the stable
five-axis ``latency_by_served`` schema), the slowest in-flight
requests with their ages, and the slowest completed traces with their
span breakdowns.

Rendering is a pure function of two samples (:func:`render_frame`), so
the display logic is tested entirely offline; only :func:`run_top`
touches a socket or the clock.  Works against a tracing-disabled
server too (``--trace-ring 0``): the trace panes say so instead of
failing.
"""

import asyncio
import json
import time

#: Served axes shown in the latency pane, in display order.
_AXES = ("hit", "executed", "deduped", "failed", "rejected")

#: ANSI "clear screen, cursor home" prefix for live mode.
CLEAR = "\x1b[2J\x1b[H"


async def poll(socket_path=None, host=None, port=None, slowest=5):
    """One sample: the server's metrics snapshot plus a ``trace`` pull
    (slowest-K completed + the in-flight table) on a fresh connection."""
    if socket_path:
        reader, writer = await asyncio.open_unix_connection(socket_path)
    else:
        reader, writer = await asyncio.open_connection(
            host or "127.0.0.1", port)
    try:
        writer.write(json.dumps({"op": "metrics", "id": "top-m"}).encode()
                     + b"\n")
        writer.write(json.dumps({"op": "trace", "id": "top-t",
                                 "slowest": slowest}).encode() + b"\n")
        await writer.drain()
        responses = {}
        for _ in range(2):
            line = await reader.readline()
            if not line:
                break
            response = json.loads(line)
            responses[response.get("id")] = response
    finally:
        writer.close()
    return {"metrics": responses.get("top-m", {}).get("metrics"),
            "trace": responses.get("top-t")}


def _rate(current, previous, name, interval_s):
    """Counter delta per second between two samples (lifetime average
    when there is no previous sample yet)."""
    counters = current["counters"]
    if previous is not None and interval_s:
        return (counters[name] - previous["counters"][name]) / interval_s
    uptime = current.get("uptime_s") or 0
    return counters[name] / uptime if uptime else 0.0


def _ratio(counters, name, base="jobs"):
    return (counters[name] / counters[base]) if counters[base] else 0.0


def _spans_line(trace):
    return " ".join("%s=%dus" % (span["name"], span["dur_us"])
                    for span in trace.get("spans", ()))


def render_frame(sample, previous=None, interval_s=None):
    """One dashboard frame (a string) from the current sample, the
    previous sample (for exact counter-delta rates), and the seconds
    between them.  Pure: no clock, no socket."""
    metrics = sample.get("metrics")
    if not metrics:
        return "april top: no metrics (is the server up?)"
    prev_metrics = previous.get("metrics") if previous else None
    counters = metrics["counters"]
    queue = metrics.get("queue", {})
    workers = metrics.get("workers", {})
    lines = [
        "april serve  up %.0fs  %sdraining: %s"
        % (metrics.get("uptime_s", 0),
           "protocol %s  " % metrics["protocol"]
           if "protocol" in metrics else "",
           metrics.get("draining", False)),
        "rate: %.1f req/s (%.1f jobs/s)   hit %.0f%%   dedupe %.0f%%   "
        "reject %.0f%%"
        % (_rate(metrics, prev_metrics, "requests", interval_s),
           _rate(metrics, prev_metrics, "jobs", interval_s),
           100 * _ratio(counters, "cache_hits"),
           100 * _ratio(counters, "deduped"),
           100 * _ratio(counters, "rejected_overload")
           + 100 * _ratio(counters, "rejected_ratelimit")
           + 100 * _ratio(counters, "rejected_draining")),
        "queue: %d/%s   workers: %d/%d busy (%.0f%% lifetime)   "
        "conns: %s open"
        % (queue.get("depth", 0), queue.get("limit", "?"),
           workers.get("busy", 0), workers.get("workers", 0),
           100 * workers.get("busy_fraction", 0.0),
           metrics.get("connections", {}).get("open", "?")),
        "",
        "latency (us)       count       p50       p99       max",
    ]
    by_served = metrics.get("latency_by_served", {})
    for axis in _AXES:
        hist = by_served.get(axis)
        if hist is None:
            continue
        lines.append("  %-12s %9d %9s %9s %9s"
                     % (axis, hist.get("count", 0), hist.get("p50"),
                        hist.get("p99"), hist.get("max")))

    trace = sample.get("trace")
    lines.append("")
    if not trace or not trace.get("enabled", False):
        lines.append("tracing disabled (--trace-ring 0)")
        return "\n".join(lines)

    inflight = trace.get("inflight", [])
    stats = trace.get("stats", {})
    lines.append("in-flight: %d  (recorded %d, stored %d, evicted %d)"
                 % (len(inflight), stats.get("recorded", 0),
                    stats.get("stored", 0), stats.get("evicted", 0)))
    for entry in inflight[:5]:
        lines.append("  #%-6d conn %-4d age %8dus  %s"
                     % (entry["id"], entry["conn"],
                        entry.get("age_us", 0), _spans_line(entry)))

    slowest = trace.get("traces", [])
    lines.append("slowest completed:")
    if not slowest:
        lines.append("  (none recorded yet)")
    for entry in slowest:
        lines.append("  #%-6d %-9s %-8s %8dus  %s"
                     % (entry["id"], entry.get("served") or "-",
                        entry.get("status", "?"),
                        entry.get("latency_us", 0), _spans_line(entry)))
    return "\n".join(lines)


async def run_top(socket_path=None, host=None, port=None, *,
                  interval_s=2.0, count=None, plain=False, slowest=5,
                  clock=time.monotonic, out=print):
    """The poll/render loop.  ``count`` bounds the frames (None = until
    interrupted); ``plain`` appends frames instead of redrawing.
    Returns the number of frames rendered."""
    previous = None
    previous_at = None
    frames = 0
    while count is None or frames < count:
        try:
            sample = await poll(socket_path, host, port, slowest=slowest)
        except (ConnectionRefusedError, ConnectionResetError,
                FileNotFoundError, OSError) as exc:
            out("april top: cannot reach server: %s" % exc)
            return frames
        now = clock()
        frame = render_frame(
            sample, previous,
            (now - previous_at) if previous_at is not None else None)
        out(frame if plain else CLEAR + frame)
        previous, previous_at = sample, now
        frames += 1
        if count is not None and frames >= count:
            break
        await asyncio.sleep(interval_s)
    return frames
