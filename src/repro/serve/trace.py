"""End-to-end request tracing for ``april serve``.

Every request gets a trace id at line-parse time and accumulates
**spans** — exact, monotonic-clock phase timings — as it descends the
serve ladder: ``parse`` (wire line -> request), ``admit`` (drain check
+ token bucket), ``validate`` (spec validation + compile via the spec
index), ``hot`` (in-memory LRU probe), ``disk`` (ResultCache probe),
then either ``flight`` (a follower waiting on another request's
execution, linked to the leader's trace id) or ``queue`` + ``execute``
(a leader's pool wait and worker run, the worker carrying back
``compile``/``run``/``store`` sub-spans inside its result payload),
and finally ``respond`` (response assembly).

The invariant is the same no-"other"-bucket discipline as
:mod:`repro.obs.lifetime`: a trace records *boundaries*, not
stopwatches, so child span durations telescope — their sum equals the
request's recorded service latency **exactly**, in integer
microseconds, with no gap, no overlap, and no residual bucket.
Service latency is everything up to the response being ready (the
value reported in the response's ``latency_us`` and in ``metrics``);
the socket write that follows is recorded separately as ``flush_us``
because it measures the client's read speed, not the server's.

Completed traces land in a bounded per-connection ring (flight-
recorder style, like :mod:`repro.obs.flight`); when a connection
closes, its ring is folded into a bounded ``retired`` ring so traces
outlive their connections.  The ``trace`` op serves them back:
last-N, slowest-K, by id, or the in-flight table.  A structured
NDJSON slow-request log (``--slow-log FILE --slow-ms N``) captures
every trace over the threshold as it completes.
"""

import itertools
import time

from collections import deque

from repro.exp.job import canonical_json

#: Default capacity of one connection's completed-trace ring.
PER_CONNECTION_RING = 64

#: Default capacity of the retired ring (traces from closed
#: connections); ``--trace-ring`` on the CLI.
RETIRED_RING = 512


class RequestTrace:
    """One request's span accumulator: a boundary list, not stopwatches.

    ``mark(name)`` closes the phase that just ran: it appends
    ``(name, now_us)`` where ``now_us`` is the integer-microsecond
    offset from the trace's start.  Span *k* runs from boundary *k-1*
    to boundary *k*, so durations telescope and their sum is always
    exactly the final boundary — the recorded service latency.
    """

    __slots__ = ("id", "conn", "request_id", "t0_us", "marks", "children",
                 "link", "status", "served", "flush_us", "_t0", "_clock",
                 "_frozen")

    def __init__(self, trace_id, conn, clock=time.monotonic):
        self.id = trace_id
        self.conn = conn
        self.request_id = None
        self._clock = clock
        self._t0 = clock()
        self.t0_us = int(self._t0 * 1_000_000)
        self.marks = []             # (name, end offset in us), in order
        self.children = []          # (parent span, name, duration us)
        self.link = None            # leader trace id, for followers
        self.status = None
        self.served = None
        self.flush_us = None
        self._frozen = False

    def _now_us(self):
        # round, not truncate: a clock delta like 0.002s must land on
        # 2000us even when the float is 1999.9999...
        return round((self._clock() - self._t0) * 1_000_000)

    @property
    def frozen(self):
        return self._frozen

    def mark(self, name):
        """Close the phase that just ran as span ``name``."""
        if not self._frozen:
            self.marks.append((name, self._now_us()))

    def mark_split(self, first, second, second_us):
        """Close the elapsed segment as two adjacent spans.

        The trailing ``second_us`` microseconds become ``second`` and
        the rest ``first`` — how a leader splits the time since the
        disk probe into pool-queue wait and worker execution using the
        worker's self-reported wall time.  The split point is clamped
        into the segment, so tiling stays exact even if the worker's
        clock disagrees.  ``second_us=None`` degrades to one
        ``second`` span (no worker report: timeout, crash).
        """
        if self._frozen:
            return
        now = self._now_us()
        if second_us is None:
            self.marks.append((second, now))
            return
        prev = self.marks[-1][1] if self.marks else 0
        split = min(now, max(prev, now - int(second_us)))
        self.marks.append((first, split))
        self.marks.append((second, now))

    def child(self, parent, name, duration_us):
        """Attach a nested sub-span (worker-side, own clock) under
        ``parent``.  Children annotate; they do not join the tiling."""
        if not self._frozen:
            self.children.append((parent, name, int(duration_us)))

    def link_to(self, leader_trace_id):
        """Record the leader this follower's ``flight`` span waited on."""
        if not self._frozen:
            self.link = leader_trace_id

    def finish(self, status, served=None):
        """Close the trailing ``respond`` span and freeze the trace.

        After this, ``latency_us`` is final and every further
        ``mark``/``child`` is ignored (a cancelled leader's flight may
        still be running on behalf of other waiters)."""
        if self._frozen:
            return
        self.mark("respond")
        self.status = status
        self.served = served
        self._frozen = True

    @property
    def latency_us(self):
        """The final boundary: exactly the sum of all span durations."""
        return self.marks[-1][1] if self.marks else 0

    def spans(self):
        """``(name, start_us, duration_us)`` per span, tiling
        ``[0, latency_us]`` exactly."""
        out = []
        previous = 0
        for name, end in self.marks:
            out.append((name, previous, end - previous))
            previous = end
        return out

    def to_dict(self, now_us=None):
        """The JSON-ready trace.  For a frozen trace this is stable —
        two pulls of the same id render byte-identically.  For an
        in-flight trace pass ``now_us`` (absolute, from the trace's
        clock) to get the partial view with its age."""
        data = {
            "id": self.id,
            "conn": self.conn,
            "request_id": self.request_id,
            "start_us": self.t0_us,
            "spans": [{"name": name, "start_us": start, "dur_us": duration}
                      for name, start, duration in self.spans()],
        }
        if self.children:
            data["children"] = [
                {"parent": parent, "name": name, "dur_us": duration}
                for parent, name, duration in self.children]
        if self.link is not None:
            data["link"] = self.link
        if self._frozen:
            data["status"] = self.status
            data["served"] = self.served
            data["latency_us"] = self.latency_us
            if self.flush_us is not None:
                data["flush_us"] = self.flush_us
        else:
            data["inflight"] = True
            if now_us is not None:
                data["age_us"] = max(0, now_us - self.t0_us)
        return data


class TraceStore:
    """The request flight recorder: bounded rings of completed traces.

    Completed traces land in a bounded ring per connection (oldest
    evicted first, exactly like the per-node rings in
    :mod:`repro.obs.flight`).  When a connection retires, its ring is
    folded into the bounded ``retired`` ring — the same fold-on-close
    discipline :class:`~repro.serve.metrics.ServerMetrics` applies to
    per-connection histograms — so ``trace`` pulls keep working after
    the requester hung up.  In-flight traces live in a side table
    until they finish or are discarded (non-job ops, disconnects).
    """

    def __init__(self, per_conn=PER_CONNECTION_RING, retired=RETIRED_RING,
                 clock=time.monotonic):
        self.per_conn = max(1, int(per_conn))
        self.retired = deque(maxlen=max(1, int(retired)))
        self.rings = {}             # conn id -> deque of frozen traces
        self.inflight = {}          # trace id -> open trace
        self.recorded = 0           # completed traces ever stored
        self.evicted = 0            # traces dropped by ring bounds
        self._clock = clock
        self._ids = itertools.count(1)

    def begin(self, conn):
        """A new trace, id assigned now (at line-parse time)."""
        trace = RequestTrace(next(self._ids), conn, clock=self._clock)
        self.inflight[trace.id] = trace
        return trace

    def discard(self, trace):
        """Forget an open trace (ping/metrics/trace ops, parse errors)."""
        self.inflight.pop(trace.id, None)

    def record(self, trace):
        """A finished trace lands in its connection's ring."""
        self.inflight.pop(trace.id, None)
        ring = self.rings.get(trace.conn)
        if ring is None:
            ring = self.rings[trace.conn] = deque(maxlen=self.per_conn)
        if len(ring) == ring.maxlen:
            self.evicted += 1
        ring.append(trace)
        self.recorded += 1

    def retire_conn(self, conn):
        """Fold a closed connection's ring into the retired ring."""
        ring = self.rings.pop(conn, None)
        if not ring:
            return
        for trace in ring:
            if len(self.retired) == self.retired.maxlen:
                self.evicted += 1
            self.retired.append(trace)

    # -- queries -----------------------------------------------------------

    def completed(self):
        """Every stored completed trace, oldest first (by trace id)."""
        traces = list(self.retired)
        for ring in self.rings.values():
            traces.extend(ring)
        traces.sort(key=lambda trace: trace.id)
        return traces

    def find(self, trace_id):
        """The completed or in-flight trace with this id, or ``None``."""
        trace = self.inflight.get(trace_id)
        if trace is not None:
            return trace
        for ring in self.rings.values():
            for trace in ring:
                if trace.id == trace_id:
                    return trace
        for trace in self.retired:
            if trace.id == trace_id:
                return trace
        return None

    def last(self, n):
        return self.completed()[-max(0, int(n)):]

    def slowest(self, k):
        ranked = sorted(self.completed(),
                        key=lambda trace: (-trace.latency_us, trace.id))
        return ranked[:max(0, int(k))]

    def inflight_view(self):
        """In-flight traces, oldest (longest-running) first."""
        now_us = int(self._clock() * 1_000_000)
        traces = sorted(self.inflight.values(), key=lambda trace: trace.id)
        return [trace.to_dict(now_us=now_us) for trace in traces]

    def stats(self):
        """JSON-ready counters for the ``metrics`` snapshot and top."""
        return {
            "inflight": len(self.inflight),
            "stored": len(self.retired) + sum(len(ring) for ring
                                              in self.rings.values()),
            "recorded": self.recorded,
            "evicted": self.evicted,
        }


class SlowLog:
    """The structured NDJSON slow-request log (``--slow-log FILE``).

    One canonical-JSON line per completed trace whose service latency
    is at least ``slow_ms`` — written and flushed as the request
    finishes, so the log survives a crash and is tail-able live.
    """

    def __init__(self, path, slow_ms=1000.0):
        self.path = path
        self.threshold_us = int(max(0.0, float(slow_ms)) * 1000)
        self.logged = 0
        self._handle = None

    def maybe_log(self, trace):
        if trace.latency_us < self.threshold_us:
            return False
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(canonical_json(trace.to_dict()) + "\n")
        self._handle.flush()
        self.logged += 1
        return True

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None
