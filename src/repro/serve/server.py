"""The asyncio sweep server behind ``april serve``.

One :class:`SweepServer` listens on a unix socket (and optionally TCP),
speaks the :mod:`repro.serve.protocol` NDJSON protocol, and serves job
results through a four-level ladder — each level orders of magnitude
cheaper than the next:

1. **hot LRU** — recent result payloads by content hash, in memory;
2. **disk cache** — the shared content-addressed
   :class:`~repro.exp.cache.ResultCache` the sweep commands also use,
   so a restarted server (or a sweep that ran yesterday) resumes warm;
3. **single-flight join** — an identical request is already executing:
   await its result (``deduped``) instead of running it again;
4. **execution** — dispatch to the persistent worker pool, then write
   the result through levels 1 and 2.

Admission control happens before level 4 ever gets work: a draining
server refuses new jobs, a connection over its token-bucket rate gets
a fast ``rate-limited`` rejection, and when the number of in-flight
*executions* (open flights, not requests — followers ride along free)
reaches ``queue_limit``, new work is fast-failed ``overloaded``
instead of buffered into unbounded latency.

Clients that disconnect abandon their outstanding requests: each
pending request task is cancelled, and an in-flight execution is
cancelled as soon as its last waiter is gone.  Requests may be
pipelined; responses carry the client's ``id`` and may complete out of
order.  A client must keep its connection open until it has read every
response it cares about.
"""

import asyncio
import itertools
import os
import time
from collections import OrderedDict

from repro.errors import ServeError, ServeRequestError
from repro.exp.cache import ResultCache
from repro.exp.job import canonical_json
from repro.obs.hist import Log2Histogram
from repro.serve import protocol
from repro.serve.dispatch import Dispatcher
from repro.serve.flight import SingleFlight
from repro.serve.metrics import ServerMetrics
from repro.serve.ratelimit import TokenBucket


class _LRU:
    """A bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity):
        self.capacity = max(0, int(capacity))
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value):
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class SpecIndex:
    """LRU memo: canonical job-spec JSON -> (hash, payload, cacheable).

    Resolving a spec means building the Job and *compiling* its
    program (the content hash covers compiled words) — milliseconds.
    Hot traffic repeats a handful of specs, so this memo turns the
    per-request cost into one dict lookup.
    """

    def __init__(self, capacity=512):
        self.lru = _LRU(capacity)
        self.hits = 0
        self.builds = 0

    def resolve(self, spec):
        key = canonical_json(spec)
        entry = self.lru.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        entry = protocol.compile_job(protocol.job_from_spec(spec))
        self.lru.put(key, entry)
        self.builds += 1
        return entry


class _Connection:
    """One client connection: its writer lock, bucket, histogram."""

    _ids = itertools.count(1)

    def __init__(self, reader, writer, bucket):
        self.id = next(self._ids)
        self.reader = reader
        self.writer = writer
        self.bucket = bucket
        self.hist = Log2Histogram()
        self.tasks = set()
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, response):
        data = protocol.encode(response)
        async with self.lock:
            if self.closed:
                return
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                self.closed = True

    def close(self):
        self.closed = True
        for task in list(self.tasks):
            task.cancel()
        try:
            self.writer.close()
        except RuntimeError:
            pass


class SweepServer:
    """The sweep service: cache ladder + single-flight + guardrails."""

    def __init__(self, socket_path=None, host=None, port=None, *,
                 workers=2, worker_mode="process", queue_limit=64,
                 rate=0.0, burst=None, timeout_s=None, cache=None,
                 hot_entries=512, spec_entries=512, dispatcher=None,
                 clock=time.monotonic):
        if socket_path is None and port is None:
            raise ServeError("serve needs a unix socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.queue_limit = max(1, int(queue_limit))
        self.rate = rate
        self.burst = burst
        self.cache = cache
        self.hot = _LRU(hot_entries)
        self.specs = SpecIndex(spec_entries)
        self.flights = SingleFlight()
        self.dispatcher = dispatcher or Dispatcher(
            workers=workers, timeout_s=timeout_s, mode=worker_mode,
            clock=clock)
        self.metrics = ServerMetrics(clock=clock)
        self.draining = False
        self._clock = clock
        self._connections = set()
        self._servers = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind the listeners; returns self (usable as a handle)."""
        if self.socket_path:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)      # stale socket from a crash
            self._servers.append(await asyncio.start_unix_server(
                self._on_connect, path=self.socket_path,
                limit=protocol.MAX_LINE_BYTES))
        if self.port is not None:
            self._servers.append(await asyncio.start_server(
                self._on_connect, self.host or "127.0.0.1", self.port,
                limit=protocol.MAX_LINE_BYTES))
        return self

    def begin_drain(self):
        """Stop accepting; new job requests get ``draining`` rejections."""
        self.draining = True
        for server in self._servers:
            server.close()

    async def stop(self, drain_timeout_s=10.0):
        """Graceful shutdown: drain in-flight executions (bounded),
        then drop connections and the pool.  Returns the number of
        flights abandoned (0 = clean drain)."""
        self.begin_drain()
        loop = asyncio.get_running_loop()
        leftover = await self.flights.drain(
            deadline=loop.time() + max(0.0, drain_timeout_s))
        for conn in list(self._connections):
            conn.close()
        await asyncio.sleep(0)                  # let handlers unwind
        self.dispatcher.shutdown(wait=(leftover == 0))
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        return leftover

    # -- connection handling -----------------------------------------------

    async def _on_connect(self, reader, writer):
        bucket = (TokenBucket(self.rate, self.burst, clock=self._clock)
                  if self.rate and self.rate > 0 else None)
        conn = _Connection(reader, writer, bucket)
        self._connections.add(conn)
        self.metrics.bump("connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.metrics.bump("bad_requests")
                    await conn.send(protocol.error_response(
                        None, ServeRequestError(
                            "request line exceeds %d bytes"
                            % protocol.MAX_LINE_BYTES)))
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_request(conn, line))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        finally:
            self._connections.discard(conn)
            conn.close()
            self.metrics.retire_connection(conn.hist)
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_request(self, conn, line):
        start = self._clock()
        try:
            request = protocol.parse_request(line)
        except ServeRequestError as exc:
            self.metrics.bump("bad_requests")
            await conn.send(protocol.error_response(None, exc))
            return
        self.metrics.bump("requests")
        op = request.get("op", "job")
        request_id = request.get("id")
        if op == "ping":
            await conn.send({"id": request_id, "status": "ok",
                             "op": "ping", "protocol": protocol.PROTOCOL})
            return
        if op == "metrics":
            await conn.send({"id": request_id, "status": "ok",
                             "op": "metrics",
                             "metrics": self.metrics_snapshot()})
            return
        response = await self._handle_job(conn, request)
        latency_us = int((self._clock() - start) * 1_000_000)
        self.metrics.observe(self._served_axis(response), latency_us,
                             conn.hist)
        response["latency_us"] = latency_us
        await conn.send(response)

    @staticmethod
    def _served_axis(response):
        """Which latency histogram a job response lands in."""
        if response["status"] in ("ok", "failed"):
            return response.get("served", response["status"])
        return response["status"]               # "rejected" / "error"

    # -- the job ladder ----------------------------------------------------

    async def _handle_job(self, conn, request):
        request_id = request.get("id")
        self.metrics.bump("jobs")
        if self.draining:
            self.metrics.bump("rejected_draining")
            return protocol.rejected_response(
                request_id, "draining", "server is draining for shutdown")
        if conn.bucket is not None and not conn.bucket.try_acquire():
            self.metrics.bump("rejected_ratelimit")
            return protocol.rejected_response(
                request_id, "rate-limited",
                "connection exceeds %g requests/s" % self.rate)
        try:
            content_hash, payload, cacheable = self.specs.resolve(
                request.get("job"))
        except ServeRequestError as exc:
            self.metrics.bump("bad_requests")
            return protocol.error_response(request_id, exc)

        # Level 1+2: already computed, by anyone, ever.
        result = self.hot.get(content_hash) if cacheable else None
        if result is not None:
            self.metrics.bump("hit_hot")
            return protocol.ok_response(request_id, content_hash, result,
                                        served="hit")
        if cacheable and self.cache is not None:
            result = self.cache.get(content_hash)
            if result is not None and result.get("status") == "ok":
                self.hot.put(content_hash, result)
                self.metrics.bump("hit_disk")
                return protocol.ok_response(request_id, content_hash,
                                            result, served="hit")

        # Level 3+4: join the open flight, or become its leader —
        # backpressure applies only to new work (followers ride free).
        if (self.flights.leading(content_hash)
                and len(self.flights) >= self.queue_limit):
            self.metrics.bump("rejected_overload")
            return protocol.rejected_response(
                request_id, "overloaded",
                "admission queue full (%d executions in flight)"
                % len(self.flights))
        result, leader = await self.flights.run(
            content_hash,
            lambda: self._execute_and_store(content_hash, payload,
                                            cacheable))
        served = "executed" if leader else "deduped"
        if result.get("status") == "ok":
            return protocol.ok_response(request_id, content_hash, result,
                                        served=served)
        self.metrics.bump("failed")
        return protocol.failed_response(request_id, content_hash, result,
                                        served=served)

    async def _execute_and_store(self, content_hash, payload, cacheable):
        result = await self.dispatcher.execute(payload)
        self.metrics.bump("executed")
        if cacheable and result.get("status") == "ok":
            self.hot.put(content_hash, result)
            if self.cache is not None:
                self.cache.put(content_hash, result)
        return result

    # -- introspection -----------------------------------------------------

    def metrics_snapshot(self):
        """The JSON-ready ``metrics`` response body."""
        counters_patch = {
            "deduped": self.flights.deduped,
            "cancelled": self.flights.cancelled,
            "timeouts": self.dispatcher.timeouts,
        }
        snapshot = self.metrics.snapshot(
            live_hists=[conn.hist for conn in self._connections],
            protocol=protocol.PROTOCOL,
            draining=self.draining,
            queue={"depth": len(self.flights), "limit": self.queue_limit},
            workers=self.dispatcher.utilization(),
            connections={"open": len(self._connections),
                         "total": self.metrics.counts["connections"]},
            cache=self._cache_section(),
            spec_index={"hits": self.specs.hits,
                        "builds": self.specs.builds},
        )
        snapshot["counters"].update(counters_patch)
        return snapshot

    def _cache_section(self):
        section = {"hot_entries": len(self.hot),
                   "hot_capacity": self.hot.capacity}
        if self.cache is not None:
            section["disk"] = self.cache.counters()
            section["root"] = self.cache.root
        return section


def build_server(args, clock=time.monotonic):
    """A :class:`SweepServer` from ``april serve`` CLI args."""
    cache = None
    if not getattr(args, "no_cache", False):
        from repro.exp.cache import default_cache
        cache = (ResultCache(args.cache_dir) if args.cache_dir
                 else default_cache())
    host = port = None
    if getattr(args, "tcp", None):
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise ServeError("--tcp wants HOST:PORT, got %r" % args.tcp)
    return SweepServer(
        socket_path=args.socket, host=host or None, port=port,
        workers=args.workers, queue_limit=args.queue_limit,
        rate=args.rate, burst=args.burst, timeout_s=args.timeout,
        cache=cache, hot_entries=args.hot_entries, clock=clock)
