"""The asyncio sweep server behind ``april serve``.

One :class:`SweepServer` listens on a unix socket (and optionally TCP),
speaks the :mod:`repro.serve.protocol` NDJSON protocol, and serves job
results through a four-level ladder — each level orders of magnitude
cheaper than the next:

1. **hot LRU** — recent result payloads by content hash, in memory;
2. **disk cache** — the shared content-addressed
   :class:`~repro.exp.cache.ResultCache` the sweep commands also use,
   so a restarted server (or a sweep that ran yesterday) resumes warm;
3. **single-flight join** — an identical request is already executing:
   await its result (``deduped``) instead of running it again;
4. **execution** — dispatch to the persistent worker pool, then write
   the result through levels 1 and 2.

Admission control happens before level 4 ever gets work: a draining
server refuses new jobs, a connection over its token-bucket rate gets
a fast ``rate-limited`` rejection, and when the number of in-flight
*executions* (open flights, not requests — followers ride along free)
reaches ``queue_limit``, new work is fast-failed ``overloaded``
instead of buffered into unbounded latency.

Clients that disconnect abandon their outstanding requests: each
pending request task is cancelled, and an in-flight execution is
cancelled as soon as its last waiter is gone.  Requests may be
pipelined; responses carry the client's ``id`` and may complete out of
order.  A client must keep its connection open until it has read every
response it cares about.
"""

import asyncio
import itertools
import os
import time
from collections import OrderedDict

from repro.errors import ServeError, ServeRequestError
from repro.exp.cache import ResultCache
from repro.exp.job import canonical_json
from repro.obs.hist import Log2Histogram
from repro.serve import protocol
from repro.serve.dispatch import Dispatcher
from repro.serve.flight import SingleFlight
from repro.serve.metrics import ServerMetrics
from repro.serve.ratelimit import TokenBucket
from repro.serve.trace import SlowLog, TraceStore


def _no_mark(name):
    """Span sink for untraced requests (``--trace-ring 0``)."""


class _LRU:
    """A bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity):
        self.capacity = max(0, int(capacity))
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value):
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class SpecIndex:
    """LRU memo: canonical job-spec JSON -> (hash, payload, cacheable).

    Resolving a spec means building the Job and *compiling* its
    program (the content hash covers compiled words) — milliseconds.
    Hot traffic repeats a handful of specs, so this memo turns the
    per-request cost into one dict lookup.
    """

    def __init__(self, capacity=512):
        self.lru = _LRU(capacity)
        self.hits = 0
        self.builds = 0

    def resolve(self, spec):
        key = canonical_json(spec)
        entry = self.lru.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        entry = protocol.compile_job(protocol.job_from_spec(spec))
        self.lru.put(key, entry)
        self.builds += 1
        return entry


class _Connection:
    """One client connection: its writer lock, bucket, histogram."""

    _ids = itertools.count(1)

    def __init__(self, reader, writer, bucket):
        self.id = next(self._ids)
        self.reader = reader
        self.writer = writer
        self.bucket = bucket
        self.hist = Log2Histogram()
        self.tasks = set()
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, response):
        data = protocol.encode(response)
        async with self.lock:
            if self.closed:
                return
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                self.closed = True

    def close(self):
        self.closed = True
        for task in list(self.tasks):
            task.cancel()
        try:
            self.writer.close()
        except RuntimeError:
            pass


class SweepServer:
    """The sweep service: cache ladder + single-flight + guardrails."""

    def __init__(self, socket_path=None, host=None, port=None, *,
                 workers=2, worker_mode="process", queue_limit=64,
                 rate=0.0, burst=None, timeout_s=None, cache=None,
                 hot_entries=512, spec_entries=512, dispatcher=None,
                 trace_ring=512, slow_log=None, slow_ms=1000.0,
                 clock=time.monotonic):
        if socket_path is None and port is None:
            raise ServeError("serve needs a unix socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.queue_limit = max(1, int(queue_limit))
        self.rate = rate
        self.burst = burst
        self.cache = cache
        self.hot = _LRU(hot_entries)
        self.specs = SpecIndex(spec_entries)
        self.flights = SingleFlight()
        self.dispatcher = dispatcher or Dispatcher(
            workers=workers, timeout_s=timeout_s, mode=worker_mode,
            clock=clock)
        self.metrics = ServerMetrics(clock=clock)
        self.traces = (TraceStore(retired=trace_ring, clock=clock)
                       if trace_ring and trace_ring > 0 else None)
        self.slow = SlowLog(slow_log, slow_ms) if slow_log else None
        self.draining = False
        self._clock = clock
        self._connections = set()
        self._servers = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind the listeners; returns self (usable as a handle)."""
        if self.socket_path:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)      # stale socket from a crash
            self._servers.append(await asyncio.start_unix_server(
                self._on_connect, path=self.socket_path,
                limit=protocol.MAX_LINE_BYTES))
        if self.port is not None:
            self._servers.append(await asyncio.start_server(
                self._on_connect, self.host or "127.0.0.1", self.port,
                limit=protocol.MAX_LINE_BYTES))
        return self

    def begin_drain(self):
        """Stop accepting; new job requests get ``draining`` rejections."""
        self.draining = True
        for server in self._servers:
            server.close()

    async def stop(self, drain_timeout_s=10.0):
        """Graceful shutdown: drain in-flight executions (bounded),
        then drop connections and the pool.  Returns the number of
        flights abandoned (0 = clean drain)."""
        self.begin_drain()
        loop = asyncio.get_running_loop()
        leftover = await self.flights.drain(
            deadline=loop.time() + max(0.0, drain_timeout_s))
        for conn in list(self._connections):
            conn.close()
        await asyncio.sleep(0)                  # let handlers unwind
        self.dispatcher.shutdown(wait=(leftover == 0))
        if self.slow is not None:
            self.slow.close()
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        return leftover

    # -- connection handling -----------------------------------------------

    async def _on_connect(self, reader, writer):
        bucket = (TokenBucket(self.rate, self.burst, clock=self._clock)
                  if self.rate and self.rate > 0 else None)
        conn = _Connection(reader, writer, bucket)
        self._connections.add(conn)
        self.metrics.bump("connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.metrics.bump("bad_requests")
                    await conn.send(protocol.error_response(
                        None, ServeRequestError(
                            "request line exceeds %d bytes"
                            % protocol.MAX_LINE_BYTES)))
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_request(conn, line))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        finally:
            self._connections.discard(conn)
            conn.close()
            self.metrics.retire_connection(conn.hist)
            if self.traces is not None:
                self.traces.retire_conn(conn.id)
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_request(self, conn, line):
        # Trace id is assigned at line-parse time: even a request that
        # turns out malformed (or a ping) briefly owns one.
        start = self._clock()
        trace = self.traces.begin(conn.id) if self.traces else None
        try:
            request = protocol.parse_request(line)
        except ServeRequestError as exc:
            if trace is not None:
                self.traces.discard(trace)
            self.metrics.bump("bad_requests")
            await conn.send(protocol.error_response(None, exc))
            return
        self.metrics.bump("requests")
        op = request.get("op", "job")
        request_id = request.get("id")
        if op != "job":
            # Introspection ops are not themselves traced: a polling
            # `april top` must not wash real requests out of the rings.
            if trace is not None:
                self.traces.discard(trace)
        if op == "ping":
            await conn.send({"id": request_id, "status": "ok",
                             "op": "ping", "protocol": protocol.PROTOCOL})
            return
        if op == "metrics":
            await conn.send({"id": request_id, "status": "ok",
                             "op": "metrics",
                             "metrics": self.metrics_snapshot()})
            return
        if op == "trace":
            await conn.send(self._trace_response(request))
            return
        if trace is not None:
            trace.request_id = request_id
            trace.mark("parse")
        try:
            response = await self._handle_job(conn, request, trace)
        except asyncio.CancelledError:
            # Client disconnect mid-request: freeze what we have so the
            # flight recorder shows the abandoned request, then let the
            # cancellation unwind.
            if trace is not None and not trace.frozen:
                trace.finish("cancelled")
                self.traces.record(trace)
            raise
        axis = self._served_axis(response)
        if trace is not None:
            trace.finish(response["status"], served=axis)
            latency_us = trace.latency_us
            response["trace"] = trace.id
        else:
            latency_us = int((self._clock() - start) * 1_000_000)
        self.metrics.observe(axis, latency_us, conn.hist)
        response["latency_us"] = latency_us
        flush_start = self._clock()
        await conn.send(response)
        if trace is not None:
            # Socket-write time is the client's read speed, not service
            # latency: recorded beside the spans, never inside them.
            trace.flush_us = int((self._clock() - flush_start) * 1_000_000)
            self.traces.record(trace)
            if self.slow is not None:
                self.slow.maybe_log(trace)

    @staticmethod
    def _served_axis(response):
        """Which latency histogram a job response lands in."""
        if response["status"] in ("ok", "failed"):
            return response.get("served", response["status"])
        return response["status"]               # "rejected" / "error"

    # -- the job ladder ----------------------------------------------------

    async def _handle_job(self, conn, request, trace=None):
        request_id = request.get("id")
        mark = trace.mark if trace is not None else _no_mark
        self.metrics.bump("jobs")
        if self.draining:
            mark("admit")
            self.metrics.bump("rejected_draining")
            return protocol.rejected_response(
                request_id, "draining", "server is draining for shutdown")
        if conn.bucket is not None and not conn.bucket.try_acquire():
            mark("admit")
            self.metrics.bump("rejected_ratelimit")
            return protocol.rejected_response(
                request_id, "rate-limited",
                "connection exceeds %g requests/s" % self.rate)
        mark("admit")
        try:
            content_hash, payload, cacheable = self.specs.resolve(
                request.get("job"))
        except ServeRequestError as exc:
            mark("validate")
            self.metrics.bump("bad_requests")
            return protocol.error_response(request_id, exc)
        mark("validate")

        # Level 1+2: already computed, by anyone, ever.
        result = self.hot.get(content_hash) if cacheable else None
        mark("hot")
        if result is not None:
            self.metrics.bump("hit_hot")
            return protocol.ok_response(request_id, content_hash, result,
                                        served="hit")
        if cacheable and self.cache is not None:
            result = self.cache.get(content_hash)
            mark("disk")
            if result is not None and result.get("status") == "ok":
                self.hot.put(content_hash, result)
                self.metrics.bump("hit_disk")
                return protocol.ok_response(request_id, content_hash,
                                            result, served="hit")

        # Level 3+4: join the open flight, or become its leader —
        # backpressure applies only to new work (followers ride free).
        leading = self.flights.leading(content_hash)
        if leading and len(self.flights) >= self.queue_limit:
            self.metrics.bump("rejected_overload")
            return protocol.rejected_response(
                request_id, "overloaded",
                "admission queue full (%d executions in flight)"
                % len(self.flights))
        # No awaits between the leading() check and flights.run, so a
        # follower reliably reads its leader's trace id off the flight.
        leader_trace = (None if leading
                        else self.flights.flight_meta(content_hash))
        result, leader = await self.flights.run(
            content_hash,
            lambda: self._execute_and_store(content_hash, payload,
                                            cacheable, trace),
            meta=trace.id if trace is not None else None)
        if trace is not None and not leader:
            # The follower's whole wait is one span, linked to the
            # leader's trace where the queue/execute detail lives.
            trace.link_to(leader_trace)
            trace.mark("flight")
        served = "executed" if leader else "deduped"
        if result.get("status") == "ok":
            return protocol.ok_response(request_id, content_hash, result,
                                        served=served)
        self.metrics.bump("failed")
        return protocol.failed_response(request_id, content_hash, result,
                                        served=served)

    async def _execute_and_store(self, content_hash, payload, cacheable,
                                 trace=None):
        """Level 4, run only by a flight's leader: dispatch, then write
        through the hot LRU and the disk cache.

        The leader's trace is marked *here* (this coroutine runs as the
        flight task on the same loop and clock): the segment since the
        disk probe splits into pool-queue wait and worker execution at
        the worker's self-reported wall time, and the worker's
        compile/run/store sub-spans nest under the execute span.  The
        ``"spans"`` key is popped before the payload is cached or
        returned, so stored results and response bodies keep the exact
        PR 8 shape.
        """
        result = await self.dispatcher.execute(payload,
                                               spans=trace is not None)
        self.metrics.bump("executed")
        worker_spans = (result.pop("spans", None)
                        if isinstance(result, dict) else None)
        if trace is not None:
            worker_us = (sum(duration for _, duration in worker_spans)
                         if worker_spans else None)
            trace.mark_split("queue", "execute", worker_us)
            for name, duration in worker_spans or ():
                trace.child("execute", name, duration)
        if cacheable and result.get("status") == "ok":
            self.hot.put(content_hash, result)
            if self.cache is not None:
                self.cache.put(content_hash, result)
        return result

    # -- introspection -----------------------------------------------------

    def _trace_response(self, request):
        """The ``trace`` op: read the flight recorder.

        Selectors: ``trace_id`` for one exact trace (completed or
        in-flight), ``slowest`` for the K worst by service latency,
        ``last`` for the N most recent (default 10).  The in-flight
        table and recorder counters ride along on every response.
        """
        request_id = request.get("id")
        if self.traces is None:
            return {"id": request_id, "status": "ok", "op": "trace",
                    "enabled": False, "traces": [], "inflight": []}
        response = {"id": request_id, "status": "ok", "op": "trace",
                    "enabled": True, "stats": self.traces.stats(),
                    "inflight": self.traces.inflight_view()}
        if "trace_id" in request:
            trace = self.traces.find(request["trace_id"])
            response["traces"] = [trace.to_dict()] if trace is not None \
                else []
        elif "slowest" in request:
            response["traces"] = [trace.to_dict() for trace
                                  in self.traces.slowest(request["slowest"])]
        else:
            response["traces"] = [trace.to_dict() for trace
                                  in self.traces.last(request.get("last",
                                                                  10))]
        return response

    def trace_perfetto(self):
        """A Perfetto/Chrome trace of every stored request (see
        :func:`repro.obs.perfetto.server_perfetto_trace`); ``None``
        when tracing is disabled."""
        if self.traces is None:
            return None
        from repro.obs.perfetto import server_perfetto_trace
        return server_perfetto_trace(
            [trace.to_dict() for trace in self.traces.completed()])

    def metrics_snapshot(self):
        """The JSON-ready ``metrics`` response body."""
        counters_patch = {
            "deduped": self.flights.deduped,
            "cancelled": self.flights.cancelled,
            "timeouts": self.dispatcher.timeouts,
        }
        snapshot = self.metrics.snapshot(
            live_hists=[conn.hist for conn in self._connections],
            protocol=protocol.PROTOCOL,
            draining=self.draining,
            queue={"depth": len(self.flights), "limit": self.queue_limit},
            workers=self.dispatcher.utilization(),
            connections={"open": len(self._connections),
                         "total": self.metrics.counts["connections"]},
            cache=self._cache_section(),
            spec_index={"hits": self.specs.hits,
                        "builds": self.specs.builds},
        )
        snapshot["counters"].update(counters_patch)
        if self.traces is not None:
            snapshot["trace"] = self.traces.stats()
        if self.slow is not None:
            snapshot["slow_log"] = {"path": self.slow.path,
                                    "threshold_us": self.slow.threshold_us,
                                    "logged": self.slow.logged}
        return snapshot

    def _cache_section(self):
        section = {"hot_entries": len(self.hot),
                   "hot_capacity": self.hot.capacity}
        if self.cache is not None:
            section["disk"] = self.cache.counters()
            section["root"] = self.cache.root
        return section


def build_server(args, clock=time.monotonic):
    """A :class:`SweepServer` from ``april serve`` CLI args."""
    cache = None
    if not getattr(args, "no_cache", False):
        from repro.exp.cache import default_cache
        cache = (ResultCache(args.cache_dir) if args.cache_dir
                 else default_cache())
    host = port = None
    if getattr(args, "tcp", None):
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise ServeError("--tcp wants HOST:PORT, got %r" % args.tcp)
    return SweepServer(
        socket_path=args.socket, host=host or None, port=port,
        workers=args.workers, queue_limit=args.queue_limit,
        rate=args.rate, burst=args.burst, timeout_s=args.timeout,
        cache=cache, hot_entries=args.hot_entries,
        trace_ring=getattr(args, "trace_ring", 512),
        slow_log=getattr(args, "slow_log", None),
        slow_ms=getattr(args, "slow_ms", 1000.0), clock=clock)
