"""Single-flight execution: concurrent identical requests collapse.

A *flight* is one in-progress execution of a job, keyed by the job's
content hash.  The first requester for a hash becomes the **leader**
and starts the execution task; every requester that arrives while the
flight is open becomes a **follower** and simply awaits the leader's
task (counted as ``deduped``).  All of them — leader included — get
the same result object, so fifty concurrent identical cold requests
cost exactly one simulator run and forty-nine future awaits.

Failure is shared too: worker failures travel as typed payload dicts
(never exceptions), so followers receive the leader's typed failure
rather than hanging or re-executing a job that deterministically
fails.

Waiters are refcounted for disconnect cancellation: each requester
awaits through an :func:`asyncio.shield`, so a client disconnect
cancels only that requester's wait.  When the *last* waiter of an
unfinished flight goes away, nobody wants the result anymore and the
execution task itself is cancelled (a queued pool job is dropped; a
running one finishes in its worker and is discarded).

The table is single-threaded asyncio state: every mutation happens
between awaits on the event loop, so there are no locks.
"""

import asyncio


class _Flight:
    """One in-progress execution and the requesters awaiting it."""

    __slots__ = ("task", "waiters", "meta")

    def __init__(self, task, meta=None):
        self.task = task
        self.waiters = 0
        self.meta = meta


class SingleFlight:
    """The in-flight execution table, keyed on job content hash."""

    def __init__(self):
        self._flights = {}
        self.started = 0        # flights created (leaders)
        self.deduped = 0        # follower joins
        self.cancelled = 0      # flights cancelled: every waiter left

    def __len__(self):
        """Open flights — the service's queue depth."""
        return len(self._flights)

    def leading(self, key):
        """Would a request for ``key`` start a new flight right now?"""
        return key not in self._flights

    def flight_meta(self, key):
        """The leader's ``meta`` token for the open flight on ``key``
        (``None`` when no flight is open or none was attached) — how a
        follower's trace learns its leader's trace id."""
        flight = self._flights.get(key)
        return flight.meta if flight is not None else None

    async def run(self, key, factory, meta=None):
        """Await the result for ``key``, starting a flight if none is
        open.

        ``factory`` is a no-argument callable returning the execution
        coroutine; it is invoked only by the leader, whose ``meta``
        (e.g. its trace id) is attached to the flight for followers to
        read via :meth:`flight_meta`.  Returns ``(result, leader)``
        where ``leader`` says whether this caller started the
        execution.  Cancellation of this coroutine (client disconnect)
        detaches one waiter; the underlying execution is cancelled
        only when no waiters remain.
        """
        flight = self._flights.get(key)
        if flight is None:
            leader = True
            flight = _Flight(asyncio.ensure_future(factory()), meta=meta)
            self._flights[key] = flight
            flight.task.add_done_callback(
                lambda _task: self._forget(key, flight))
            self.started += 1
        else:
            leader = False
            self.deduped += 1
        flight.waiters += 1
        try:
            result = await asyncio.shield(flight.task)
        except asyncio.CancelledError:
            if not flight.task.cancelled():
                # *Our* wait was cancelled, not the execution: drop the
                # waiter, and if nobody else is listening, stop the
                # execution too.
                flight.waiters -= 1
                if flight.waiters == 0 and not flight.task.done():
                    flight.task.cancel()
                    self.cancelled += 1
            raise
        flight.waiters -= 1
        return result, leader

    def _forget(self, key, flight):
        if self._flights.get(key) is flight:
            del self._flights[key]

    async def drain(self, poll_s=0.02, deadline=None):
        """Wait until every open flight has finished (bounded by an
        absolute ``deadline`` from ``asyncio``'s clock, if given).
        Returns the number of flights still open."""
        loop = asyncio.get_running_loop()
        while self._flights:
            if deadline is not None and loop.time() >= deadline:
                break
            await asyncio.sleep(poll_s)
        return len(self._flights)
