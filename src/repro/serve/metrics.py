"""Server-side counters and latency rollups for the ``metrics`` op.

Latency is tracked as **streaming log2 histograms**
(:class:`repro.obs.hist.Log2Histogram`, microseconds) — O(1) memory
per axis, exact merge.  Each connection records into its own
histogram; when a connection closes, its histogram is folded into a
``retired`` accumulator, and a metrics snapshot merges retired +
every live connection into one rollup via
:meth:`~repro.obs.hist.Log2Histogram.merge`.  Because merge is exact
(bucket-wise addition), the rollup's percentiles equal those of the
concatenated per-connection streams — no averaging-of-percentiles
fallacy.

A second axis keys histograms by how the request was served
(``hit`` / ``executed`` / ``deduped`` / ``failed`` / ``rejected``),
which is the number that makes the caching story visible: hits are
microseconds, executions are milliseconds-to-seconds.  All five
:data:`SERVED_AXES` appear in every snapshot — empty histograms and
all — so dashboards and ``april top`` bind to a stable schema instead
of key-probing; axes outside the standard five (``error``) still
appear lazily once observed.
"""

import time

from repro.obs.hist import Log2Histogram

#: Counter names, all starting at zero; ``snapshot`` emits every one
#: even when untouched so dashboards see a stable schema.
COUNTER_NAMES = (
    "connections",           # accepted, lifetime
    "requests",              # lines parsed OK, any op
    "jobs",                  # op=job requests admitted to handling
    "executed",              # single-flight leaders that ran a job
    "hit_hot",               # served from the in-memory LRU
    "hit_disk",              # served from the on-disk ResultCache
    "deduped",               # followers collapsed onto a flight
    "failed",                # job responses with status=failed
    "rejected_overload",     # queue-depth backpressure fast-fails
    "rejected_ratelimit",    # token-bucket fast-fails
    "rejected_draining",     # refused because SIGTERM drain started
    "bad_requests",          # malformed lines / specs
    "cancelled",             # flights cancelled: every waiter left
    "timeouts",              # pool-side job timeouts
)

#: Served axes every snapshot's ``latency_by_served`` always carries.
SERVED_AXES = ("hit", "executed", "deduped", "failed", "rejected")


class ServerMetrics:
    """Counters + latency histograms; the ``metrics`` op's backing."""

    def __init__(self, clock=time.monotonic):
        self.counts = dict.fromkeys(COUNTER_NAMES, 0)
        self.retired = Log2Histogram()
        self.by_served = {axis: Log2Histogram() for axis in SERVED_AXES}
        self.started_at = clock()
        self._clock = clock

    def bump(self, name, n=1):
        self.counts[name] += n

    def observe(self, served, latency_us, connection_hist=None):
        """Record one finished request's service latency."""
        hist = self.by_served.get(served)
        if hist is None:
            hist = self.by_served[served] = Log2Histogram()
        hist.record(latency_us)
        if connection_hist is not None:
            connection_hist.record(latency_us)

    def retire_connection(self, connection_hist):
        """Fold a closed connection's histogram into the rollup base."""
        self.retired.merge(connection_hist)

    def rollup(self, live_hists=()):
        """The merged service-latency histogram: retired + live."""
        merged = Log2Histogram()
        merged.merge(self.retired)
        for hist in live_hists:
            merged.merge(hist)
        return merged

    def snapshot(self, live_hists=(), **sections):
        """The JSON-ready metrics dict; extra keyword sections (queue,
        workers, cache, ...) are spliced in verbatim."""
        rollup = self.rollup(live_hists)
        counters = dict(self.counts)
        counters["cache_hits"] = (counters["hit_hot"]
                                  + counters["hit_disk"])
        data = {
            "uptime_s": round(self._clock() - self.started_at, 3),
            "counters": counters,
            "latency_us": rollup.to_dict(),
            "latency_by_served": {
                served: hist.to_dict()
                for served, hist in sorted(self.by_served.items())
            },
        }
        data.update(sections)
        return data
