"""``repro.serve`` — the long-running sweep service.

The :mod:`repro.exp` engine gives every simulator job a sha256 content
hash, a content-addressed on-disk result cache, and a process-pool
worker entry point.  This package is the always-on service layer in
front of those three: an asyncio front end (``april serve``) accepting
newline-delimited JSON job specs over a unix socket (and optionally
TCP), collapsing concurrent identical requests onto one in-flight
execution (*single-flight*), dispatching misses to a persistent worker
pool, and answering everything it has already computed straight from
an in-memory LRU backed by the shared disk cache — so restarts resume
warm and a cached-mostly workload is served at memory speed.

Operational guardrails come with it: a bounded admission queue with
fast-fail backpressure when full, per-connection token-bucket rate
limiting, per-job timeouts, cancellation of executions nobody is
waiting for anymore, graceful drain on ``SIGTERM``, and a ``metrics``
request type (counters, queue depth, worker utilization, and streaming
p50/p90/p99 service latency via
:class:`repro.obs.hist.Log2Histogram`).  ``april loadgen``
(:mod:`repro.serve.loadgen`) is the demonstration harness: an asyncio
client spraying a configurable hot/cold mix at a target rate and
reporting achieved RPS, hit/dedupe ratios, and the latency histogram.

Every request is traced end-to-end (:mod:`repro.serve.trace`): exact
monotonic-clock spans down the serve ladder whose durations sum to the
recorded service latency *exactly*, a bounded flight recorder served
back by the ``trace`` op, an NDJSON slow-request log, a Perfetto
server-timeline export, and ``april top`` (:mod:`repro.serve.top`) as
the live dashboard over ``metrics`` + ``trace``.

Module map:

* :mod:`repro.serve.protocol` — the NDJSON wire protocol: request
  parsing/validation (against :mod:`repro.exp.spec`), response shapes.
* :mod:`repro.serve.flight` — the single-flight table keyed on job
  content hash.
* :mod:`repro.serve.dispatch` — the persistent worker pool with busy
  accounting and pool-level timeout.
* :mod:`repro.serve.ratelimit` — the per-connection token bucket.
* :mod:`repro.serve.metrics` — counters + latency-histogram rollups.
* :mod:`repro.serve.trace` — request spans, the trace flight recorder,
  the slow-request log.
* :mod:`repro.serve.server` — the asyncio server tying it together.
* :mod:`repro.serve.loadgen` — the load generator client.
* :mod:`repro.serve.top` — the live terminal dashboard client.
"""

from repro.serve.dispatch import Dispatcher
from repro.serve.flight import SingleFlight
from repro.serve.metrics import ServerMetrics
from repro.serve.ratelimit import TokenBucket
from repro.serve.server import SweepServer
from repro.serve.trace import RequestTrace, SlowLog, TraceStore

__all__ = [
    "Dispatcher",
    "RequestTrace",
    "ServerMetrics",
    "SingleFlight",
    "SlowLog",
    "SweepServer",
    "TokenBucket",
    "TraceStore",
]
