"""The persistent worker pool behind the server.

One :class:`Dispatcher` wraps one long-lived executor running
:func:`repro.exp.runner.execute_payload` — the same picklable worker
entry point the sweep engine uses, so a job served over the socket is
bit-identical to the same job run by ``april sweep``.  Unlike the
sweep runner's per-round pools, the pool here persists across
requests: workers stay warm (imports loaded, no fork/spawn per job),
which is what makes cold-job latency a function of simulation cost
rather than process startup.

``mode="process"`` (the default, and what ``april serve`` runs) uses a
``ProcessPoolExecutor``; ``mode="thread"`` runs jobs in threads of
this process — the simulator is pure Python with no shared mutable
globals across runs, so thread mode is exact, and it is what the test
suite uses to keep end-to-end server tests cheap.

The dispatcher also owns the pool-side guardrails: a per-job timeout
enforced twice (``SIGALRM`` inside the worker *and*
``asyncio.wait_for`` here, so a wedged worker cannot wedge the
service), broken-pool recovery (the pool is rebuilt lazily; the job
reports a typed ``crash``), and exact busy-time accounting for the
worker-utilization metric.
"""

import asyncio
import concurrent.futures as futures
import time

from repro.exp.runner import execute_payload, failed_payload

#: Extra seconds wait_for allows beyond the in-worker SIGALRM, so the
#: worker's own (more precise) timeout usually wins the race.
TIMEOUT_GRACE_S = 1.0


class Dispatcher:
    """A persistent worker pool with busy accounting."""

    def __init__(self, workers=2, timeout_s=None, mode="process",
                 clock=time.monotonic):
        if mode not in ("process", "thread"):
            raise ValueError("mode must be 'process' or 'thread'")
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.mode = mode
        self.busy = 0
        self.completed = 0
        self.timeouts = 0
        self.crashes = 0
        self._pool = None
        self._clock = clock
        self._busy_time = 0.0
        self._mark = None
        self._started_at = None

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            if self.mode == "process":
                self._pool = futures.ProcessPoolExecutor(
                    max_workers=self.workers)
            else:
                self._pool = futures.ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="april-serve-worker")
        if self._started_at is None:
            self._started_at = self._clock()
            self._mark = self._started_at
        return self._pool

    def shutdown(self, wait=True):
        """Stop the pool (queued jobs are dropped; running ones finish
        if ``wait``)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    # -- accounting --------------------------------------------------------

    def _account(self, delta):
        """Integrate busy-worker-seconds, then apply the busy delta."""
        now = self._clock()
        if self._mark is not None:
            self._busy_time += min(self.busy, self.workers) * (now
                                                               - self._mark)
        self._mark = now
        self.busy += delta

    def utilization(self):
        """JSON-ready worker utilization: instantaneous busy workers
        and the cumulative busy fraction since the first job."""
        now = self._clock()
        busy_time = self._busy_time
        if self._mark is not None:
            busy_time += min(self.busy, self.workers) * (now - self._mark)
        uptime = (now - self._started_at) if self._started_at else 0.0
        return {
            "workers": self.workers,
            "mode": self.mode,
            "busy": min(self.busy, self.workers),
            "queued": max(0, self.busy - self.workers),
            "busy_fraction": (round(busy_time / (self.workers * uptime), 4)
                              if uptime > 0 else 0.0),
            "completed": self.completed,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
        }

    # -- execution ---------------------------------------------------------

    async def execute(self, payload, spans=False):
        """Run one job payload in the pool; always returns a payload
        dict (typed failure on timeout/crash), except for cancellation
        which propagates so the single-flight layer can drop the job.

        With ``spans=True`` the worker self-times its phases
        (compile/run/store, own monotonic clock) and carries them back
        as a ``"spans"`` list inside the result payload — valid across
        both thread and process modes because only *durations* cross
        the process boundary, never absolute timestamps.
        """
        payload = dict(payload)
        if self.timeout_s:
            payload["timeout_s"] = self.timeout_s
        if spans:
            payload["trace_spans"] = True
        loop = asyncio.get_running_loop()
        pool = self._ensure_pool()
        self._account(+1)
        try:
            job = loop.run_in_executor(pool, execute_payload, payload)
            if self.timeout_s:
                result = await asyncio.wait_for(
                    job, self.timeout_s + TIMEOUT_GRACE_S)
            else:
                result = await job
        except asyncio.TimeoutError:
            self.timeouts += 1
            self.completed += 1
            return failed_payload(
                "timeout", "exceeded %ss wall-clock timeout (pool-side)"
                % self.timeout_s)
        except futures.process.BrokenProcessPool:
            self.crashes += 1
            self.completed += 1
            self._pool = None       # rebuilt lazily on the next job
            return failed_payload("crash", "worker process pool broke")
        finally:
            # Cancellation passes through here too: the busy ledger
            # must balance even for executions nobody waited out.
            self._account(-1)
        self.completed += 1
        return result
