"""Token-bucket rate limiting.

The classic leaky-abstraction-free shaper: a bucket holds up to
``burst`` tokens and refills continuously at ``rate`` tokens/second;
each admitted request spends one token; an empty bucket means
fast-fail rejection (the serve protocol's ``rate-limited`` response)
rather than queueing — the hierarchical-scheduler literature's point
that an overloaded stage should shed load at the edge, not buffer it
into latency.

The clock is injectable so tests (and the metrics snapshot) are
deterministic.
"""

import time


class TokenBucket:
    """A continuous-refill token bucket; ``rate <= 0`` disables it."""

    __slots__ = ("rate", "burst", "tokens", "rejected", "admitted",
                 "_clock", "_last")

    def __init__(self, rate, burst=None, clock=time.monotonic):
        self.rate = float(rate)
        if burst is None:
            burst = max(1.0, self.rate)
        self.burst = float(burst)
        self.tokens = self.burst
        self.admitted = 0
        self.rejected = 0
        self._clock = clock
        self._last = clock()

    def try_acquire(self, cost=1.0):
        """Spend ``cost`` tokens if available; ``False`` = shed load."""
        if self.rate <= 0:
            self.admitted += 1
            return True
        now = self._clock()
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= cost:
            self.tokens -= cost
            self.admitted += 1
            return True
        self.rejected += 1
        return False
