"""``april loadgen`` — the traffic harness for ``april serve``.

An asyncio client that sprays a configurable mix of **hot** job specs
(a small rotating set, cached after first touch — the
millions-of-users-asking-the-same-questions shape) and **cold** specs
(unique content hashes, each a real simulator execution) at a target
aggregate rate over N connections, then reports what the service
actually delivered: achieved requests/s, hit/dedupe ratios, and the
client-observed latency histogram.  Latency memory is O(1) per
connection: each read worker records into its own
:class:`~repro.obs.hist.Log2Histogram`, and the report merges them
bucket-wise — an *exact* merge, so the rolled-up percentiles equal
those of the concatenated streams (the same discipline the server
applies to its per-connection histograms).

Pacing is open-loop: request *k* of the run is scheduled at
``t0 + k/rate`` on a shared ticket counter, whichever connection is
free takes the next ticket, and a slow response delays nothing but
its own connection's pipeline — so the measured rate is what the
service sustained, not what a lock-step client allowed it.

``--dedupe-burst N`` appends the single-flight proof: N identical
never-seen-before requests written back-to-back on one connection,
asserting exactly one execution, N-1 deduped followers, and
byte-identical result payloads.
"""

import asyncio
import itertools
import json
import random
import time

from repro.exp.job import canonical_json
from repro.obs.hist import Log2Histogram

#: Upper bound on pipelined-but-unanswered requests per connection.
MAX_OUTSTANDING = 512

#: Cold specs land max_cycles in this band so they can never collide
#: with a hot spec (hot specs use the sweep default 500M).
COLD_MAX_CYCLES_BASE = 400_000_000


def hot_specs(program="fib", args=8, count=4):
    """The rotating hot set: ``count`` distinct cached-mostly specs."""
    specs = []
    for index in range(count):
        specs.append({
            "program": program,
            "system": "Apr-lazy" if index % 2 else "APRIL",
            "processors": 1 + (index // 2),
            "args": [args],
        })
    return specs


def cold_spec(nonce, index, program="fib", args=6):
    """A spec whose content hash no one has ever requested: the nonce
    and index land in ``max_cycles``, which is part of the job's
    content hash but (for a run this small) not of its behavior."""
    return {
        "program": program,
        "processors": 1,
        "args": [args],
        "max_cycles": COLD_MAX_CYCLES_BASE + (nonce % 10_000_000) * 8
        + index,
    }


class _Conn:
    """One loadgen connection and its pipeline bookkeeping."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.sent = 0
        self.received = 0
        self.hist = Log2Histogram()        # this connection's latencies
        self.window = asyncio.Semaphore(MAX_OUTSTANDING)


class LoadGenerator:
    """The run state shared by every connection worker."""

    def __init__(self, *, rate, requests, hot_ratio, seed, nonce,
                 program, hot_args, cold_args, hot_count=4):
        self.rate = rate
        self.requests = requests
        self.hot_ratio = hot_ratio
        self.rng = random.Random(seed)
        self.nonce = nonce
        self.hot = hot_specs(program, hot_args, count=hot_count)
        self.program = program
        self.cold_args = cold_args
        self.tickets = itertools.count()
        self.pending = {}                  # id -> send timestamp
        self.hist = Log2Histogram()
        self.statuses = {"ok": 0, "failed": 0, "rejected": 0, "error": 0}
        self.served = {"hit": 0, "executed": 0, "deduped": 0}
        self.rejected = {}
        self.started_at = None
        self.finished_at = None

    def next_spec(self, ticket):
        if self.rng.random() < self.hot_ratio:
            return self.rng.choice(self.hot)
        return cold_spec(self.nonce, ticket, program=self.program,
                         args=self.cold_args)

    def tally(self, response, latency_us, hist=None):
        status = response.get("status", "error")
        if status not in self.statuses:
            status = "error"
        self.statuses[status] += 1
        if status == "rejected":
            kind = response.get("kind", "?")
            self.rejected[kind] = self.rejected.get(kind, 0) + 1
        served = response.get("served")
        if status == "ok" and served in self.served:
            self.served[served] += 1
        (hist if hist is not None else self.hist).record(latency_us)

    def merge_hists(self, conns):
        """Fold every connection's histogram into the run rollup —
        exact bucket-wise merge, identical percentiles to a single
        shared histogram."""
        for conn in conns:
            self.hist.merge(conn.hist)


async def _send_worker(gen, conn, clock):
    t0 = gen.started_at
    while True:
        ticket = next(gen.tickets)
        if ticket >= gen.requests:
            break
        if gen.rate and gen.rate > 0:
            due = t0 + ticket / gen.rate
            delay = due - clock()
            if delay > 0:
                await asyncio.sleep(delay)
        await conn.window.acquire()
        spec = gen.next_spec(ticket)
        gen.pending[ticket] = clock()
        conn.writer.write(
            (json.dumps({"op": "job", "id": ticket, "job": spec})
             + "\n").encode())
        conn.sent += 1
        await conn.writer.drain()
    while conn.received < conn.sent:
        await asyncio.sleep(0.005)


async def _read_worker(gen, conn, clock):
    while True:
        line = await conn.reader.readline()
        if not line:
            break
        response = json.loads(line)
        sent_at = gen.pending.pop(response.get("id"), None)
        latency_us = (int((clock() - sent_at) * 1_000_000)
                      if sent_at is not None else 0)
        gen.tally(response, latency_us, hist=conn.hist)
        conn.received += 1
        conn.window.release()


async def _open(socket_path, host, port):
    if socket_path:
        return await asyncio.open_unix_connection(socket_path)
    return await asyncio.open_connection(host or "127.0.0.1", port)


async def _request(reader, writer, payload):
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    return json.loads(line)


async def dedupe_burst(socket_path, host, port, nonce, count,
                       program="fib", args=7, clock=time.monotonic):
    """Fire ``count`` identical never-seen cold requests back-to-back
    on one connection; returns the single-flight scorecard."""
    spec = cold_spec(nonce, 7_999_993, program=program, args=args)
    reader, writer = await _open(socket_path, host, port)
    start = clock()
    lines = b"".join(
        (json.dumps({"op": "job", "id": "burst-%d" % index, "job": spec})
         + "\n").encode()
        for index in range(count))
    writer.write(lines)
    await writer.drain()
    served = {"hit": 0, "executed": 0, "deduped": 0}
    statuses = {}
    payloads = set()
    for _ in range(count):
        response = json.loads(await reader.readline())
        statuses[response["status"]] = statuses.get(
            response["status"], 0) + 1
        if response.get("served") in served:
            served[response["served"]] += 1
        if response["status"] == "ok":
            payloads.add(canonical_json(response["result"]))
    writer.close()
    return {
        "requests": count,
        "wall_s": round(clock() - start, 3),
        "statuses": statuses,
        "served": served,
        "identical_payloads": len(payloads) <= 1,
    }


async def run_loadgen(socket_path=None, host=None, port=None, *,
                      rate=500.0, requests=2000, connections=4,
                      hot_ratio=0.9, seed=1234, nonce=None,
                      program="fib", hot_args=8, cold_args=6,
                      burst=0, fetch_metrics=True,
                      clock=time.monotonic):
    """Run the full load scenario; returns the JSON-ready report."""
    if nonce is None:
        nonce = time.time_ns() % 1_000_000
    gen = LoadGenerator(rate=rate, requests=requests, hot_ratio=hot_ratio,
                        seed=seed, nonce=nonce, program=program,
                        hot_args=hot_args, cold_args=cold_args)
    conns = []
    for _ in range(max(1, connections)):
        reader, writer = await _open(socket_path, host, port)
        conns.append(_Conn(reader, writer))
    readers = [asyncio.ensure_future(_read_worker(gen, conn, clock))
               for conn in conns]
    gen.started_at = clock()
    await asyncio.gather(*(_send_worker(gen, conn, clock)
                           for conn in conns))
    gen.finished_at = clock()
    for task in readers:
        task.cancel()
    for conn in conns:
        conn.writer.close()
    gen.merge_hists(conns)

    wall_s = max(gen.finished_at - gen.started_at, 1e-9)
    completed = sum(gen.statuses.values())
    ok = gen.statuses["ok"]
    report = {
        "requests": requests,
        "connections": len(conns),
        "completed": completed,
        "wall_s": round(wall_s, 3),
        "offered_rps": rate,
        "achieved_rps": round(completed / wall_s, 1),
        "statuses": gen.statuses,
        "served": gen.served,
        "rejected": gen.rejected,
        "hit_ratio": round(gen.served["hit"] / ok, 4) if ok else None,
        "dedupe_ratio": (round(gen.served["deduped"] / ok, 4)
                         if ok else None),
        "latency_us": gen.hist.to_dict(),
    }
    if burst:
        report["dedupe_burst"] = await dedupe_burst(
            socket_path, host, port, nonce, burst, program=program,
            clock=clock)
    if fetch_metrics:
        reader, writer = await _open(socket_path, host, port)
        response = await _request(reader, writer,
                                  {"op": "metrics", "id": "loadgen"})
        writer.close()
        report["server_metrics"] = response.get("metrics")
    return report


def render_report(report):
    """The human-readable loadgen summary."""
    latency = report["latency_us"]
    lines = [
        "loadgen: %d requests over %d conns in %.2fs -> %.1f req/s "
        "(offered %.0f)" % (report["requests"],
                            report.get("connections", 0) or 0,
                            report["wall_s"], report["achieved_rps"],
                            report["offered_rps"] or 0),
        "statuses: ok %(ok)d   failed %(failed)d   rejected %(rejected)d"
        "   error %(error)d" % report["statuses"],
        "served:   hit %(hit)d   executed %(executed)d   "
        "deduped %(deduped)d" % report["served"],
        "ratios:   hit %s   deduped %s"
        % (report["hit_ratio"], report["dedupe_ratio"]),
        "latency:  p50 %sus   p90 %sus   p99 %sus   max %sus"
        % (latency["p50"], latency["p90"], latency["p99"],
           latency["max"]),
    ]
    burst = report.get("dedupe_burst")
    if burst:
        lines.append(
            "dedupe-burst: %d identical cold requests -> %d executed, "
            "%d deduped, payloads identical: %s"
            % (burst["requests"], burst["served"]["executed"],
               burst["served"]["deduped"], burst["identical_payloads"]))
    return "\n".join(lines)
