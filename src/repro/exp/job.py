"""Declarative sweep-job specs and their content hashes.

A :class:`Job` is one cell of an experiment grid: a Mul-T program
source plus the compilation mode, a :class:`~repro.machine.config.
MachineConfig`, the ``main`` arguments, and a cycle budget.  Its
:meth:`~Job.content_hash` is the cache key — it covers the *compiled*
program words (so an edit to the compiler or the source invalidates
cached results, while whitespace-only reformatting that assembles to
the same words does not), every config knob, the run arguments, and
:data:`SCHEMA_VERSION`.

Jobs are picklable: the in-parent compiled program is dropped from the
pickle and workers recompile from source (compilation is
deterministic).
"""

import hashlib
import json

from repro.machine.config import MachineConfig

#: Bump when the engine's result payload layout changes: every cached
#: result keyed under an older schema becomes a clean cache miss.
#: 2: multiprocessor cells carry a ``critpath`` critical-path summary.
SCHEMA_VERSION = 2


def canonical_json(data):
    """The byte-stable JSON encoding used for hashing and merged output."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _digest(data):
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


class Job:
    """One simulator run: program x config x args.

    Args:
        key: cell identity inside the sweep — a tuple of strings/ints,
            e.g. ``("table3", "fib", "APRIL", "parallel", 4)``.  Keys
            order the merged output; they are *not* part of the content
            hash (the same run under two keys hits the same cache entry).
        source: Mul-T program text.
        mode: compilation mode (``sequential`` / ``eager`` / ``lazy``).
        software_checks: compile Encore-style inline future checks.
        optimize: run the branch-delay-slot postpass.
        config: the :class:`MachineConfig` (default: one processor).
        entry: top-level function to call.
        args: fixnum arguments for ``entry``.
        max_cycles: simulated-cycle budget before ``SimulationError``.
        expect: optional expected result value; a mismatch raises
            :class:`~repro.errors.WorkloadCheckError` in the worker and
            becomes a failed cell, not a dead sweep.
        cacheable: set ``False`` for runs whose outputs are not pure
            functions of the inputs (e.g. wall-clock benchmarks).
    """

    kind = "mult"

    def __init__(self, key, source, mode="eager", software_checks=False,
                 optimize=False, config=None, entry="main", args=(),
                 max_cycles=200_000_000, expect=None, cacheable=True):
        self.key = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        self.source = source
        self.mode = mode
        self.software_checks = software_checks
        self.optimize = optimize
        self.config = config or MachineConfig()
        self.entry = entry
        self.args = tuple(args)
        self.max_cycles = max_cycles
        self.expect = expect
        self.cacheable = cacheable
        self._compiled = None
        self._hash = None

    @classmethod
    def from_spec(cls, spec, key=("serve", "source")):
        """Build a Job from a plain-dict *source-form* spec.

        This is the wire shape ``april serve`` accepts for ad-hoc jobs::

            {"source": "(define (main) 42)", "mode": "eager",
             "processors": 4, "config": {...}, "args": [...],
             "max_cycles": ..., "expect": optional}

        ``processors`` is a convenience alias for
        ``config.num_processors`` (it may not appear in both).  Raises
        :class:`TypeError`/:class:`~repro.errors.ConfigError` on
        unknown config knobs — callers turn that into a typed
        bad-request, never a crash.
        """
        config_knobs = dict(spec.get("config") or {})
        if "processors" in spec:
            if "num_processors" in config_knobs:
                raise TypeError(
                    "give either processors or config.num_processors, "
                    "not both")
            config_knobs["num_processors"] = spec["processors"]
        return cls(
            key,
            spec["source"],
            mode=spec.get("mode", "eager"),
            software_checks=bool(spec.get("software_checks", False)),
            optimize=bool(spec.get("optimize", False)),
            config=MachineConfig(**config_knobs),
            entry=spec.get("entry", "main"),
            args=tuple(spec.get("args", ())),
            max_cycles=spec.get("max_cycles", 200_000_000),
            expect=spec.get("expect"),
        )

    # -- identity ----------------------------------------------------------

    @property
    def label(self):
        """Human-readable cell name (``/``-joined key)."""
        return "/".join(str(part) for part in self.key)

    def compiled(self):
        """The in-parent compiled program (memoized; used for hashing)."""
        if self._compiled is None:
            from repro.lang.compiler import compile_source
            self._compiled = compile_source(
                self.source, mode=self.mode,
                software_checks=self.software_checks,
                optimize=self.optimize)
        return self._compiled

    def content_hash(self):
        """The cache key: schema + compiled words + knobs + run params."""
        if self._hash is None:
            program = self.compiled().program
            # Hash the entry's *address*, not its label: gensym counters
            # make label names depend on what compiled earlier in this
            # process, while the assembled words and addresses are
            # deterministic.
            entry_label = self.compiled().entry_label(self.entry)
            self._hash = _digest({
                "schema": SCHEMA_VERSION,
                "kind": self.kind,
                "program": {
                    "base": program.base,
                    "words": list(program.words),
                    "entry": program.labels[entry_label],
                },
                "config": self.config.to_dict(),
                "args": list(self.args),
                "max_cycles": self.max_cycles,
            })
        return self._hash

    def payload(self):
        """The plain-dict worker input (see ``alewife.execute_payload``).

        Transport layers may add out-of-band knobs before dispatch —
        the serve dispatcher injects ``trace_spans: True`` so the
        worker self-times compile/run/store and returns the durations
        as a ``"spans"`` list.  Such knobs never enter
        :meth:`content_hash` (it is computed from the fields here), so
        a traced and an untraced run of the same job share one cache
        entry.
        """
        data = {
            "kind": self.kind,
            "source": self.source,
            "mode": self.mode,
            "software_checks": self.software_checks,
            "optimize": self.optimize,
            "config": self.config.to_dict(),
            "entry": self.entry,
            "args": list(self.args),
            "max_cycles": self.max_cycles,
            "capture": "report",
        }
        if self.expect is not None:
            data["expect"] = self.expect
        return data

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_compiled"] = None      # workers recompile from source
        return state

    def __repr__(self):
        return "Job(%s)" % self.label


class CallJob:
    """A generic named-function job (used by ``april bench --jobs``).

    Runs ``module.func(**kwargs)`` in a worker and returns its value.
    Not cacheable by default: the canonical use is wall-clock
    benchmarking, whose output is not a function of the inputs.
    """

    kind = "call"

    def __init__(self, key, module, func, kwargs=None, cacheable=False):
        self.key = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        self.module = module
        self.func = func
        self.kwargs = dict(kwargs or {})
        self.cacheable = cacheable
        self.expect = None

    @property
    def label(self):
        return "/".join(str(part) for part in self.key)

    def content_hash(self):
        return _digest({
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "module": self.module,
            "func": self.func,
            "kwargs": self.kwargs,
        })

    def payload(self):
        return {
            "kind": self.kind,
            "module": self.module,
            "func": self.func,
            "kwargs": self.kwargs,
        }

    def __repr__(self):
        return "CallJob(%s)" % self.label
