"""The process-pool sweep runner.

:func:`run_jobs` fans a list of :class:`~repro.exp.job.Job` cells out
to worker processes (``pool_size`` > 1) or runs them inline
(``pool_size`` = 1 — byte-identical results either way, the simulator
is deterministic), consults/fills the
:class:`~repro.exp.cache.ResultCache`, dedupes identical cells by
content hash, enforces a per-job wall-clock timeout inside the worker
(``SIGALRM``), retries crashed/timed-out jobs a bounded number of
times, and turns every failure into a typed :class:`JobFailed` result
instead of letting one bad cell kill the sweep.

Outcomes come back in job-submission order regardless of worker
completion order — the first half of the engine's determinism
guarantee (the second half is :mod:`repro.exp.spec`'s canonical
merge).
"""

import signal
import time

from repro.errors import ReproError

#: Failure kinds worth retrying: the run never produced a deterministic
#: answer.  A ``WorkloadCheckError`` or ``SimulationError`` would fail
#: identically on every retry, so those are terminal.
RETRYABLE_KINDS = ("timeout", "crash")


class JobTimeout(Exception):
    """Internal: the worker's ``SIGALRM`` fired for the current job."""


class WorkerSpans:
    """Worker-side phase timer for traced jobs (``trace_spans`` payload
    knob, set by the serve dispatcher).

    Boundary-based like :class:`repro.serve.trace.RequestTrace`: each
    ``mark(name)`` closes the phase that just ran, so the recorded
    durations tile the worker's wall time exactly.  Only *durations*
    (integer microseconds) are exported — they are meaningful across a
    process boundary where absolute monotonic timestamps are not.
    """

    __slots__ = ("spans", "_t0", "_last")

    def __init__(self):
        self._t0 = time.monotonic()
        self._last = 0
        self.spans = []

    def mark(self, name):
        now = round((time.monotonic() - self._t0) * 1_000_000)
        self.spans.append([name, now - self._last])
        self._last = now


class _Alarm:
    """Context manager arming a per-job wall-clock alarm (no-op when
    ``seconds`` is falsy, ``SIGALRM`` is unavailable, or we are not on
    the main thread of the process)."""

    def __init__(self, seconds):
        self.seconds = int(seconds) if seconds else 0
        self.armed = False

    def __enter__(self):
        if self.seconds > 0 and hasattr(signal, "SIGALRM"):
            def _fire(signum, frame):
                raise JobTimeout()
            try:
                self._previous = signal.signal(signal.SIGALRM, _fire)
            except ValueError:      # not the main thread
                return self
            signal.alarm(self.seconds)
            self.armed = True
        return self

    def __exit__(self, *exc_info):
        if self.armed:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


def execute_payload(payload):
    """Run one job payload; always returns a status dict, never raises.

    This is the picklable worker entry point: ``{"status": "ok", ...}``
    payloads come from the kind-specific executors
    (:func:`repro.machine.alewife.execute_payload` for simulator runs),
    failures become ``{"status": "failed", "kind", "message",
    "context"}`` dicts the parent converts to :class:`JobFailed`.
    """
    try:
        with _Alarm(payload.get("timeout_s")):
            kind = payload.get("kind", "mult")
            if kind == "mult":
                from repro.machine.alewife import execute_payload as run
                return run(payload)
            if kind == "call":
                import importlib
                spans = (WorkerSpans() if payload.get("trace_spans")
                         else None)
                module = importlib.import_module(payload["module"])
                func = getattr(module, payload["func"])
                out = {"status": "ok",
                       "value": func(**payload.get("kwargs", {}))}
                if spans is not None:
                    spans.mark("run")
                    out["spans"] = spans.spans
                return out
            return _failed("bad-job", "unknown job kind %r" % kind)
    except JobTimeout:
        return _failed("timeout", "exceeded %ss wall-clock timeout"
                       % payload.get("timeout_s"))
    except ReproError as exc:
        return _failed(type(exc).__name__, str(exc),
                       context=getattr(exc, "context", None))
    except MemoryError:
        raise
    except Exception as exc:                      # noqa: BLE001
        return _failed("exception", "%s: %s" % (type(exc).__name__, exc))


def failed_payload(kind, message, context=None):
    """A typed failure payload, shaped exactly like a worker failure.

    Public because the serve dispatcher synthesizes the same shape for
    conditions it detects on the parent side (pool-level timeout,
    broken pool) — every consumer sees one failure vocabulary.
    """
    data = {"status": "failed", "kind": kind, "message": message}
    if context:
        data["context"] = context
    return data


_failed = failed_payload


# -- outcomes --------------------------------------------------------------


class JobResult:
    """A finished cell: the worker payload plus sweep bookkeeping."""

    ok = True

    def __init__(self, job, content_hash, payload, cached=False, attempts=1):
        self.job = job
        self.key = job.key
        self.hash = content_hash
        self.payload = payload
        self.cached = cached
        self.attempts = attempts

    @property
    def value(self):
        return self.payload.get("value")

    @property
    def cycles(self):
        return self.payload.get("cycles")

    @property
    def report(self):
        return self.payload.get("report")

    def __repr__(self):
        return "JobResult(%s, cycles=%r%s)" % (
            self.job.label, self.cycles, ", cached" if self.cached else "")


class JobFailed:
    """A failed cell: typed kind + message + program/config context."""

    ok = False

    def __init__(self, job, content_hash, kind, message, context=None,
                 attempts=1):
        self.job = job
        self.key = job.key
        self.hash = content_hash
        self.kind = kind
        self.message = message
        self.context = context or {}
        self.attempts = attempts
        self.cached = False

    def __repr__(self):
        return "JobFailed(%s, %s: %s)" % (self.job.label, self.kind,
                                          self.message)


class SweepResult:
    """Every outcome of one ``run_jobs`` call, in submission order."""

    def __init__(self, outcomes, executed, cache_hits, deduped, retries,
                 wall_time_s):
        self.outcomes = outcomes
        self.executed = executed
        self.cache_hits = cache_hits
        self.deduped = deduped
        self.retries = retries
        self.wall_time_s = wall_time_s

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self):
        return len(self.outcomes)

    @property
    def failures(self):
        return [o for o in self.outcomes if not o.ok]

    def by_key(self):
        """Mapping of job key tuple to outcome (last one wins on dupes)."""
        return {o.key: o for o in self.outcomes}

    def summary(self):
        """The deterministic sweep bookkeeping block (cache-hit counter
        and friends); wall time stays off it — see
        :meth:`timing_summary`."""
        return {
            "jobs": len(self.outcomes),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "retries": self.retries,
            "failed": len(self.failures),
        }

    def timing_summary(self):
        """Summary plus host wall time (for stderr, never cached files)."""
        data = self.summary()
        data["wall_time_s"] = round(self.wall_time_s, 2)
        return data


# -- the runner ------------------------------------------------------------


def run_jobs(jobs, pool_size=1, cache=None, force=False, timeout_s=None,
             retries=1, progress=None):
    """Run every job; returns a :class:`SweepResult`.

    Args:
        jobs: sequence of :class:`Job`/:class:`CallJob` cells.
        pool_size: worker processes; 1 runs inline in this process.
        cache: a :class:`~repro.exp.cache.ResultCache` or ``None``.
        force: execute even when a cached result exists (and refresh it).
        timeout_s: per-job wall-clock limit enforced in the worker.
        retries: extra attempts for ``timeout``/``crash`` failures.
        progress: optional callable invoked with each finished outcome.
    """
    jobs = list(jobs)
    start = time.perf_counter()
    outcomes = {}
    cache_hits = 0

    pending = []
    for index, job in enumerate(jobs):
        content_hash = job.content_hash()
        if cache is not None and job.cacheable and not force:
            payload = cache.get(content_hash)
            if payload is not None and payload.get("status") == "ok":
                outcomes[index] = JobResult(job, content_hash, payload,
                                            cached=True)
                cache_hits += 1
                if progress is not None:
                    progress(outcomes[index])
                continue
        pending.append(index)

    executed = 0
    retry_count = 0
    deduped = 0
    attempts = dict.fromkeys(pending, 0)
    while pending:
        # Identical cells (same content hash) execute once per round.
        representatives = {}
        followers = {}
        for index in pending:
            content_hash = jobs[index].content_hash()
            if content_hash in representatives:
                followers.setdefault(representatives[content_hash],
                                     []).append(index)
                deduped += 1
            else:
                representatives[content_hash] = index
        round_indices = sorted(representatives.values())
        pending = []

        for index, payload in _execute_round(jobs, round_indices, pool_size,
                                             timeout_s):
            executed += 1
            group = [index] + followers.get(index, [])
            for member in group:
                attempts[member] += 1
            if payload.get("status") == "ok":
                job = jobs[index]
                if cache is not None and job.cacheable:
                    cache.put(job.content_hash(), payload)
                for member in group:
                    outcomes[member] = JobResult(
                        jobs[member], jobs[member].content_hash(), payload,
                        attempts=attempts[member])
            elif (payload.get("kind") in RETRYABLE_KINDS
                  and attempts[index] <= retries):
                retry_count += len(group)
                pending.extend(group)
                continue
            else:
                for member in group:
                    outcomes[member] = JobFailed(
                        jobs[member], jobs[member].content_hash(),
                        kind=payload.get("kind", "exception"),
                        message=payload.get("message", ""),
                        context=payload.get("context"),
                        attempts=attempts[member])
            if progress is not None:
                for member in group:
                    progress(outcomes[member])

    ordered = [outcomes[index] for index in range(len(jobs))]
    return SweepResult(ordered, executed=executed, cache_hits=cache_hits,
                       deduped=deduped, retries=retry_count,
                       wall_time_s=time.perf_counter() - start)


def _execute_round(jobs, indices, pool_size, timeout_s):
    """Yield ``(index, payload)`` for each job in ``indices``."""
    payloads = {}
    for index in indices:
        payload = jobs[index].payload()
        if timeout_s:
            payload["timeout_s"] = timeout_s
        payloads[index] = payload

    if pool_size <= 1 or len(indices) <= 1:
        for index in indices:
            yield index, execute_payload(payloads[index])
        return

    import concurrent.futures as futures
    with futures.ProcessPoolExecutor(max_workers=pool_size) as pool:
        submitted = {pool.submit(execute_payload, payloads[index]): index
                     for index in indices}
        try:
            for future in futures.as_completed(submitted):
                index = submitted.pop(future)
                try:
                    yield index, future.result()
                except futures.process.BrokenProcessPool:
                    raise
                except Exception as exc:          # noqa: BLE001
                    yield index, _failed("crash", "worker error: %s" % exc)
        except futures.process.BrokenProcessPool:
            # A worker died hard (OOM-kill, segfault): every job still in
            # flight becomes a retryable crash instead of a dead sweep.
            for future, index in submitted.items():
                yield index, _failed("crash", "worker process pool broke")
