"""Content-addressed on-disk result cache.

One JSON file per job under ``<root>/<hash>.json`` where ``<hash>`` is
:meth:`repro.exp.job.Job.content_hash`.  The cache is what makes sweeps
resumable: an interrupted or edited sweep re-executes only the cells
whose hashes have no file yet.  Writes are atomic (tmp file +
``os.replace``) so a killed worker never leaves a truncated entry, and
unreadable/corrupt entries degrade to cache misses.
"""

import json
import os


def default_cache_dir():
    """``$REPRO_CACHE_DIR``, else ``results/cache``."""
    return os.environ.get("REPRO_CACHE_DIR",
                          os.path.join("results", "cache"))


def default_cache():
    """A :class:`ResultCache` rooted at :func:`default_cache_dir`."""
    return ResultCache(default_cache_dir())


class ResultCache:
    """Content-addressed store of finished job payloads."""

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, content_hash):
        """Where the payload for ``content_hash`` lives."""
        return os.path.join(self.root, "%s.json" % content_hash)

    def get(self, content_hash):
        """The cached payload dict, or ``None`` on any kind of miss."""
        try:
            with open(self.path_for(content_hash)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, content_hash, payload):
        """Atomically store ``payload``; returns its path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(content_hash)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        self.writes += 1
        return path

    def counters(self):
        """JSON-ready hit/miss/write counts for the sweep summary."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}
