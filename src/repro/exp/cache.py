"""Content-addressed on-disk result cache.

One JSON file per job under ``<root>/<hh>/<hash>.json`` where
``<hash>`` is :meth:`repro.exp.job.Job.content_hash` and ``<hh>`` is
its first two hex characters — 256 shard directories, so the cache
survives service-scale entry counts (a flat directory degrades badly
once ``april serve`` has pushed a few hundred thousand results into
it).  Caches written by older versions used a flat layout
(``<root>/<hash>.json``); reads fall back to the flat path and lazily
migrate the entry into its shard, so warm caches keep working across
the upgrade without a rewrite pass.

The cache is what makes sweeps resumable and the serve hot path cheap:
an interrupted or edited sweep re-executes only the cells whose hashes
have no file yet, and a restarted server resumes warm.  Writes are
atomic (tmp file + ``os.replace``) so a killed worker never leaves a
truncated entry; a corrupt or truncated entry (a server killed
mid-``put`` on a filesystem that reordered the replace, a stray
editor) degrades to a cache miss *and is unlinked*, so one bad file
can never permanently poison every future request with that hash.
"""

import json
import os


def default_cache_dir():
    """``$REPRO_CACHE_DIR``, else ``results/cache``."""
    return os.environ.get("REPRO_CACHE_DIR",
                          os.path.join("results", "cache"))


def default_cache():
    """A :class:`ResultCache` rooted at :func:`default_cache_dir`."""
    return ResultCache(default_cache_dir())


class ResultCache:
    """Content-addressed store of finished job payloads."""

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.migrated = 0
        self.dropped = 0

    def path_for(self, content_hash):
        """Where the payload for ``content_hash`` lives (sharded by its
        two-hex-char prefix)."""
        return os.path.join(self.root, content_hash[:2],
                            "%s.json" % content_hash)

    def legacy_path_for(self, content_hash):
        """The pre-sharding flat location (read-and-migrate only)."""
        return os.path.join(self.root, "%s.json" % content_hash)

    def get(self, content_hash):
        """The cached payload dict, or ``None`` on any kind of miss."""
        payload = self._read(self.path_for(content_hash))
        if payload is None:
            payload = self._read(self.legacy_path_for(content_hash))
            if payload is not None:
                self._migrate(content_hash, payload)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _read(self, path):
        """Parse one entry file; corrupt/non-dict entries are unlinked
        so they can never poison future lookups of that hash."""
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._drop(path)
            return None
        if not isinstance(payload, dict):
            self._drop(path)
            return None
        return payload

    def _drop(self, path):
        try:
            os.unlink(path)
            self.dropped += 1
        except OSError:
            pass

    def _migrate(self, content_hash, payload):
        """Move a flat-layout entry into its shard (lazy migration)."""
        self._write(content_hash, payload)
        try:
            os.unlink(self.legacy_path_for(content_hash))
        except OSError:
            pass
        self.migrated += 1

    def put(self, content_hash, payload):
        """Atomically store ``payload``; returns its path."""
        path = self._write(content_hash, payload)
        self.writes += 1
        return path

    def _write(self, content_hash, payload):
        path = self.path_for(content_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def counters(self):
        """JSON-ready hit/miss/write counts for the sweep summary."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "migrated": self.migrated,
                "dropped": self.dropped}
