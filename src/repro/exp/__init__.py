"""``repro.exp`` — the parallel experiment engine.

Every evaluation artifact of the paper (Table 3's program x system x
CPU-count grid, the Section 7 speedup curves, Figure 5's sensitivity
sweeps) is an embarrassingly parallel grid of independent simulator
runs.  This package turns such a grid into:

* a declarative :class:`~repro.exp.job.Job` spec with a canonical
  content hash over the compiled program, every config knob, and an
  engine schema version;
* a process-pool :func:`~repro.exp.runner.run_jobs` runner (``--jobs
  N``) with per-job timeout, bounded retry, and typed
  :class:`~repro.exp.runner.JobFailed` results instead of sweep-killing
  exceptions;
* a content-addressed on-disk :class:`~repro.exp.cache.ResultCache`
  (``results/cache/<hash>.json``) so re-running a sweep after an
  interrupt or a one-config edit only executes the missing cells;
* deterministic merged output (:mod:`repro.exp.spec`): cell ordering,
  JSON layout, and normalization are byte-stable regardless of worker
  completion order.
"""

from repro.exp.cache import ResultCache, default_cache
from repro.exp.job import SCHEMA_VERSION, CallJob, Job
from repro.exp.runner import JobFailed, JobResult, SweepResult, run_jobs
from repro.exp.spec import expand_spec, load_spec, merged_output

__all__ = [
    "SCHEMA_VERSION",
    "CallJob",
    "Job",
    "JobFailed",
    "JobResult",
    "ResultCache",
    "SweepResult",
    "default_cache",
    "expand_spec",
    "load_spec",
    "merged_output",
    "run_jobs",
]
