"""Declarative sweep specs (``april sweep SPEC.json``) and the
deterministic merged output.

A spec file names a grid of Table-3-style cells::

    {
      "name": "smoke",
      "grid": {
        "programs": ["fib", "queens"],
        "systems": ["APRIL", "Apr-lazy"],
        "cpus": [1, 2, 4],
        "args": {"fib": [8]}
      },
      "max_cycles": 500000000,
      "config": {"num_task_frames": 4}
    }

``programs`` are workload names from :mod:`repro.workloads`;
``systems`` are Table 3's rows (``Encore`` / ``APRIL`` / ``Apr-lazy``);
``args`` optionally overrides a program's default workload size;
``config`` optionally overrides :class:`~repro.machine.config.
MachineConfig` knobs for every cell.  Each grid point becomes one
:class:`~repro.exp.job.Job` running the program's *parallel* compile
for that system at that processor count.

The merged output is byte-stable: cells appear in grid-expansion order
(never worker completion order), the JSON layout is canonical
(``sort_keys``, fixed separators), and nothing host- or time-dependent
(wall clock, cache hit flags) appears in the cell array.
"""

import json

from repro.errors import SweepSpecError
from repro.exp.job import canonical_json

#: Merged-output schema tag.
OUTPUT_SCHEMA = "april-sweep/1"


def load_spec(path):
    """Parse and validate a spec file; returns the spec dict."""
    try:
        with open(path) as handle:
            spec = json.load(handle)
    except OSError as exc:
        raise SweepSpecError("cannot read spec %s: %s" % (path, exc))
    except ValueError as exc:
        raise SweepSpecError("spec %s is not valid JSON: %s" % (path, exc))
    validate_spec(spec)
    return spec


def validate_spec(spec):
    """Raise :class:`SweepSpecError` unless ``spec`` is well-formed."""
    from repro import workloads
    from repro.harness.table3 import SYSTEMS

    if not isinstance(spec, dict):
        raise SweepSpecError("spec must be a JSON object")
    grid = spec.get("grid")
    if not isinstance(grid, dict):
        raise SweepSpecError("spec needs a \"grid\" object")
    programs = grid.get("programs")
    if not programs or not isinstance(programs, list):
        raise SweepSpecError("grid.programs must be a non-empty list")
    for name in programs:
        if name not in workloads.BY_NAME:
            raise SweepSpecError(
                "unknown program %r (have: %s)"
                % (name, ", ".join(sorted(workloads.BY_NAME))))
    systems = grid.get("systems", ["APRIL"])
    for system in systems:
        if system not in SYSTEMS:
            raise SweepSpecError(
                "unknown system %r (have: %s)" % (system, ", ".join(SYSTEMS)))
    cpus = grid.get("cpus", [1])
    if (not isinstance(cpus, list) or not cpus
            or not all(isinstance(n, int) and n >= 1 for n in cpus)):
        raise SweepSpecError("grid.cpus must be a list of positive ints")
    args = grid.get("args", {})
    if not isinstance(args, dict):
        raise SweepSpecError("grid.args must map program name to arg list")
    config = spec.get("config", {})
    if not isinstance(config, dict):
        raise SweepSpecError("config must be an object of knob overrides")


#: Keys a single-cell job spec (the ``april serve`` named-workload wire
#: form) may carry.  One cell is one grid point: a sweep spec's grid
#: with every axis collapsed to a single value.
CELL_KEYS = frozenset((
    "program", "system", "variant", "processors", "args", "max_cycles",
    "config",
))


def validate_cell(cell):
    """Raise :class:`SweepSpecError` unless ``cell`` is a well-formed
    single-cell job spec (``{"program": ..., "system": ...,
    "processors": ..., ...}`` — the serve protocol's named-workload
    form, validated with the same vocabulary as a sweep grid)."""
    from repro import workloads
    from repro.harness.table3 import SYSTEMS, VARIANTS

    if not isinstance(cell, dict):
        raise SweepSpecError("job spec must be a JSON object")
    unknown = sorted(set(cell) - CELL_KEYS)
    if unknown:
        raise SweepSpecError(
            "unknown job spec key(s) %s (have: %s)"
            % (", ".join(unknown), ", ".join(sorted(CELL_KEYS))))
    program = cell.get("program")
    if program not in workloads.BY_NAME:
        raise SweepSpecError(
            "unknown program %r (have: %s)"
            % (program, ", ".join(sorted(workloads.BY_NAME))))
    system = cell.get("system", "APRIL")
    if system not in SYSTEMS:
        raise SweepSpecError(
            "unknown system %r (have: %s)" % (system, ", ".join(SYSTEMS)))
    variant = cell.get("variant", "parallel")
    if variant not in VARIANTS:
        raise SweepSpecError(
            "unknown variant %r (have: %s)" % (variant, ", ".join(VARIANTS)))
    processors = cell.get("processors", 1)
    if not isinstance(processors, int) or processors < 1:
        raise SweepSpecError("processors must be a positive int")
    args = cell.get("args")
    if args is not None and not (isinstance(args, list)
                                 and all(isinstance(a, int) for a in args)):
        raise SweepSpecError("args must be a list of ints")
    max_cycles = cell.get("max_cycles", 1)
    if not isinstance(max_cycles, int) or max_cycles < 1:
        raise SweepSpecError("max_cycles must be a positive int")
    config = cell.get("config", {})
    if not isinstance(config, dict):
        raise SweepSpecError("config must be an object of knob overrides")
    if "num_processors" in config:
        raise SweepSpecError(
            "give processors at the top level, not config.num_processors")


def cell_to_job(cell, key_prefix=("serve",)):
    """The :class:`~repro.exp.job.Job` a validated cell spec names."""
    from repro import workloads
    from repro.harness.table3 import cell_job

    validate_cell(cell)
    module = workloads.get(cell["program"])
    args = cell.get("args")
    if args is not None:
        args = tuple(args)
    return cell_job(
        module, cell.get("system", "APRIL"), cell.get("variant", "parallel"),
        cell.get("processors", 1), args=args,
        max_cycles=cell.get("max_cycles", 500_000_000),
        config_overrides=cell.get("config") or {},
        key_prefix=tuple(key_prefix))


def expand_spec(spec):
    """The spec's grid as a list of jobs, in grid-expansion order
    (programs outermost, then systems, then processor counts)."""
    from repro import workloads
    from repro.harness.table3 import cell_job

    validate_spec(spec)
    grid = spec["grid"]
    systems = grid.get("systems", ["APRIL"])
    cpus = grid.get("cpus", [1])
    args_by_program = grid.get("args", {})
    overrides = spec.get("config", {})
    max_cycles = spec.get("max_cycles", 500_000_000)
    name = spec.get("name", "sweep")

    jobs = []
    for program in grid["programs"]:
        module = workloads.get(program)
        args = args_by_program.get(program)
        if args is not None:
            args = tuple(args)
        for system in systems:
            for processors in cpus:
                jobs.append(cell_job(
                    module, system, "parallel", processors, args=args,
                    max_cycles=max_cycles, config_overrides=overrides,
                    key_prefix=(name,)))
    return jobs


def merged_output(spec, sweep):
    """The deterministic merged result dict for a finished sweep."""
    cells = []
    for outcome in sweep:
        cell = {"key": list(outcome.key), "hash": outcome.hash}
        if outcome.ok:
            cell["status"] = "ok"
            cell["value"] = outcome.value
            cell["cycles"] = outcome.cycles
        else:
            cell["status"] = "failed"
            cell["kind"] = outcome.kind
            cell["message"] = outcome.message
            if outcome.context:
                cell["context"] = outcome.context
        cells.append(cell)
    return {
        "schema": OUTPUT_SCHEMA,
        "name": spec.get("name", "sweep"),
        "cells": cells,
        "summary": sweep.summary(),
    }


def render_output(merged):
    """The merged output as canonical, byte-stable JSON text."""
    return canonical_json(merged) + "\n"
