"""The low-dimension direct network (paper Section 2.1): k-ary n-cube
topology and a wormhole message network with link-occupancy contention."""

from repro.net.network import Network, build_network
from repro.net.topology import KAryNCube

__all__ = ["KAryNCube", "Network", "build_network"]
