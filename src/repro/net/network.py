"""The packet-switched direct network simulator (paper Section 2.1).

Models a wormhole-routed mesh at message granularity: a message of
``size`` flits traversing ``h`` hops is charged ``h`` switch cycles plus
``size`` serialization cycles, and each directed link it crosses is
*occupied* for ``size`` cycles — a later message wanting the same link
waits for it.  That per-link occupancy schedule is what produces
contention, replacing cycle-by-cycle flit simulation at a fraction of
the cost (the shape of the latency-vs-load curve is the same to first
order, which is all the experiments use).
"""

from repro.net.topology import KAryNCube
from repro.obs.events import EventKind


class NetworkStats:
    """Aggregate traffic counters."""

    def __init__(self):
        self.messages = 0
        self.flit_hops = 0
        self.total_latency = 0
        self.total_hops = 0
        self.contention_cycles = 0

    @property
    def average_latency(self):
        return self.total_latency / self.messages if self.messages else 0.0

    def to_dict(self):
        return {
            "messages": self.messages,
            "flit_hops": self.flit_hops,
            "total_hops": self.total_hops,
            "total_latency": self.total_latency,
            "average_latency": self.average_latency,
            "contention_cycles": self.contention_cycles,
        }


class Network:
    """Mesh interconnect with per-link occupancy-based contention."""

    def __init__(self, topology, hop_cycles=1):
        self.topology = topology
        self.hop_cycles = hop_cycles
        self._link_free = {}     # (node, axis, dir) -> next free cycle
        self.stats = NetworkStats()
        #: Optional event bus (see :mod:`repro.obs`); None = no-op hooks.
        self.events = None
        #: Optional transaction tracer (see :mod:`repro.obs.txn`).
        self.txn = None

    def send(self, src, dst, size_flits, now):
        """Deliver a message; returns its arrival time.

        The message advances hop by hop; at each directed link it waits
        until the link frees, then occupies it for ``size_flits``
        cycles.  ``src == dst`` (local) costs nothing.
        """
        if src == dst:
            return now
        links = self.topology.route(src, dst)
        time = now
        contention = 0
        for link in links:
            free_at = self._link_free.get(link, 0)
            if free_at > time:
                contention += free_at - time
                time = free_at
            self._link_free[link] = time + size_flits
            time += self.hop_cycles
        time += size_flits  # serialize the body at the destination
        self.stats.messages += 1
        self.stats.total_hops += len(links)
        self.stats.flit_hops += len(links) * size_flits
        self.stats.total_latency += time - now
        self.stats.contention_cycles += contention
        if self.events is not None:
            self.events.emit(
                EventKind.NET_SEND, now, src, dst=dst, flits=size_flits,
                hops=len(links), contention=contention)
            self.events.emit(
                EventKind.NET_DELIVER, time, dst, src=src, flits=size_flits)
        if self.txn is not None:
            self.txn.net_leg(src, dst, size_flits, len(links), now, time,
                             contention)
        return time

    def round_trip(self, src, dst, request_flits, reply_flits, now,
                   service_cycles=0):
        """Request to ``dst``, service there, reply back; returns the
        completion time at ``src``."""
        arrive = self.send(src, dst, request_flits, now)
        done = arrive + service_cycles
        return self.send(dst, src, reply_flits, done)


def build_network(num_nodes, dim=2, hop_cycles=1):
    """A mesh just big enough for ``num_nodes`` (module-level helper)."""
    return Network(KAryNCube.fitting(num_nodes, dim=dim),
                   hop_cycles=hop_cycles)
