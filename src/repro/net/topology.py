"""k-ary n-cube topology (paper Section 2.1, reference [20]).

"The ALEWIFE system uses a low-dimension direct network.  Such networks
scale easily and maintain high nearest-neighbor bandwidth."

Nodes are numbered 0..k^n-1; coordinates are base-k digits.  Routing is
dimension-order (e-cube) over bidirectional links without wraparound
("a three dimensional array", i.e. a mesh); the average random-pair
distance in each dimension is ~k/3, giving the paper's nk/3 figure.
"""

from repro.errors import ConfigError


class KAryNCube:
    """A k-ary n-dimensional mesh."""

    def __init__(self, dim, radix):
        if dim < 1 or radix < 1:
            raise ConfigError("degenerate topology %d-ary %d-cube"
                              % (radix, dim))
        self.dim = dim
        self.radix = radix
        self.num_nodes = radix ** dim

    @classmethod
    def fitting(cls, num_nodes, dim=2):
        """The smallest dim-dimensional mesh with >= num_nodes nodes."""
        radix = 1
        while radix ** dim < num_nodes:
            radix += 1
        return cls(dim, radix)

    def coordinates(self, node):
        """Base-radix digit vector of a node id."""
        if not 0 <= node < self.num_nodes:
            raise ConfigError("node %d out of range" % node)
        coords = []
        for _ in range(self.dim):
            coords.append(node % self.radix)
            node //= self.radix
        return tuple(coords)

    def node_at(self, coords):
        """Node id of a coordinate vector."""
        node = 0
        for axis in reversed(range(self.dim)):
            node = node * self.radix + coords[axis]
        return node

    def distance(self, src, dst):
        """Hop count between two nodes (Manhattan distance)."""
        a = self.coordinates(src)
        b = self.coordinates(dst)
        return sum(abs(x - y) for x, y in zip(a, b))

    def route(self, src, dst):
        """Dimension-order route: the sequence of directed links.

        Each link is ``(node, axis, direction)`` with direction +-1;
        deterministic e-cube routing (deadlock-free in a mesh).
        """
        links = []
        coords = list(self.coordinates(src))
        target = self.coordinates(dst)
        for axis in range(self.dim):
            while coords[axis] != target[axis]:
                direction = 1 if target[axis] > coords[axis] else -1
                links.append((self.node_at(coords), axis, direction))
                coords[axis] += direction
        return links

    def average_distance(self):
        """Expected random-pair distance: ~ dim * radix / 3."""
        # Exact per-axis expectation for a line of length k:
        # E|x - y| = (k^2 - 1) / (3k).
        k = self.radix
        return self.dim * (k * k - 1) / (3.0 * k)
