"""Simulator self-benchmark: ``april bench`` and the CI perf gate.

Measures the *simulator's* speed (host wall time), not the simulated
machine: how many simulated cycles per host second the interpreter
manages, what full observation costs over the dormant-hook path, and
what a fully-traced coherent run (events + sampler + profiler +
transaction tracer) costs over the same run unobserved.  Results are
written as ``BENCH_simulator.json`` and compared in CI against the
committed baseline in ``benchmarks/BENCH_simulator.baseline.json`` with
a +/-25% tolerance on cycles/sec — the regression gate for the
simulator's own performance.

Wall-clock noise is real (shared CI runners), hence the generous
tolerance, the interleaved dormant/observed measurement discipline
borrowed from ``benchmarks/bench_simulator_speed.py``, and best-of-reps
timing (load spikes only ever add wall time, so the minimum is the
honest steady-state figure — the same logic as ``timeit``).
"""

import json
import os
import time

from repro.lang.run import run_mult
from repro.machine.config import MachineConfig
from repro.obs import Observation
from repro import workloads

#: The committed baseline the ``--check baseline`` alias resolves to.
BASELINE_PATH = os.path.join("benchmarks", "BENCH_simulator.baseline.json")

#: Allowed relative drop in cycles/sec before the gate fails.
TOLERANCE = 0.25

#: A fully-traced run must stay within this multiple of its dormant twin.
TRACED_CEILING = 4.0


def _timed(source, observe=None, **kwargs):
    start = time.perf_counter()
    result = run_mult(source, observe=observe, **kwargs)
    return result, time.perf_counter() - start


def _sequential_throughput(quick, fastpath=True, jit=True):
    """Raw interpreter speed: sequential fib, no fabric, no observation."""
    module = workloads.get("fib")
    n = 11 if quick else 13
    # One untimed warm-up at a small size: the suite measures
    # steady-state simulator speed, and JIT block compilation is a
    # process-wide one-off (repro.core.jit.SHARED_BLOCKS) that a long
    # sweep amortises across machines.  Each section warms its own
    # configuration — block keys embed the memory geometry.
    run_mult(module.source(), mode="sequential", args=(8,),
             fastpath=fastpath, jit=jit)
    # Best-of-3: minimum wall time is the standard shared-host defence
    # (load spikes only ever add time), same reasoning as timeit's.
    elapsed = None
    for _ in range(3):
        result, once = _timed(module.source(), mode="sequential", args=(n,),
                              fastpath=fastpath, jit=jit)
        elapsed = once if elapsed is None else min(elapsed, once)
    assert result.value == module.reference(n)
    return {
        "workload": "fib(%d) sequential" % n,
        "instructions": result.stats.instructions,
        "cycles": result.cycles,
        "wall_time_s": round(elapsed, 4),
        "instr_per_sec": round(result.stats.instructions / elapsed, 1)
        if elapsed else 0.0,
        "cycles_per_sec": round(result.cycles / elapsed, 1)
        if elapsed else 0.0,
    }


def _eager_overhead(quick, fastpath=True, jit=True):
    """Dormant vs. fully-observed eager run (events off, profiler on)."""
    module = workloads.get("fib")
    source = module.source()
    n, reps = (9, 3) if quick else (12, 3)
    # Untimed warm-up in this section's own configuration (see the
    # sequential section): compiles the shared JIT blocks once.
    run_mult(source, mode="eager", processors=2, args=(8,),
             fastpath=fastpath, jit=jit)
    bare = observed = None
    result = None
    for _ in range(reps):            # interleave: fair to warm-up effects
        result, elapsed = _timed(source, mode="eager", processors=2,
                                 args=(n,), fastpath=fastpath, jit=jit)
        bare = elapsed if bare is None else min(bare, elapsed)
        # events=False matches this section's charter (the docstring
        # above): it prices the sampler + profiler alone.  The coherent
        # section below prices the full bus-and-everything observation.
        _, elapsed = _timed(source, mode="eager", processors=2, args=(n,),
                            fastpath=fastpath, jit=jit,
                            observe=Observation(events=False, profile=True,
                                                window=4096))
        observed = elapsed if observed is None else min(observed, elapsed)
    assert result.value == module.reference(n)
    # Minimum, not mean, of the interleaved reps: host load spikes only
    # ever add wall time, and at JIT speeds one spike inside a ~100ms
    # leg would otherwise dominate the reported rate (timeit's logic).
    return {
        "workload": "fib(%d) eager p2" % n,
        "cycles": result.cycles,
        "dormant_s": round(bare, 4),
        "observed_s": round(observed, 4),
        "overhead_ratio": round(observed / bare, 3) if bare else 0.0,
        "cycles_per_sec": round(result.cycles / bare, 1) if bare else 0.0,
    }


def _coherent_traced(quick, fastpath=True, jit=True):
    """Dormant vs. fully-traced coherent run (txn tracer + everything)."""
    module = workloads.get("fib")
    source = module.source()
    n, reps = (8, 2) if quick else (10, 2)
    config = MachineConfig(num_processors=4, memory_mode="coherent")
    # Untimed warm-up (see the sequential section).  Coherent ports
    # are not ideal, so JIT blocks here delegate every memory access —
    # shorter blocks, but still shared process-wide and worth
    # compiling once before the clock starts.
    run_mult(source, mode="eager", args=(6,), config=config,
             fastpath=fastpath, jit=jit)
    bare = traced = None
    result = None
    obs = None
    for _ in range(reps):
        result, elapsed = _timed(source, mode="eager", args=(n,),
                                 config=config, fastpath=fastpath, jit=jit)
        bare = elapsed if bare is None else min(bare, elapsed)
        obs = Observation(events=True, window=4096, profile=True, txn=True)
        _, elapsed = _timed(source, mode="eager", args=(n,), config=config,
                            fastpath=fastpath, jit=jit, observe=obs)
        traced = elapsed if traced is None else min(traced, elapsed)
    assert result.value == module.reference(n)   # min-of-reps: see eager
    summary = obs.txn.summary()
    hist = {kind: {"p50": h.percentile(50), "p90": h.percentile(90),
                   "p99": h.percentile(99), "count": h.count}
            for kind, h in sorted(obs.txn.histograms.by_kind.items())}
    return {
        "workload": "fib(%d) coherent p4" % n,
        "cycles": result.cycles,
        "dormant_s": round(bare, 4),
        "traced_s": round(traced, 4),
        "traced_ratio": round(traced / bare, 3) if bare else 0.0,
        "transactions": summary["recorded"],
        "histograms": hist,
    }


#: Suite sections, in payload order, as (name, function name) — the
#: grid ``run_bench`` submits through the experiment engine.
SECTIONS = (
    ("sequential", "_sequential_throughput"),
    ("eager", "_eager_overhead"),
    ("coherent", "_coherent_traced"),
)


def run_bench(quick=False, pool_size=1, fastpath=True, jit=True):
    """Run the whole suite; returns the JSON-ready payload.

    ``pool_size`` > 1 fans the three sections out to worker processes
    through :mod:`repro.exp` (each section still times itself inside
    its own process).  Bench results are never cached — they measure
    host wall time, not a function of the inputs — so there is no
    ``cache`` knob here; ``--no-cache``/``--force`` on the CLI are
    accepted no-ops for interface uniformity with ``april table3``.

    ``fastpath=False`` (CLI ``--no-fastpath``) times the reference
    interpreter instead — the A/B knob for measuring what the
    translation-cache fast path is worth on the current host.
    ``jit=False`` (CLI ``--no-jit``) keeps the fast path but disables
    the superblock JIT tier — the A/B knob for the generated-code
    tier alone (see :mod:`repro.core.jit`).
    """
    start = time.perf_counter()
    if pool_size > 1:
        from repro.exp.job import CallJob
        from repro.exp.runner import run_jobs
        jobs = [CallJob(("bench", name), __name__, func,
                        kwargs={"quick": quick, "fastpath": fastpath,
                                "jit": jit})
                for name, func in SECTIONS]
        sweep = run_jobs(jobs, pool_size=pool_size)
        for outcome in sweep.failures:
            raise RuntimeError("bench section %s failed: %s: %s"
                               % (outcome.job.label, outcome.kind,
                                  outcome.message))
        by_key = sweep.by_key()
        sequential, eager, coherent = (
            by_key[("bench", name)].value for name, _ in SECTIONS)
    else:
        sequential = _sequential_throughput(quick, fastpath=fastpath,
                                            jit=jit)
        eager = _eager_overhead(quick, fastpath=fastpath, jit=jit)
        coherent = _coherent_traced(quick, fastpath=fastpath, jit=jit)
    return {
        "schema": "april-bench/1",
        "suite": "simulator",
        "quick": quick,
        "fastpath": fastpath,
        "jit": jit,
        "wall_time_s": round(time.perf_counter() - start, 2),
        "cycles_per_sec": eager["cycles_per_sec"],
        "instr_per_sec": sequential["instr_per_sec"],
        "overhead_ratio": eager["overhead_ratio"],
        "traced_ratio": coherent["traced_ratio"],
        "runs": {
            "sequential": sequential,
            "eager": eager,
            "coherent": coherent,
        },
        "histograms": coherent["histograms"],
    }


def write_bench(payload, path):
    """Write the payload as JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def resolve_baseline(spec):
    """Map the ``--check`` argument to a baseline file path."""
    return BASELINE_PATH if spec == "baseline" else spec


def check_baseline(payload, spec, tolerance=TOLERANCE):
    """Compare a payload to a baseline; returns (problems, notes).

    ``problems`` non-empty means the gate fails: cycles/sec dropped more
    than ``tolerance`` below the baseline, or the fully-traced run
    exceeded the absolute :data:`TRACED_CEILING`.  Improvements beyond
    the tolerance are reported as notes (time to refresh the baseline).
    """
    path = resolve_baseline(spec)
    try:
        with open(path) as handle:
            baseline = json.load(handle)
    except OSError as exc:
        return (["cannot read baseline %s: %s" % (path, exc)], [])
    problems, notes = [], []
    comparable = True
    for knob in ("quick", "fastpath", "jit"):
        ours = bool(payload.get(knob, knob in ("fastpath", "jit")))
        theirs = bool(baseline.get(knob, knob in ("fastpath", "jit")))
        if ours != theirs:
            comparable = False
            notes.append(
                "payload %s=%s but baseline %s=%s: cycles/sec are not "
                "comparable, rate check skipped" % (knob, ours, knob, theirs))
    base_rate = baseline.get("cycles_per_sec", 0.0)
    rate = payload.get("cycles_per_sec", 0.0)
    if comparable and base_rate > 0:
        ratio = rate / base_rate
        if ratio < 1.0 - tolerance:
            problems.append(
                "cycles/sec regressed %.0f%%: %.0f vs baseline %.0f"
                % (100 * (1.0 - ratio), rate, base_rate))
        elif ratio > 1.0 + tolerance:
            notes.append(
                "cycles/sec improved %.0f%% over baseline (%.0f vs %.0f); "
                "consider refreshing %s"
                % (100 * (ratio - 1.0), rate, base_rate, path))
    traced = payload.get("traced_ratio", 0.0)
    if traced > TRACED_CEILING:
        problems.append(
            "fully-traced run is %.2fx its dormant twin (ceiling %.1fx)"
            % (traced, TRACED_CEILING))
    return problems, notes
