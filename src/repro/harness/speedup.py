"""Section 7 speedup curves through the experiment engine.

Table 3 reports *normalized time*; the prose of Section 7 discusses the
same runs as *speedup over the sequential version*.  This harness
computes those curves — ``speedup(n) = T_seq / T_parallel(n)`` — for
any workload/system, submitting the per-processor-count grid through
:mod:`repro.exp` so the cells run in parallel and land in the same
content-addressed cache as ``april table3`` (a table run and a speedup
run of the same cells share cache entries).
"""

from repro.exp.runner import run_jobs
from repro.harness.table3 import APRIL_CPUS, cell_job, raise_outcome
from repro import workloads


class SpeedupCurve:
    """Speedup over the sequential baseline for one (program, system)."""

    def __init__(self, program, system, seq_cycles, cycles_by_cpus,
                 critpath_by_cpus=None):
        self.program = program
        self.system = system
        self.seq_cycles = seq_cycles
        self.cycles = cycles_by_cpus          # {ncpus: parallel cycles}
        #: {ncpus: critical-path summary dict} from the lifetime
        #: accountant each multiprocessor cell ran (see
        #: :func:`repro.obs.critpath.summarize`); empty for cached
        #: results predating the accountant.
        self.critpath = critpath_by_cpus or {}

    @property
    def speedups(self):
        """``{ncpus: speedup}`` (> 1 means faster than sequential)."""
        return {n: self.seq_cycles / c for n, c in self.cycles.items()
                if c}

    def dominant_blockers(self):
        """``{ncpus: why-entry}`` — the top "why not linear" cause per
        cell (``blocked-on-future`` with line attribution when the path
        waits, ``critical-chain-compute`` when it is compute-bound)."""
        blockers = {}
        for n, summary in self.critpath.items():
            why = (summary or {}).get("why") or []
            if why:
                blockers[n] = why[0]
        return blockers

    def as_dict(self):
        data = {
            "program": self.program,
            "system": self.system,
            "seq_cycles": self.seq_cycles,
            "cycles": {str(n): c for n, c in sorted(self.cycles.items())},
            "speedup": {str(n): round(s, 4)
                        for n, s in sorted(self.speedups.items())},
        }
        if self.critpath:
            data["critical_path"] = {
                str(n): summary
                for n, summary in sorted(self.critpath.items())}
        return data


def speedup_jobs(module, system="Apr-lazy", cpus=APRIL_CPUS, args=None,
                 max_cycles=None):
    """The grid for one curve: the sequential baseline + parallel cells."""
    kwargs = {} if max_cycles is None else {"max_cycles": max_cycles}
    jobs = [cell_job(module, system, "seq_plain", 1, args=args, **kwargs)]
    for processors in cpus:
        jobs.append(cell_job(module, system, "parallel", processors,
                             args=args, **kwargs))
    return jobs


def run_speedup(program_names=None, system="Apr-lazy", cpus=APRIL_CPUS,
                args_by_program=None, pool_size=1, cache=None, force=False,
                timeout_s=None):
    """Compute curves for each program; returns ``(curves, sweep)``."""
    names = program_names or [m.NAME for m in workloads.ALL]
    jobs = []
    for name in names:
        module = workloads.get(name)
        args = (args_by_program or {}).get(name)
        jobs.extend(speedup_jobs(module, system=system, cpus=cpus,
                                 args=args))
    sweep = run_jobs(jobs, pool_size=pool_size, cache=cache, force=force,
                     timeout_s=timeout_s)

    curves = []
    by_key = sweep.by_key()
    for name in names:
        def cell(variant, processors):
            outcome = by_key.get(("table3", name, system, variant,
                                  processors))
            if outcome is not None and not outcome.ok:
                raise_outcome(outcome)
            return outcome
        base = cell("seq_plain", 1)
        cycles = {}
        critpath = {}
        for processors in cpus:
            outcome = cell("parallel", processors)
            if outcome is not None:
                cycles[processors] = outcome.cycles
                summary = outcome.payload.get("critpath")
                if summary is not None:
                    critpath[processors] = summary
        curves.append(SpeedupCurve(name, system, base.cycles, cycles,
                                   critpath))
    return curves, sweep


def _blocker_label(entry):
    """One-line description of a ranked "why not linear" entry."""
    share = "%d%%" % round(100 * entry.get("share", 0))
    if entry.get("cause") == "blocked-on-future":
        where = ("line %d: %s" % (entry["line"], entry["text"].strip())
                 if "line" in entry else "pc=%#x" % entry.get("pc", 0))
        return "%s of critical path blocked-on-future at %s" % (share, where)
    return "%s of critical path is chain compute (compute-bound)" % share


def render_speedup(curves):
    """The curves as a Table-3-style text block (plus, when the cells
    carried critical-path summaries, the dominant blocker per cell)."""
    curves = list(curves)
    all_cpus = sorted({n for curve in curves for n in curve.cycles})
    header = ("%-8s %-9s %12s " % ("Program", "System", "T seq (cyc)")
              + " ".join("%7d" % n for n in all_cpus))
    lines = [header, "-" * len(header)]
    for curve in curves:
        speedups = curve.speedups
        cells = []
        for n in all_cpus:
            value = speedups.get(n)
            cells.append("%6.2fx" % value if value is not None else "       ")
        lines.append("%-8s %-9s %12d %s" % (
            curve.program, curve.system, curve.seq_cycles, " ".join(cells)))

    blocker_lines = []
    for curve in curves:
        for n, entry in sorted(curve.dominant_blockers().items()):
            blocker_lines.append("  %-8s n=%-3d %s" % (
                curve.program, n, _blocker_label(entry)))
    if blocker_lines:
        lines.append("")
        lines.append("dominant critical-path blocker per cell "
                     "(april explain for the full report):")
        lines.extend(blocker_lines)
    return "\n".join(lines)
