"""Drivers that regenerate the paper's tables and figures; used by the
``benchmarks/`` suite and the ``april`` CLI."""

from repro.harness.table3 import render_table3, run_table3

__all__ = ["render_table3", "run_table3"]
