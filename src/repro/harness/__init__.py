"""Drivers that regenerate the paper's tables and figures; used by the
``benchmarks/`` suite and the ``april`` CLI.

The grid-shaped drivers (Table 3, the speedup curves) submit their
cells through the :mod:`repro.exp` experiment engine: parallel workers,
a content-addressed result cache, and typed failed cells.
"""

from repro.harness.speedup import render_speedup, run_speedup
from repro.harness.table3 import render_table3, run_table3

__all__ = ["render_speedup", "render_table3", "run_speedup", "run_table3"]
