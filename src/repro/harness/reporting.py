"""Shared reporting helpers for the benchmark harness."""

import os


def results_dir():
    """Directory where benches drop their regenerated tables/figures."""
    path = os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_report(name, text):
    """Write a regenerated artifact (e.g. ``table3.txt``) and return
    the path; also useful so CI diffs show drift."""
    path = os.path.join(results_dir(), name)
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    return path


def banner(title):
    """A section banner for bench stdout."""
    bar = "=" * max(len(title), 20)
    return "\n%s\n%s\n%s" % (bar, title, bar)


def sweep_summary_line(summary):
    """The sweep bookkeeping (cache-hit counter included) as one line
    for stderr — what ``april table3``/``april sweep`` print so cache
    behaviour is verifiable without parsing the table itself."""
    parts = ["%s=%s" % (key, summary[key])
             for key in ("jobs", "executed", "cache_hits", "deduped",
                         "retries", "failed") if key in summary]
    if "wall_time_s" in summary:
        parts.append("wall=%.2fs" % summary["wall_time_s"])
    return "sweep: " + " ".join(parts)
