"""Harness wrapper regenerating Figure 5 and Table 4 as text."""

from repro.model import figure5
from repro.model.params import ModelParams


def run_figure5(params=None, max_threads=8, context_switch=None):
    """Compute Figure 5's points with the Table 4 defaults."""
    return figure5.compute(params or ModelParams(), max_threads=max_threads,
                           context_switch=context_switch)


def render_report(params=None, max_threads=8):
    """Table 4 + the Figure 5 series + the ASCII plot, as one report."""
    params = params or ModelParams()
    points = run_figure5(params, max_threads=max_threads)
    sections = [
        "Table 4: Default system parameters",
        "-" * 40,
        params.render_table4(),
        "",
        "Figure 5: Processor utilization vs resident threads "
        "(C = %d cycles)" % params.context_switch,
        "-" * 70,
        figure5.render(points),
        "",
        figure5.ascii_plot(points),
    ]
    return "\n".join(sections)


def headline_numbers(params=None):
    """The Section 8 claims as a dict (for EXPERIMENTS.md and tests)."""
    from repro.model.utilization import solve
    params = params or ModelParams()
    u1, t1, m1 = solve(params, 1)
    u3, _, _ = solve(params, 3)
    curve = [solve(params, p)[0] for p in range(1, 17)]
    return {
        "base_round_trip": params.base_round_trip,
        "U(1)": u1,
        "U(3)": u3,
        "U_max": max(curve),
        "U(8)": curve[7],
        "plateau_at": curve.index(max(curve)) + 1,
    }
