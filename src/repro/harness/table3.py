"""Regenerate Table 3: normalized execution times of the four Mul-T
benchmarks on the Encore Multimax, APRIL with normal (eager) task
creation, and APRIL with lazy task creation.

Methodology follows Section 7 exactly:

* every entry is execution time normalized to the *sequential* version
  of the program ("with no futures and compiled with an optimizing
  T-compiler") on the same system;
* multiprocessor runs use the processor simulator **without** the cache
  and network simulators (ideal shared memory);
* the Encore rows carry software future checks and heavy task
  management; the APRIL rows use hardware tags and the 11-cycle
  trap-based run-time system; the Apr-lazy rows compile futures with
  lazy task creation.

Every cell is one independent simulator run, so the whole table is a
job grid submitted through :mod:`repro.exp`: ``run_table3(pool_size=4,
cache=...)`` fans the cells out to worker processes and re-runs after
an interrupt or config edit only execute the missing cells.  The
simulator is deterministic, so the rendered table is byte-identical at
any pool size.
"""

from repro.baselines.encore import encore_config
from repro.errors import SimulationError, WorkloadCheckError
from repro.exp.job import Job
from repro.exp.runner import run_jobs
from repro.machine.config import MachineConfig
from repro import errors as _errors
from repro import workloads

#: Processor counts per system row, as in the paper's table.
ENCORE_CPUS = (1, 2, 4, 8)
APRIL_CPUS = (1, 2, 4, 8, 16)

SYSTEMS = ("Encore", "APRIL", "Apr-lazy")

#: Per-row cell variants: the plain-sequential baseline ("T seq"), the
#: checked-sequential run ("Mul-T seq"), and the parallel compiles.
VARIANTS = ("seq_plain", "mult_seq", "parallel")

DEFAULT_MAX_CYCLES = 500_000_000


class Table3Row:
    """One system's row for one program."""

    def __init__(self, program, system, t_seq, mult_seq, parallel):
        self.program = program
        self.system = system
        self.t_seq = t_seq              # normalized: always 1.0
        self.mult_seq = mult_seq        # normalized to t_seq
        self.parallel = parallel        # {ncpus: normalized time}

    def as_dict(self):
        data = {"T seq": self.t_seq, "Mul-T seq": self.mult_seq}
        data.update({str(n): t for n, t in sorted(self.parallel.items())})
        return data


# -- job construction ------------------------------------------------------


def system_compile_options(system):
    """``(parallel mode, software_checks)`` for a Table 3 system row."""
    if system not in SYSTEMS:
        raise ValueError("unknown system %r (have: %s)"
                         % (system, ", ".join(SYSTEMS)))
    mode = "lazy" if system == "Apr-lazy" else "eager"
    return mode, system == "Encore"


def system_config(system, processors, lazy=False, **overrides):
    """The :class:`MachineConfig` a system row runs on."""
    if system == "Encore":
        return encore_config(processors, **overrides)
    return MachineConfig(num_processors=processors, lazy_futures=lazy,
                         **overrides)


def cell_job(module, system, variant, processors, args=None,
             max_cycles=DEFAULT_MAX_CYCLES, config_overrides=None,
             key_prefix=("table3",)):
    """One grid cell as a :class:`~repro.exp.job.Job`.

    The key layout ``(*prefix, program, system, variant, processors)``
    is what :func:`rows_from_sweep` parses back into rows.
    """
    if variant not in VARIANTS:
        raise ValueError("unknown variant %r" % variant)
    mode, checks = system_compile_options(system)
    if variant == "seq_plain":
        mode, checks = "sequential", False
    elif variant == "mult_seq":
        mode = "sequential"
    overrides = dict(config_overrides or {})
    config = system_config(system, processors, lazy=(mode == "lazy"),
                           **overrides)
    if args is None:
        args = module.args()
    key = tuple(key_prefix) + (module.NAME, system, variant, processors)
    return Job(key, module.source(), mode=mode, software_checks=checks,
               config=config, args=args, max_cycles=max_cycles)


def row_jobs(module, system, cpus=None, args=None,
             max_cycles=DEFAULT_MAX_CYCLES, config_overrides=None):
    """Every cell of one (program, system) row, baselines first."""
    if cpus is None:
        cpus = ENCORE_CPUS if system == "Encore" else APRIL_CPUS
    jobs = [
        cell_job(module, system, "seq_plain", 1, args=args,
                 max_cycles=max_cycles, config_overrides=config_overrides),
        cell_job(module, system, "mult_seq", 1, args=args,
                 max_cycles=max_cycles, config_overrides=config_overrides),
    ]
    for processors in cpus:
        jobs.append(cell_job(module, system, "parallel", processors,
                             args=args, max_cycles=max_cycles,
                             config_overrides=config_overrides))
    return jobs


# -- sweep -> rows ---------------------------------------------------------


def raise_outcome(outcome):
    """Re-raise a failed cell as its original typed exception."""
    exc_type = getattr(_errors, outcome.kind, None)
    if isinstance(exc_type, type) and issubclass(exc_type, _errors.ReproError):
        raise exc_type(outcome.message)
    raise SimulationError("%s: %s" % (outcome.kind, outcome.message))


def rows_from_sweep(sweep, check_result=True):
    """Assemble :class:`Table3Row` objects from a finished sweep.

    Returns ``(rows, failures)`` where ``failures`` is a list of
    :class:`~repro.exp.runner.JobFailed` — cells that crashed, timed
    out, or (with ``check_result``) returned a value different from the
    row's sequential baseline.  A failed cell leaves a blank in the
    rendered table instead of killing the sweep.
    """
    by_row = {}
    order = []
    for outcome in sweep:
        program, system, variant, processors = outcome.key[-4:]
        row_key = (program, system)
        if row_key not in by_row:
            by_row[row_key] = {}
            order.append(row_key)
        by_row[row_key][(variant, processors)] = outcome

    rows, failures = [], []
    for program, system in order:
        cells = by_row[(program, system)]
        base = cells.get(("seq_plain", 1))
        if base is None or not base.ok:
            if base is not None:
                failures.append(base)
            continue
        t_seq_cycles = base.cycles
        expected = base.value

        def checked(outcome, processors=None):
            """The outcome, demoted to a failure on a bad self-check."""
            if outcome is None or not outcome.ok:
                if outcome is not None:
                    failures.append(outcome)
                return None
            if check_result and outcome.value != expected:
                error = WorkloadCheckError(
                    "result %r != sequential baseline %r"
                    % (outcome.value, expected),
                    program=program, system=system, processors=processors,
                    config=outcome.job.config, expected=expected,
                    actual=outcome.value)
                failures.append(_failed_check(outcome, error))
                return None
            return outcome

        mult = checked(cells.get(("mult_seq", 1)), processors=1)
        parallel = {}
        for (variant, processors), outcome in sorted(
                cells.items(), key=lambda item: (item[0][0], item[0][1])):
            if variant != "parallel":
                continue
            ok = checked(outcome, processors=processors)
            if ok is not None:
                parallel[processors] = ok.cycles / t_seq_cycles
        rows.append(Table3Row(
            program, system,
            t_seq=1.0,
            mult_seq=(mult.cycles / t_seq_cycles if mult is not None
                      else None),
            parallel=parallel,
        ))
    return rows, failures


def _failed_check(outcome, error):
    from repro.exp.runner import JobFailed
    return JobFailed(outcome.job, outcome.hash,
                     kind="WorkloadCheckError", message=str(error),
                     context=error.context, attempts=outcome.attempts)


class Table3Result:
    """Rows plus the sweep bookkeeping (iterable like the row list)."""

    def __init__(self, rows, sweep, failures):
        self.rows = rows
        self.sweep = sweep
        self.failures = failures

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def summary(self):
        """Engine summary with check failures folded into ``failed``."""
        data = self.sweep.summary()
        data["failed"] = len(self.failures)
        return data


# -- public drivers --------------------------------------------------------


def run_program_row(module, system, cpus=None, args=None,
                    max_cycles=DEFAULT_MAX_CYCLES, check_result=True):
    """Compute one Table 3 row (serial, uncached).

    Args:
        module: a workload module from :mod:`repro.workloads`.
        system: "Encore", "APRIL", or "Apr-lazy".
        cpus: processor counts (defaults per system, as in the paper).
        args: workload arguments (defaults to the module's Table 3 size).

    Raises the cell's typed error — :class:`~repro.errors.
    WorkloadCheckError` on a self-check mismatch — instead of returning
    a partial row.
    """
    jobs = row_jobs(module, system, cpus=cpus, args=args,
                    max_cycles=max_cycles)
    sweep = run_jobs(jobs)
    rows, failures = rows_from_sweep(sweep, check_result=check_result)
    if failures:
        first = failures[0]
        if first.kind == "WorkloadCheckError":
            context = first.context or {}
            error = WorkloadCheckError(first.message)
            error.program = context.get("program")
            error.system = context.get("system")
            error.processors = context.get("processors")
            raise error
        raise_outcome(first)
    return rows[0]


def run_table3(program_names=None, systems=SYSTEMS, args_by_program=None,
               cpus_by_system=None, pool_size=1, cache=None, force=False,
               timeout_s=None, check_result=True):
    """Compute the full table; returns a :class:`Table3Result` whose
    rows iterate in paper order.

    ``pool_size``/``cache``/``force``/``timeout_s`` go straight to
    :func:`repro.exp.runner.run_jobs`: with a cache, an interrupted or
    partially edited table resumes from the cells already on disk.
    """
    jobs = []
    names = program_names or [m.NAME for m in workloads.ALL]
    for name in names:
        module = workloads.get(name)
        args = (args_by_program or {}).get(name)
        for system in systems:
            cpus = (cpus_by_system or {}).get(system)
            jobs.extend(row_jobs(module, system, cpus=cpus, args=args))
    sweep = run_jobs(jobs, pool_size=pool_size, cache=cache, force=force,
                     timeout_s=timeout_s)
    rows, failures = rows_from_sweep(sweep, check_result=check_result)
    return Table3Result(rows, sweep, failures)


def render_table3(rows):
    """Format rows like the paper's Table 3 (blank = failed cell)."""
    rows = list(rows)
    all_cpus = sorted({n for row in rows for n in row.parallel})
    header = ("%-8s %-9s %6s %9s " % ("Program", "System", "T seq", "Mul-T seq")
              + " ".join("%6d" % n for n in all_cpus))
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for n in all_cpus:
            value = row.parallel.get(n)
            cells.append("%6.2f" % value if value is not None else "      ")
        mult_seq = ("%9.2f" % row.mult_seq if row.mult_seq is not None
                    else " " * 9)
        lines.append("%-8s %-9s %6.2f %s %s" % (
            row.program, row.system, row.t_seq, mult_seq, " ".join(cells)))
    return "\n".join(lines)
