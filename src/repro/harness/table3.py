"""Regenerate Table 3: normalized execution times of the four Mul-T
benchmarks on the Encore Multimax, APRIL with normal (eager) task
creation, and APRIL with lazy task creation.

Methodology follows Section 7 exactly:

* every entry is execution time normalized to the *sequential* version
  of the program ("with no futures and compiled with an optimizing
  T-compiler") on the same system;
* multiprocessor runs use the processor simulator **without** the cache
  and network simulators (ideal shared memory);
* the Encore rows carry software future checks and heavy task
  management; the APRIL rows use hardware tags and the 11-cycle
  trap-based run-time system; the Apr-lazy rows compile futures with
  lazy task creation.
"""

from repro.baselines.encore import encore_config
from repro.lang.compiler import compile_source
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro import workloads

#: Processor counts per system row, as in the paper's table.
ENCORE_CPUS = (1, 2, 4, 8)
APRIL_CPUS = (1, 2, 4, 8, 16)

SYSTEMS = ("Encore", "APRIL", "Apr-lazy")


class Table3Row:
    """One system's row for one program."""

    def __init__(self, program, system, t_seq, mult_seq, parallel):
        self.program = program
        self.system = system
        self.t_seq = t_seq              # normalized: always 1.0
        self.mult_seq = mult_seq        # normalized to t_seq
        self.parallel = parallel        # {ncpus: normalized time}

    def as_dict(self):
        data = {"T seq": self.t_seq, "Mul-T seq": self.mult_seq}
        data.update({str(n): t for n, t in sorted(self.parallel.items())})
        return data


def _run(compiled, config, args, max_cycles):
    machine = AlewifeMachine(compiled.program, config)
    result = machine.run(entry=compiled.entry_label("main"), args=args,
                         max_cycles=max_cycles)
    return result


def _april_config(processors, lazy):
    return MachineConfig(num_processors=processors, lazy_futures=lazy)


def run_program_row(module, system, cpus=None, args=None,
                    max_cycles=500_000_000, check_result=True):
    """Compute one Table 3 row.

    Args:
        module: a workload module from :mod:`repro.workloads`.
        system: "Encore", "APRIL", or "Apr-lazy".
        cpus: processor counts (defaults per system, as in the paper).
        args: workload arguments (defaults to the module's Table 3 size).
    """
    if args is None:
        args = module.args()
    checks = system == "Encore"
    if cpus is None:
        cpus = ENCORE_CPUS if system == "Encore" else APRIL_CPUS
    mode = "lazy" if system == "Apr-lazy" else "eager"

    source = module.source()
    seq_plain = compile_source(source, mode="sequential",
                               software_checks=False)
    seq_checked = compile_source(source, mode="sequential",
                                 software_checks=checks)
    parallel = compile_source(source, mode=mode, software_checks=checks)

    def config_for(processors):
        if system == "Encore":
            return encore_config(processors)
        return _april_config(processors, lazy=(mode == "lazy"))

    base = _run(seq_plain, config_for(1), args, max_cycles)
    t_seq_cycles = base.cycles
    expected = base.value

    mult_seq = _run(seq_checked, config_for(1), args, max_cycles)
    if check_result and mult_seq.value != expected:
        raise AssertionError(
            "%s/%s Mul-T seq result %r != %r"
            % (module.NAME, system, mult_seq.value, expected))

    parallel_times = {}
    for processors in cpus:
        result = _run(parallel, config_for(processors), args, max_cycles)
        if check_result and result.value != expected:
            raise AssertionError(
                "%s/%s on %d cpus: %r != %r"
                % (module.NAME, system, processors, result.value, expected))
        parallel_times[processors] = result.cycles / t_seq_cycles

    return Table3Row(
        module.NAME, system,
        t_seq=1.0,
        mult_seq=mult_seq.cycles / t_seq_cycles,
        parallel=parallel_times,
    )


def run_table3(program_names=None, systems=SYSTEMS, args_by_program=None,
               cpus_by_system=None):
    """Compute the full table; returns ``[Table3Row]`` in paper order."""
    rows = []
    names = program_names or [m.NAME for m in workloads.ALL]
    for name in names:
        module = workloads.get(name)
        args = (args_by_program or {}).get(name)
        for system in systems:
            cpus = (cpus_by_system or {}).get(system)
            rows.append(run_program_row(module, system, cpus=cpus, args=args))
    return rows


def render_table3(rows):
    """Format rows like the paper's Table 3."""
    all_cpus = sorted({n for row in rows for n in row.parallel})
    header = ("%-8s %-9s %6s %9s " % ("Program", "System", "T seq", "Mul-T seq")
              + " ".join("%6d" % n for n in all_cpus))
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for n in all_cpus:
            value = row.parallel.get(n)
            cells.append("%6.2f" % value if value is not None else "      ")
        lines.append("%-8s %-9s %6.2f %9.2f %s" % (
            row.program, row.system, row.t_seq, row.mult_seq, " ".join(cells)))
    return "\n".join(lines)
