"""Machine and run-time system configuration.

Gathers every knob in one place: the hardware parameters of the APRIL /
ALEWIFE design (task frames, switch costs) with the paper's measured
values as defaults, and the run-time-system cost parameters that stand
in for the assembly routines we replaced with Python "microcode" (see
DESIGN.md substitution table — each cost is charged where the paper's
handler would have spent the cycles).

Table 4 of the paper (the analytical-model parameters) lives in
:mod:`repro.model.params`; this module concerns the executable machine.
"""

from repro.core.traps import (
    FUTURE_TOUCH_RESOLVED_CYCLES,
    SWITCH_HANDLER_CYCLES,
)
from repro.errors import ConfigError


class MachineConfig:
    """Configuration for an ALEWIFE machine simulation.

    Attributes mirror the paper where it gives numbers:

    * ``switch_handler_cycles`` — 6, for the 11-cycle total context
      switch of Section 6.1 (5-cycle squash + 6-cycle handler).  Set
      ``custom_april_switch=True`` to model the 4-cycle custom-silicon
      switch of Section 6.1 instead.
    * ``future_touch_resolved_cycles`` — 23 (Section 6.2).
    * ``num_task_frames`` — 4 (eight SPARC windows, two per frame).
    """

    def __init__(
        self,
        num_processors=1,
        num_task_frames=4,
        # -- memory layout -------------------------------------------------
        memory_words=1 << 21,
        user_heap_words=1 << 15,     # per node: compiled-code inline allocs
        kernel_heap_words=1 << 16,   # per node: stacks, futures, descriptors
        stack_words=1 << 10,         # per thread
        # -- trap handler costs (paper-measured where available) -----------
        switch_handler_cycles=SWITCH_HANDLER_CYCLES,
        custom_april_switch=False,
        trap_squash_cycles=5,
        future_touch_resolved_cycles=FUTURE_TOUCH_RESOLVED_CYCLES,
        # -- run-time system costs (stand-ins for assembly routines) -------
        eager_task_create_cycles=200,
        thread_exit_cycles=30,
        future_resolve_cycles=18,
        lazy_push_cycles=3,
        lazy_finish_cycles=3,
        lazy_steal_cycles=60,
        thread_load_cycles=70,
        thread_unload_cycles=70,
        idle_poll_cycles=8,
        steal_poll_cycles=12,
        # -- policies ---------------------------------------------------------
        touch_spin_limit=2,
        lazy_futures=False,
        placement="round_robin",
        # -- memory system ------------------------------------------------------
        memory_mode="ideal",         # "ideal" | "coherent"
        memory_latency=1,            # ideal-mode access latency
        # -- coherent-mode parameters (Table 4 defaults) --------------------
        coherent_memory_latency=10,
        cache_bytes=64 * 1024,
        cache_block_bytes=16,
        cache_assoc=4,
        network_dim=2,               # small simulated machines: 2-D mesh
        network_hop_cycles=1,
    ):
        self.num_processors = num_processors
        self.num_task_frames = num_task_frames
        self.memory_words = memory_words
        self.user_heap_words = user_heap_words
        self.kernel_heap_words = kernel_heap_words
        self.stack_words = stack_words
        # The custom-APRIL datapath avoids the PSR save/restore and the
        # double frame-pointer increment: a 4-cycle switch (Section 6.1).
        self.switch_handler_cycles = (
            0 if custom_april_switch else switch_handler_cycles
        )
        self.trap_squash_cycles = 4 if custom_april_switch else trap_squash_cycles
        self.custom_april_switch = custom_april_switch
        self.future_touch_resolved_cycles = future_touch_resolved_cycles
        self.eager_task_create_cycles = eager_task_create_cycles
        self.thread_exit_cycles = thread_exit_cycles
        self.future_resolve_cycles = future_resolve_cycles
        self.lazy_push_cycles = lazy_push_cycles
        self.lazy_finish_cycles = lazy_finish_cycles
        self.lazy_steal_cycles = lazy_steal_cycles
        self.thread_load_cycles = thread_load_cycles
        self.thread_unload_cycles = thread_unload_cycles
        self.idle_poll_cycles = idle_poll_cycles
        self.steal_poll_cycles = steal_poll_cycles
        self.touch_spin_limit = touch_spin_limit
        self.lazy_futures = lazy_futures
        self.placement = placement
        self.memory_mode = memory_mode
        self.memory_latency = memory_latency
        self.coherent_memory_latency = coherent_memory_latency
        self.cache_bytes = cache_bytes
        self.cache_block_bytes = cache_block_bytes
        self.cache_assoc = cache_assoc
        self.network_dim = network_dim
        self.network_hop_cycles = network_hop_cycles
        self.validate()

    def validate(self):
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.num_processors < 1:
            raise ConfigError("need at least one processor")
        if self.num_task_frames < 1:
            raise ConfigError("need at least one task frame")
        if self.placement not in ("round_robin", "local"):
            raise ConfigError("unknown placement policy %r" % self.placement)
        if self.memory_mode not in ("ideal", "coherent"):
            raise ConfigError("unknown memory mode %r" % self.memory_mode)
        per_node = self.user_heap_words + self.kernel_heap_words
        if per_node * self.num_processors >= self.memory_words:
            raise ConfigError(
                "memory_words=%d too small for %d nodes x %d heap words"
                % (self.memory_words, self.num_processors, per_node)
            )
        if self.stack_words * 4 > self.kernel_heap_words:
            raise ConfigError("stack_words larger than the kernel heap")

    def to_dict(self):
        """Canonical constructor-equivalent knob dict.

        ``MachineConfig(**config.to_dict())`` rebuilds an equivalent
        config; the dict is JSON-ready and is what sweep-job content
        hashes and spec files use (see :mod:`repro.exp`).
        """
        return self._fields()

    def fingerprint(self):
        """Stable hex digest of every knob (part of sweep cache keys)."""
        import hashlib
        import json
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _fields(self):
        return dict(
            num_processors=self.num_processors,
            num_task_frames=self.num_task_frames,
            memory_words=self.memory_words,
            user_heap_words=self.user_heap_words,
            kernel_heap_words=self.kernel_heap_words,
            stack_words=self.stack_words,
            switch_handler_cycles=(
                SWITCH_HANDLER_CYCLES if self.custom_april_switch
                else self.switch_handler_cycles),
            custom_april_switch=self.custom_april_switch,
            trap_squash_cycles=(
                5 if self.custom_april_switch else self.trap_squash_cycles),
            future_touch_resolved_cycles=self.future_touch_resolved_cycles,
            eager_task_create_cycles=self.eager_task_create_cycles,
            thread_exit_cycles=self.thread_exit_cycles,
            future_resolve_cycles=self.future_resolve_cycles,
            lazy_push_cycles=self.lazy_push_cycles,
            lazy_finish_cycles=self.lazy_finish_cycles,
            lazy_steal_cycles=self.lazy_steal_cycles,
            thread_load_cycles=self.thread_load_cycles,
            thread_unload_cycles=self.thread_unload_cycles,
            idle_poll_cycles=self.idle_poll_cycles,
            steal_poll_cycles=self.steal_poll_cycles,
            touch_spin_limit=self.touch_spin_limit,
            lazy_futures=self.lazy_futures,
            placement=self.placement,
            memory_mode=self.memory_mode,
            memory_latency=self.memory_latency,
            coherent_memory_latency=self.coherent_memory_latency,
            cache_bytes=self.cache_bytes,
            cache_block_bytes=self.cache_block_bytes,
            cache_assoc=self.cache_assoc,
            network_dim=self.network_dim,
            network_hop_cycles=self.network_hop_cycles,
        )

    def replace(self, **overrides):
        """A copy of this config with some fields overridden."""
        fields = self._fields()
        fields.update(overrides)
        return MachineConfig(**fields)
