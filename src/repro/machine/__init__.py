"""Whole-machine simulation: the ALEWIFE machine driver, configuration,
statistics, and the execution tracer."""

from repro.machine.alewife import AlewifeMachine, MachineResult, run_program
from repro.machine.config import MachineConfig
from repro.machine.stats import MachineStats
from repro.machine.trace import Tracer

__all__ = ["AlewifeMachine", "MachineConfig", "MachineResult",
           "MachineStats", "Tracer", "run_program"]
