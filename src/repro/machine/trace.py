"""Execution tracing (the tracer boxes of the paper's Figure 4).

Attach a :class:`Tracer` to a machine before ``run()`` to capture a
bounded instruction trace per processor — address, disassembly, active
frame, and the source line when the program carries a source map (the
assembler and the Mul-T compiler both produce one).  Trap entries are
captured too (with the trap kind), so switch-handler and run-time
activity is visible between the retired instructions.  Used for
debugging run-time/compiler interactions and by the examples; cheap
enough to leave compiled in (one attribute test per instruction when
disabled).
"""

from collections import deque

from repro.isa.disassembler import disassemble_word
from repro.isa.instructions import render


class TraceRecord:
    """One executed instruction, or one trap entry (``trap`` set)."""

    __slots__ = ("cycle", "node", "frame", "pc", "text", "source", "trap")

    def __init__(self, cycle, node, frame, pc, text, source, trap=None):
        self.cycle = cycle
        self.node = node
        self.frame = frame
        self.pc = pc
        self.text = text
        self.source = source
        self.trap = trap

    def __repr__(self):
        return "[%8d] n%d/f%d %#07x  %s" % (
            self.cycle, self.node, self.frame, self.pc, self.text)


class Tracer:
    """A bounded, filterable instruction trace over a whole machine.

    Args:
        machine: the :class:`AlewifeMachine` to instrument.
        capacity: ring size (oldest records are dropped).
        nodes: restrict to these node ids (None = all).
        pc_range: ``(lo, hi)`` byte-address filter (None = all).
        traps: also record trap entries (default True).
    """

    def __init__(self, machine, capacity=10000, nodes=None, pc_range=None,
                 traps=True):
        self.machine = machine
        self.records = deque(maxlen=capacity)
        self.nodes = set(nodes) if nodes is not None else None
        self.pc_range = pc_range
        self.instructions_seen = 0
        self.traps_seen = 0
        self._source_map = machine.program.source_map
        for cpu in machine.cpus:
            cpu.trace_hook = self._hook
            if traps:
                cpu.trap_hook = self._trap_hook

    def detach(self):
        """Stop tracing."""
        for cpu in self.machine.cpus:
            cpu.trace_hook = None
            if cpu.trap_hook == self._trap_hook:
                cpu.trap_hook = None

    def _passes(self, cpu, pc):
        if self.nodes is not None and cpu.node_id not in self.nodes:
            return False
        if self.pc_range is not None:
            lo, hi = self.pc_range
            if not lo <= pc < hi:
                return False
        return True

    def _hook(self, cpu, pc, instr):
        self.instructions_seen += 1
        if not self._passes(cpu, pc):
            return
        try:
            text = render(instr)
        except ValueError:
            text = disassemble_word(0)
        source = self._source_map.get(pc)
        self.records.append(TraceRecord(
            cpu.cycles, cpu.node_id, cpu.fp, pc, text, source))

    def _trap_hook(self, cpu, frame, trap):
        """Record a trap entry (the handler runs after this point)."""
        self.traps_seen += 1
        pc = trap.pc if trap.pc is not None else frame.pc
        if not self._passes(cpu, pc):
            return
        kind = trap.kind.name
        self.records.append(TraceRecord(
            cpu.cycles, cpu.node_id, frame.index, pc,
            "*** trap %s" % kind, self._source_map.get(pc), trap=kind))

    # -- queries -------------------------------------------------------------

    def __len__(self):
        return len(self.records)

    def last(self, count=20):
        """The most recent ``count`` records."""
        return list(self.records)[-count:]

    def at_label(self, label):
        """Records whose PC is the given program label."""
        address = self.machine.program.address_of(label)
        return [r for r in self.records if r.pc == address]

    def trap_records(self, kind=None):
        """The captured trap entries (optionally one kind only)."""
        records = [r for r in self.records if r.trap is not None]
        if kind is not None:
            records = [r for r in records if r.trap == kind]
        return records

    def per_node_counts(self):
        counts = {}
        for record in self.records:
            counts[record.node] = counts.get(record.node, 0) + 1
        return counts

    def render(self, count=30):
        """A listing of the last ``count`` records with source lines."""
        lines = []
        for record in self.last(count):
            suffix = ""
            if record.source is not None:
                suffix = "    ; line %d: %s" % record.source
            lines.append("%r%s" % (record, suffix))
        return "\n".join(lines)
