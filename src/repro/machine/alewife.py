"""The ALEWIFE machine simulator (paper Sections 2 and 7, Figure 4).

Ties processors, memory system, and run-time system together and runs
the whole machine with an event-driven loop: the processor with the
smallest local clock executes next, so inter-processor interleavings
respect simulated time without a global lock-step sweep.

Two memory modes (matching the paper's methodology):

* ``ideal`` — one shared single-cycle memory, no caches or network:
  the configuration of the Table 3 multiprocessor measurements
  ("simulating a shared-memory machine with no memory latency").
* ``coherent`` — per-node caches kept coherent by a directory protocol
  over a k-ary n-cube network; remote misses trap the processor into
  the switch-spin handler (the full ALEWIFE configuration).
"""

import heapq

from repro.core.processor import Processor
from repro.errors import SimulationError
from repro.isa.encoding import DecodeCache
from repro.machine.config import MachineConfig
from repro.machine.stats import MachineStats
from repro.mem.ideal import IdealMemoryPort
from repro.mem.memory import Memory
from repro.runtime.rts import RuntimeSystem


class MachineResult:
    """Outcome of one machine run."""

    def __init__(self, machine, result_word):
        self.result_word = result_word
        self.value = machine.runtime.decode_value(result_word)
        self.cycles = machine.time
        self.stats = MachineStats(machine)
        self.output = list(machine.runtime.output)

    def __repr__(self):
        return "MachineResult(value=%r, cycles=%d)" % (self.value, self.cycles)


class AlewifeMachine:
    """An N-node ALEWIFE machine executing one loaded program."""

    def __init__(self, program, config=None):
        self.config = config or MachineConfig()
        self.program = program
        self.memory = Memory(self.config.memory_words)
        self.memory.load_program(program)
        self.time = 0
        #: Observability slots (see :mod:`repro.obs`): an attached
        #: ``Observation`` wires these; ``None`` keeps the fast path.
        self.sampler = None
        self.events = None
        decoder = DecodeCache()

        self.cpus = []
        self._build_memory_system(decoder)
        self.runtime = RuntimeSystem(
            self.config, self.memory, self.cpus, program)

    def _build_memory_system(self, decoder):
        config = self.config
        if config.memory_mode == "ideal":
            port = IdealMemoryPort(self.memory, latency=config.memory_latency)
            for node in range(config.num_processors):
                cpu = Processor(node_id=node, port=port,
                                num_frames=config.num_task_frames,
                                decoder=decoder)
                cpu.trap_squash_cycles = config.trap_squash_cycles
                self.cpus.append(cpu)
            self.fabric = None
        else:
            # Full cache + directory + network system.
            from repro.mem.system import CoherentMemorySystem
            self.fabric = CoherentMemorySystem(self, decoder)
            self.cpus = self.fabric.cpus

    # -- execution ---------------------------------------------------------

    def run(self, entry="main", args=(), max_cycles=200_000_000):
        """Run ``entry`` on the machine; returns a :class:`MachineResult`.

        Raises :class:`SimulationError` on deadlock or cycle exhaustion.
        """
        runtime = self.runtime
        runtime.spawn_main(entry, args)

        # Event queue of (local clock, sequence, cpu index); the
        # sequence breaks ties deterministically.
        queue = []
        seq = 0
        for index, cpu in enumerate(self.cpus):
            heapq.heappush(queue, (cpu.cycles, seq, index))
            seq += 1

        idle_streak = 0
        while not runtime.done:
            when, _, index = heapq.heappop(queue)
            cpu = self.cpus[index]
            self.time = max(self.time, when)
            sampler = self.sampler
            if sampler is not None and self.time >= sampler.next_sample_at:
                sampler.sample(self.time)
            if self.time > max_cycles:
                raise SimulationError(
                    "cycle limit %d exceeded (deadlock or undersized limit)"
                    % max_cycles)

            if self.fabric is not None:
                self.fabric.advance_to(self.time)

            if runtime.has_work(cpu):
                cpu.step()
                idle_streak = 0
            else:
                found = runtime.on_idle(cpu)
                if found:
                    idle_streak = 0
                else:
                    idle_streak += 1
                    if idle_streak > 4 * len(self.cpus):
                        runtime.check_deadlock()

            heapq.heappush(queue, (cpu.cycles, seq, index))
            seq += 1

        self.time = max(self.time, max(cpu.cycles for cpu in self.cpus))
        if self.sampler is not None:
            self.sampler.finish(self.time)
        return MachineResult(self, runtime.result)

    def stats(self):
        """Current :class:`MachineStats` snapshot."""
        return MachineStats(self)


def run_program(program, config=None, entry="main", args=(),
                max_cycles=200_000_000):
    """Build a machine, run a program, return the :class:`MachineResult`."""
    machine = AlewifeMachine(program, config)
    return machine.run(entry=entry, args=args, max_cycles=max_cycles)
