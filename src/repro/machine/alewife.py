"""The ALEWIFE machine simulator (paper Sections 2 and 7, Figure 4).

Ties processors, memory system, and run-time system together and runs
the whole machine with an event-driven loop: the processor with the
smallest local clock executes next, so inter-processor interleavings
respect simulated time without a global lock-step sweep.

Two memory modes (matching the paper's methodology):

* ``ideal`` — one shared single-cycle memory, no caches or network:
  the configuration of the Table 3 multiprocessor measurements
  ("simulating a shared-memory machine with no memory latency").
* ``coherent`` — per-node caches kept coherent by a directory protocol
  over a k-ary n-cube network; remote misses trap the processor into
  the switch-spin handler (the full ALEWIFE configuration).
"""

import heapq

from repro.core.processor import Processor
from repro.errors import DeadlockError, SimulationError
from repro.isa.encoding import DecodeCache
from repro.machine.config import MachineConfig
from repro.machine.stats import MachineStats
from repro.mem.ideal import IdealMemoryPort
from repro.mem.memory import CodeWatch, Memory
from repro.runtime.rts import RuntimeSystem


class MachineResult:
    """Outcome of one machine run."""

    def __init__(self, machine, result_word):
        self.result_word = result_word
        self.value = machine.runtime.decode_value(result_word)
        self.cycles = machine.time
        self.stats = MachineStats(machine)
        self.output = list(machine.runtime.output)

    def __repr__(self):
        return "MachineResult(value=%r, cycles=%d)" % (self.value, self.cycles)


class AlewifeMachine:
    """An N-node ALEWIFE machine executing one loaded program.

    ``fastpath`` selects the interpreter/loop generation.  ``True`` (the
    default) uses predecoded dispatch plus — when every observability
    hook is dormant — the superblock fast loops; ``False`` pins every
    processor to the original decode + if-chain interpreter and the
    per-instruction heapq loop, which is the oracle side of the
    differential lockstep harness.  It is deliberately a constructor
    argument and *not* a :class:`MachineConfig` knob, so experiment
    cache fingerprints are unaffected.

    ``jit`` gates the third interpreter tier (:mod:`repro.core.jit`):
    hot superblocks compiled to generated Python functions.  ``False``
    (CLI ``--no-jit``) caps the fast path at the PR 5 closure tier —
    the A/B knob for pricing what the generated code is worth.  Same
    contract as ``fastpath``: a constructor argument, not a config
    knob, and architecturally invisible (the lockstep harness pins all
    tiers cycle-identical).

    Whatever the tier, every store into a translated pc range
    invalidates the covering cached translations through a shared
    :class:`~repro.mem.memory.CodeWatch`, so self-modifying code stays
    correct on all paths.
    """

    def __init__(self, program, config=None, fastpath=True, jit=True):
        self.config = config or MachineConfig()
        self.program = program
        self.memory = Memory(self.config.memory_words)
        self.memory.load_program(program)
        self.time = 0
        self.fastpath = fastpath
        #: Which execution loop :meth:`run` chose ("fast-sequential",
        #: "fast-sliced", or "reference"); set at run time, for tests.
        self.loop_used = None
        #: Observability slots (see :mod:`repro.obs`): an attached
        #: ``Observation`` wires these; ``None`` keeps the fast path.
        self.sampler = None
        self.events = None
        #: Optional :class:`repro.obs.flight.Watchdog`; every loop polls
        #: its ``next_check_at`` and :meth:`run` converts the run-time
        #: system's deadlock abort into a typed ``HangDetected``.
        self.watchdog = None
        decoder = DecodeCache()

        self.cpus = []
        self._build_memory_system(decoder)
        self.jit = jit
        watch = CodeWatch()
        self.memory.code_watch = watch
        for cpu in self.cpus:
            cpu.jit_enabled = jit
            cpu.attach_code_watch(watch)
        if not fastpath:
            for cpu in self.cpus:
                cpu.use_reference_interpreter()
        self.runtime = RuntimeSystem(
            self.config, self.memory, self.cpus, program)

    def _build_memory_system(self, decoder):
        config = self.config
        if config.memory_mode == "ideal":
            port = IdealMemoryPort(self.memory, latency=config.memory_latency)
            for node in range(config.num_processors):
                cpu = Processor(node_id=node, port=port,
                                num_frames=config.num_task_frames,
                                decoder=decoder)
                cpu.trap_squash_cycles = config.trap_squash_cycles
                self.cpus.append(cpu)
            self.fabric = None
        else:
            # Full cache + directory + network system.
            from repro.mem.system import CoherentMemorySystem
            self.fabric = CoherentMemorySystem(self, decoder)
            self.cpus = self.fabric.cpus

    # -- execution ---------------------------------------------------------

    def _hooks_dormant(self):
        """True when no observability hook anywhere can observe steps.

        This is the PR 1 dormant-hook contract: the superblock fast
        loops are only legal when nothing samples, traces, profiles, or
        accounts per instruction/charge, so batching cannot change what
        an observer would have seen.

        One refinement: an event bus marked ``coarse=True`` (the flight
        recorder's) does not pin the reference loop.  Every event kind
        is emitted outside fused superblocks — traps, scheduling,
        futures, network, memory transactions — and their cycle stamps
        are identical on the fast and reference paths (the lockstep
        harness proves the schedules equal), so a coarse-only consumer
        observes the same stream either way.  A default
        (``coarse=False``) bus still forces the reference loop, as
        before.
        """
        if self.sampler is not None:
            return False
        events = self.events
        if events is not None and not events.coarse:
            return False
        for cpu in self.cpus:
            if (cpu.trace_hook is not None or cpu.profile_hook is not None
                    or cpu.txn is not None or cpu.lifetime is not None
                    or cpu.watch_hook is not None):
                return False
            events = cpu.events
            if events is not None and not events.coarse:
                return False
        return True

    def run(self, entry="main", args=(), max_cycles=200_000_000):
        """Run ``entry`` on the machine; returns a :class:`MachineResult`.

        Raises :class:`SimulationError` on deadlock or cycle exhaustion.
        """
        runtime = self.runtime
        runtime.spawn_main(entry, args)

        if self.watchdog is not None:
            self.watchdog.next_check_at = self.watchdog.interval
        try:
            if self.fastpath and self._hooks_dormant():
                if len(self.cpus) == 1:
                    self.loop_used = "fast-sequential"
                    self._run_fast_sequential(max_cycles)
                else:
                    self.loop_used = "fast-sliced"
                    self._run_fast_sliced(max_cycles)
            else:
                self.loop_used = "reference"
                self._run_reference(max_cycles)
        except DeadlockError as exc:
            # The idle-streak deadlock abort fires long before the
            # watchdog's periodic window; with a watchdog attached it
            # becomes the same typed post-mortem result.
            if self.watchdog is not None:
                self.time = max(self.time,
                                max(cpu.cycles for cpu in self.cpus))
                raise self.watchdog.on_deadlock(self.time, exc) from exc
            raise

        self.time = max(self.time, max(cpu.cycles for cpu in self.cpus))
        if self.sampler is not None:
            self.sampler.finish(self.time)
        return MachineResult(self, runtime.result)

    def _cycle_limit_error(self, max_cycles):
        return SimulationError(
            "cycle limit %d exceeded (deadlock or undersized limit)"
            % max_cycles)

    def _run_reference(self, max_cycles):
        """The per-instruction event loop every hook observes.

        This is the oracle path: it runs whenever observability is
        attached (or ``fastpath=False``), executing one instruction per
        iteration through :meth:`Processor.step` so every hook sees the
        exact per-instruction interleaving.

        The only departure from the seed loop is *pop slicing*: after
        popping the earliest processor, it keeps stepping it while its
        clock stays strictly below the next queue entry.  The seed loop
        would re-push and immediately re-pop the same processor in that
        situation (strict minimum wins; at a clock tie the earlier
        sequence number — the entry still in the queue — wins), so the
        schedule, and therefore every observable, is unchanged; each
        in-slice iteration still advances :attr:`time`, polls the
        sampler, and enforces the cycle limit exactly as a pop did.
        """
        runtime = self.runtime
        cpus = self.cpus
        sampler = self.sampler
        watchdog = self.watchdog
        fabric = self.fabric
        has_work = runtime.has_work
        on_idle = runtime.on_idle
        heappush = heapq.heappush
        heappop = heapq.heappop
        idle_limit = 4 * len(cpus)

        # Event queue of (local clock, sequence, cpu index); the
        # sequence breaks ties deterministically.
        queue = []
        seq = 0
        for index, cpu in enumerate(cpus):
            heappush(queue, (cpu.cycles, seq, index))
            seq += 1

        idle_streak = 0
        while not runtime.done:
            if not queue:
                raise SimulationError(
                    "all processors halted without a result")
            _, _, index = heappop(queue)
            cpu = cpus[index]
            if cpu.halted:
                # A halted processor never makes progress again: drop
                # it from the event queue instead of re-popping it at a
                # frozen clock forever.
                continue
            while True:
                before = cpu.cycles
                if before > self.time:
                    self.time = before
                if (sampler is not None
                        and self.time >= sampler.next_sample_at):
                    sampler.sample(self.time)
                if (watchdog is not None
                        and self.time >= watchdog.next_check_at):
                    watchdog.check(self.time)
                if self.time > max_cycles:
                    raise self._cycle_limit_error(max_cycles)

                if fabric is not None:
                    fabric.advance_to(self.time)

                if has_work(cpu):
                    cpu.step()
                    idle_streak = 0
                elif on_idle(cpu):
                    idle_streak = 0
                else:
                    idle_streak += 1
                    if idle_streak > idle_limit:
                        runtime.check_deadlock()

                if (cpu.cycles == before or cpu.halted or runtime.done
                        or (queue and cpu.cycles >= queue[0][0])):
                    # Zero progress re-arbitrates (the re-pushed entry
                    # loses any clock tie, exactly like the seed loop);
                    # reaching the next entry's clock ends the slice.
                    break

            if not cpu.halted:
                heappush(queue, (cpu.cycles, seq, index))
                seq += 1

    def _run_fast_sequential(self, max_cycles):
        """Single-CPU fast loop: no heapq, superblocks unbounded.

        With one processor there is no interleaving to arbitrate, so
        the event queue is pure overhead: this loop just drives the CPU
        directly, letting :meth:`Processor.step_block` fuse every
        straight-line run it finds.
        """
        runtime = self.runtime
        cpu = self.cpus[0]
        step_block = cpu.step_block
        has_work = runtime.has_work
        on_idle = runtime.on_idle
        watchdog = self.watchdog
        no_budget_limit = 1 << 62
        idle_streak = 0
        while not runtime.done:
            if cpu.halted:
                raise SimulationError(
                    "all processors halted without a result")
            if has_work(cpu):
                step_block(no_budget_limit)
                idle_streak = 0
            elif on_idle(cpu):
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak > 4:
                    runtime.check_deadlock()
            if watchdog is not None and cpu.cycles >= watchdog.next_check_at:
                watchdog.check(cpu.cycles)
            if cpu.cycles > max_cycles:
                self.time = cpu.cycles
                raise self._cycle_limit_error(max_cycles)
        self.time = max(self.time, cpu.cycles)

    def _run_fast_sliced(self, max_cycles):
        """Multi-CPU fast loop: heapq of *slices* instead of steps.

        Equivalence with :meth:`_run_reference`: once a CPU is popped
        as the minimum clock, the reference loop keeps re-popping it
        while its clock stays *strictly* below the next entry's clock
        (at equality the waiting entry's older sequence number wins).
        So granting the popped CPU an uninterrupted slice bounded by
        the next queue head's clock is exactly the reference schedule —
        provided no fused superblock overshoots the bound, which
        ``step_block(budget)`` guarantees (fused instructions cost one
        cycle each).  Cross-CPU interactions (shared memory is
        serialized by the host; IPIs are timestamped by the receiver's
        own clock at delivery) therefore happen at identical simulated
        times.  Halted CPUs are dropped instead of re-pushed.
        """
        runtime = self.runtime
        cpus = self.cpus
        fabric = self.fabric
        watchdog = self.watchdog
        has_work = runtime.has_work
        on_idle = runtime.on_idle
        heappush = heapq.heappush
        heappop = heapq.heappop
        idle_limit = 4 * len(cpus)

        queue = []
        seq = 0
        for index, cpu in enumerate(cpus):
            heappush(queue, (cpu.cycles, seq, index))
            seq += 1

        idle_streak = 0
        while not runtime.done:
            if not queue:
                raise SimulationError(
                    "all processors halted without a result")
            when, _, index = heappop(queue)
            cpu = cpus[index]
            if cpu.halted:
                continue
            if when > self.time:
                self.time = when
            if watchdog is not None and self.time >= watchdog.next_check_at:
                # Slices are bounded by the next queue head, so the
                # check lags `interval` by at most one slice.
                watchdog.check(self.time)
            if self.time > max_cycles:
                raise self._cycle_limit_error(max_cycles)
            if fabric is not None:
                # advance_to is documented time-driven-work-free
                # (transactions compute completion at issue), so once
                # per slice is as good as once per instruction.
                fabric.advance_to(self.time)

            # The slice: run while this CPU's clock is strictly the
            # minimum.  With the queue momentarily holding the *other*
            # CPUs, the bound is the next head's clock.  The pop
            # already arbitrated any clock tie, so the first iteration
            # always runs — with a zero budget no superblock fits and
            # step_block degrades to exactly one reference step.
            horizon = queue[0][0] if queue else when + 4096
            budget = horizon - cpu.cycles
            while True:
                if has_work(cpu):
                    # Tiny budgets (tightly interleaved clocks) cannot
                    # fit a superblock worth fusing; skip straight to a
                    # single step rather than paying the block lookup.
                    if budget >= 4:
                        spent = cpu.step_block(budget)
                    else:
                        spent = cpu.step()
                    idle_streak = 0
                    if spent == 0:
                        # Halted (or a zero-cost trap in an exotic
                        # config): yield to the event queue's tie-break.
                        break
                elif on_idle(cpu):
                    idle_streak = 0
                else:
                    idle_streak += 1
                    if idle_streak > idle_limit:
                        runtime.check_deadlock()
                    break
                if runtime.done or cpu.halted:
                    break
                budget = horizon - cpu.cycles
                if budget <= 0:
                    break

            if not cpu.halted:
                heappush(queue, (cpu.cycles, seq, index))
                seq += 1

    def stats(self):
        """Current :class:`MachineStats` snapshot."""
        return MachineStats(self)

    def stepper(self, entry="main", args=(), max_cycles=200_000_000):
        """A resumable :class:`MachineStepper` for this machine.

        Spawns the root thread immediately; the caller then advances
        the run one scheduling iteration at a time (the monitor's
        single-step / run-until substrate).  Use *either* :meth:`run`
        or a stepper on a given machine, never both.
        """
        return MachineStepper(self, entry=entry, args=args,
                              max_cycles=max_cycles)


class StepInfo:
    """What one :meth:`MachineStepper.step_machine` iteration did."""

    __slots__ = ("node", "pc", "executed", "stopped")

    def __init__(self, node, pc, executed, stopped):
        #: Node index of the processor the iteration arbitrated to.
        self.node = node
        #: The active frame's pc before the iteration (None when idle).
        self.pc = pc
        #: True when one instruction (or trap) actually executed.
        self.executed = executed
        #: True when a guard stopped the iteration *before* executing;
        #: the machine state is untouched and the same processor will
        #: be re-arbitrated next call.
        self.stopped = stopped


class MachineStepper:
    """Per-instruction, resumable driver over one machine run.

    Replays exactly the :meth:`AlewifeMachine._run_reference` schedule
    in its pre-pop-slicing form: pop the earliest processor, run one
    iteration, re-push with a fresh sequence number.  (Pop slicing was
    proven schedule-identical to that seed loop, so a stepper-driven
    run executes the same interleaving as ``machine.run()`` — the
    monitor observes the run it would have gotten, one step at a time.)

    The heapq state persists across calls, which is what makes the run
    *resumable*: breakpoint checks are a ``guard`` callable consulted
    after arbitration but before execution; a guarded stop re-pushes
    the popped entry unchanged (same sequence number), so stopping and
    resuming cannot perturb tie-breaking.
    """

    def __init__(self, machine, entry="main", args=(),
                 max_cycles=200_000_000):
        self.machine = machine
        self.runtime = machine.runtime
        self.max_cycles = max_cycles
        machine.loop_used = "stepper"
        self.runtime.spawn_main(entry, args)
        self._queue = []
        self._seq = 0
        for index, cpu in enumerate(machine.cpus):
            heapq.heappush(self._queue, (cpu.cycles, self._seq, index))
            self._seq += 1
        self._idle_streak = 0
        self._idle_limit = 4 * len(machine.cpus)

    @property
    def done(self):
        return self.runtime.done

    @property
    def time(self):
        return self.machine.time

    def result(self):
        """The :class:`MachineResult` once the run is done, else None."""
        if not self.runtime.done:
            return None
        machine = self.machine
        machine.time = max(machine.time,
                           max(cpu.cycles for cpu in machine.cpus))
        return MachineResult(machine, self.runtime.result)

    def step_machine(self, guard=None):
        """Advance the machine by one scheduling iteration.

        Args:
            guard: optional ``guard(cpu) -> bool`` consulted when the
                arbitrated processor is about to execute an
                instruction; returning True stops *before* executing
                (breakpoints).  Idle iterations never consult it.

        Returns a :class:`StepInfo`, or ``None`` once the run is done.
        Raises :class:`SimulationError` on deadlock, cycle exhaustion,
        or all processors halting.
        """
        machine = self.machine
        runtime = self.runtime
        while True:
            if runtime.done:
                return None
            if not self._queue:
                raise SimulationError(
                    "all processors halted without a result")
            entry = heapq.heappop(self._queue)
            cpu = machine.cpus[entry[2]]
            if not cpu.halted:
                break
        if cpu.cycles > machine.time:
            machine.time = cpu.cycles
        if machine.time > self.max_cycles:
            heapq.heappush(self._queue, entry)
            raise machine._cycle_limit_error(self.max_cycles)
        if machine.fabric is not None:
            machine.fabric.advance_to(machine.time)

        index = entry[2]
        pc = None
        executed = False
        if runtime.has_work(cpu):
            pc = cpu.frames[cpu.fp].pc
            if guard is not None and guard(cpu):
                heapq.heappush(self._queue, entry)
                return StepInfo(index, pc, executed=False, stopped=True)
            cpu.step()
            executed = True
            self._idle_streak = 0
        elif runtime.on_idle(cpu):
            self._idle_streak = 0
        else:
            self._idle_streak += 1
            if self._idle_streak > self._idle_limit:
                # May raise DeadlockError; the machine is terminally
                # stuck then, so losing this queue entry is harmless
                # (any further stepping re-detects via another node).
                runtime.check_deadlock()
        if not cpu.halted:
            heapq.heappush(self._queue, (cpu.cycles, self._seq, index))
            self._seq += 1
        return StepInfo(index, pc, executed=executed, stopped=False)


def run_program(program, config=None, entry="main", args=(),
                max_cycles=200_000_000, fastpath=True, jit=True):
    """Build a machine, run a program, return the :class:`MachineResult`."""
    machine = AlewifeMachine(program, config, fastpath=fastpath, jit=jit)
    return machine.run(entry=entry, args=args, max_cycles=max_cycles)


def execute_payload(payload):
    """Run one sweep-job payload; the picklable worker entry point.

    Everything in and out is plain picklable/JSON-ready data, so
    :mod:`repro.exp` can ship this call to a ``ProcessPoolExecutor``
    worker and cache the return value verbatim on disk.  The payload is
    what :meth:`repro.exp.job.Job.payload` produces::

        {"source": ..., "mode": ..., "software_checks": ...,
         "optimize": ..., "config": MachineConfig.to_dict(),
         "entry": ..., "args": [...], "max_cycles": ...,
         "capture": "report" | "stats", "expect": optional}

    The worker recompiles from source (compilation is deterministic;
    the parent already hashed the compiled words for the cache key),
    attaches the per-job observation from
    :func:`repro.obs.session.for_job`, and returns the result value,
    cycle count, stats, and — under ``capture="report"`` — the full
    ``machine_report`` plus the coherence-latency histogram summary.

    Raises :class:`~repro.errors.WorkloadCheckError` when ``expect`` is
    given and the run returns a different value.
    """
    from repro.errors import WorkloadCheckError
    from repro.lang.compiler import compile_source
    from repro.obs.report import machine_report
    from repro.obs.session import for_job

    spans = None
    if payload.get("trace_spans"):
        # Serve-injected knob: self-time compile/run/store so the
        # request trace can nest worker sub-spans under its execute
        # span.  runner is already imported — it is the worker entry
        # that called us.
        from repro.exp.runner import WorkerSpans
        spans = WorkerSpans()

    compiled = compile_source(
        payload["source"],
        mode=payload.get("mode", "eager"),
        software_checks=payload.get("software_checks", False),
        optimize=payload.get("optimize", False))
    config = MachineConfig(**payload["config"])
    if config.lazy_futures != compiled.wants_lazy_scheduling:
        config = config.replace(lazy_futures=compiled.wants_lazy_scheduling)

    observation = for_job(config)
    # Absent keys default True so pre-existing payload hashes (and the
    # content-addressed result cache) are unchanged by these knobs —
    # legitimate because every tier is lockstep-identical in cycles
    # and results; the knobs only change host wall time.
    machine = AlewifeMachine(compiled.program, config,
                             fastpath=payload.get("fastpath", True),
                             jit=payload.get("jit", True))
    if observation is not None:
        observation.attach(machine)
    if spans is not None:
        spans.mark("compile")
    result = machine.run(
        entry=compiled.entry_label(payload.get("entry", "main")),
        args=tuple(payload.get("args", ())),
        max_cycles=payload.get("max_cycles", 200_000_000))
    if spans is not None:
        spans.mark("run")

    expect = payload.get("expect")
    if expect is not None and result.value != expect:
        raise WorkloadCheckError(
            "result %r != expected %r" % (result.value, expect),
            config=config, expected=expect, actual=result.value)

    out = {
        "status": "ok",
        "value": result.value,
        "cycles": result.cycles,
        "output": result.output,
        "stats": result.stats.to_dict(),
    }
    if observation is not None and observation.lifetime is not None:
        out["critpath"] = observation.critpath_summary()
    if payload.get("capture", "report") == "report":
        out["report"] = machine_report(machine, result=result,
                                       observation=observation)
        if observation is not None and observation.hist is not None:
            out["histograms"] = {
                kind: {"count": h.count, "p50": h.percentile(50),
                       "p90": h.percentile(90), "p99": h.percentile(99)}
                for kind, h in
                sorted(observation.hist.by_kind.items())
            }
    if spans is not None:
        spans.mark("store")         # report/stats assembly
        out["spans"] = spans.spans
    return out
