"""The ALEWIFE machine simulator (paper Sections 2 and 7, Figure 4).

Ties processors, memory system, and run-time system together and runs
the whole machine with an event-driven loop: the processor with the
smallest local clock executes next, so inter-processor interleavings
respect simulated time without a global lock-step sweep.

Two memory modes (matching the paper's methodology):

* ``ideal`` — one shared single-cycle memory, no caches or network:
  the configuration of the Table 3 multiprocessor measurements
  ("simulating a shared-memory machine with no memory latency").
* ``coherent`` — per-node caches kept coherent by a directory protocol
  over a k-ary n-cube network; remote misses trap the processor into
  the switch-spin handler (the full ALEWIFE configuration).
"""

import heapq

from repro.core.processor import Processor
from repro.errors import SimulationError
from repro.isa.encoding import DecodeCache
from repro.machine.config import MachineConfig
from repro.machine.stats import MachineStats
from repro.mem.ideal import IdealMemoryPort
from repro.mem.memory import Memory
from repro.runtime.rts import RuntimeSystem


class MachineResult:
    """Outcome of one machine run."""

    def __init__(self, machine, result_word):
        self.result_word = result_word
        self.value = machine.runtime.decode_value(result_word)
        self.cycles = machine.time
        self.stats = MachineStats(machine)
        self.output = list(machine.runtime.output)

    def __repr__(self):
        return "MachineResult(value=%r, cycles=%d)" % (self.value, self.cycles)


class AlewifeMachine:
    """An N-node ALEWIFE machine executing one loaded program."""

    def __init__(self, program, config=None):
        self.config = config or MachineConfig()
        self.program = program
        self.memory = Memory(self.config.memory_words)
        self.memory.load_program(program)
        self.time = 0
        #: Observability slots (see :mod:`repro.obs`): an attached
        #: ``Observation`` wires these; ``None`` keeps the fast path.
        self.sampler = None
        self.events = None
        decoder = DecodeCache()

        self.cpus = []
        self._build_memory_system(decoder)
        self.runtime = RuntimeSystem(
            self.config, self.memory, self.cpus, program)

    def _build_memory_system(self, decoder):
        config = self.config
        if config.memory_mode == "ideal":
            port = IdealMemoryPort(self.memory, latency=config.memory_latency)
            for node in range(config.num_processors):
                cpu = Processor(node_id=node, port=port,
                                num_frames=config.num_task_frames,
                                decoder=decoder)
                cpu.trap_squash_cycles = config.trap_squash_cycles
                self.cpus.append(cpu)
            self.fabric = None
        else:
            # Full cache + directory + network system.
            from repro.mem.system import CoherentMemorySystem
            self.fabric = CoherentMemorySystem(self, decoder)
            self.cpus = self.fabric.cpus

    # -- execution ---------------------------------------------------------

    def run(self, entry="main", args=(), max_cycles=200_000_000):
        """Run ``entry`` on the machine; returns a :class:`MachineResult`.

        Raises :class:`SimulationError` on deadlock or cycle exhaustion.
        """
        runtime = self.runtime
        runtime.spawn_main(entry, args)

        # Event queue of (local clock, sequence, cpu index); the
        # sequence breaks ties deterministically.
        queue = []
        seq = 0
        for index, cpu in enumerate(self.cpus):
            heapq.heappush(queue, (cpu.cycles, seq, index))
            seq += 1

        idle_streak = 0
        while not runtime.done:
            when, _, index = heapq.heappop(queue)
            cpu = self.cpus[index]
            self.time = max(self.time, when)
            sampler = self.sampler
            if sampler is not None and self.time >= sampler.next_sample_at:
                sampler.sample(self.time)
            if self.time > max_cycles:
                raise SimulationError(
                    "cycle limit %d exceeded (deadlock or undersized limit)"
                    % max_cycles)

            if self.fabric is not None:
                self.fabric.advance_to(self.time)

            if runtime.has_work(cpu):
                cpu.step()
                idle_streak = 0
            else:
                found = runtime.on_idle(cpu)
                if found:
                    idle_streak = 0
                else:
                    idle_streak += 1
                    if idle_streak > 4 * len(self.cpus):
                        runtime.check_deadlock()

            heapq.heappush(queue, (cpu.cycles, seq, index))
            seq += 1

        self.time = max(self.time, max(cpu.cycles for cpu in self.cpus))
        if self.sampler is not None:
            self.sampler.finish(self.time)
        return MachineResult(self, runtime.result)

    def stats(self):
        """Current :class:`MachineStats` snapshot."""
        return MachineStats(self)


def run_program(program, config=None, entry="main", args=(),
                max_cycles=200_000_000):
    """Build a machine, run a program, return the :class:`MachineResult`."""
    machine = AlewifeMachine(program, config)
    return machine.run(entry=entry, args=args, max_cycles=max_cycles)


def execute_payload(payload):
    """Run one sweep-job payload; the picklable worker entry point.

    Everything in and out is plain picklable/JSON-ready data, so
    :mod:`repro.exp` can ship this call to a ``ProcessPoolExecutor``
    worker and cache the return value verbatim on disk.  The payload is
    what :meth:`repro.exp.job.Job.payload` produces::

        {"source": ..., "mode": ..., "software_checks": ...,
         "optimize": ..., "config": MachineConfig.to_dict(),
         "entry": ..., "args": [...], "max_cycles": ...,
         "capture": "report" | "stats", "expect": optional}

    The worker recompiles from source (compilation is deterministic;
    the parent already hashed the compiled words for the cache key),
    attaches the per-job observation from
    :func:`repro.obs.session.for_job`, and returns the result value,
    cycle count, stats, and — under ``capture="report"`` — the full
    ``machine_report`` plus the coherence-latency histogram summary.

    Raises :class:`~repro.errors.WorkloadCheckError` when ``expect`` is
    given and the run returns a different value.
    """
    from repro.errors import WorkloadCheckError
    from repro.lang.compiler import compile_source
    from repro.obs.report import machine_report
    from repro.obs.session import for_job

    compiled = compile_source(
        payload["source"],
        mode=payload.get("mode", "eager"),
        software_checks=payload.get("software_checks", False),
        optimize=payload.get("optimize", False))
    config = MachineConfig(**payload["config"])
    if config.lazy_futures != compiled.wants_lazy_scheduling:
        config = config.replace(lazy_futures=compiled.wants_lazy_scheduling)

    observation = for_job(config)
    machine = AlewifeMachine(compiled.program, config)
    if observation is not None:
        observation.attach(machine)
    result = machine.run(
        entry=compiled.entry_label(payload.get("entry", "main")),
        args=tuple(payload.get("args", ())),
        max_cycles=payload.get("max_cycles", 200_000_000))

    expect = payload.get("expect")
    if expect is not None and result.value != expect:
        raise WorkloadCheckError(
            "result %r != expected %r" % (result.value, expect),
            config=config, expected=expect, actual=result.value)

    out = {
        "status": "ok",
        "value": result.value,
        "cycles": result.cycles,
        "output": result.output,
        "stats": result.stats.to_dict(),
    }
    if observation is not None and observation.lifetime is not None:
        out["critpath"] = observation.critpath_summary()
    if payload.get("capture", "report") == "report":
        out["report"] = machine_report(machine, result=result,
                                       observation=observation)
        if observation is not None and observation.hist is not None:
            out["histograms"] = {
                kind: {"count": h.count, "p50": h.percentile(50),
                       "p90": h.percentile(90), "p99": h.percentile(99)}
                for kind, h in
                sorted(observation.hist.by_kind.items())
            }
    return out
