"""Machine-wide statistics aggregation and reporting.

Aggregates the per-processor cycle categories into the quantities the
paper reports: processor utilization (Figure 5's bands), context-switch
counts, future/touch counts, and task-creation statistics (Table 3's
overheads come from total run cycles).

:meth:`MachineStats.to_dict` is the machine-readable form benchmarks
and CI consume (``april run --json`` / ``april report``) instead of
parsing the :meth:`render` text.
"""


class MachineStats:
    """A snapshot of a finished (or running) machine simulation."""

    def __init__(self, machine):
        runtime = machine.runtime
        self.num_processors = len(machine.cpus)
        self.run_cycles = machine.time
        self.per_cpu = [cpu.stats.snapshot() for cpu in machine.cpus]
        self.instructions = sum(s["instructions"] for s in self.per_cpu)
        self.context_switches = sum(
            s["context_switches"] for s in self.per_cpu)
        self.useful_cycles = sum(s["useful"] for s in self.per_cpu)
        self.overhead_cycles = sum(
            s["trap"] + s["switch"] + s["spin"] for s in self.per_cpu)
        self.stall_cycles = sum(s["stall"] for s in self.per_cpu)
        self.idle_cycles = sum(s["idle"] for s in self.per_cpu)
        self.futures_created = runtime.futures.created
        self.futures_resolved = runtime.futures.resolved
        self.touches_resolved = runtime.futures.touches_resolved
        self.touches_unresolved = runtime.futures.touches_unresolved
        self.lazy_pushed = runtime.lazy_pushed
        self.lazy_stolen = runtime.lazy_stolen
        self.thread_loads = runtime.scheduler.loads
        self.thread_unloads = runtime.scheduler.unloads
        self.threads_created = len(runtime.threads)

    @property
    def utilization(self):
        """Machine-wide processor utilization: useful / (P x T)."""
        denominator = self.num_processors * self.run_cycles
        return self.useful_cycles / denominator if denominator else 0.0

    @property
    def system_power(self):
        """The paper's 'system power': processors x utilization."""
        return self.num_processors * self.utilization

    def to_dict(self):
        """JSON-ready snapshot of every aggregate plus the per-CPU rows."""
        return {
            "num_processors": self.num_processors,
            "run_cycles": self.run_cycles,
            "instructions": self.instructions,
            "utilization": self.utilization,
            "system_power": self.system_power,
            "context_switches": self.context_switches,
            "useful_cycles": self.useful_cycles,
            "overhead_cycles": self.overhead_cycles,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "futures_created": self.futures_created,
            "futures_resolved": self.futures_resolved,
            "touches_resolved": self.touches_resolved,
            "touches_unresolved": self.touches_unresolved,
            "lazy_pushed": self.lazy_pushed,
            "lazy_stolen": self.lazy_stolen,
            "thread_loads": self.thread_loads,
            "thread_unloads": self.thread_unloads,
            "threads_created": self.threads_created,
            "per_cpu": self.per_cpu,
        }

    def render(self):
        """A human-readable multi-line report."""
        lines = [
            "processors          %12d" % self.num_processors,
            "run cycles          %12d" % self.run_cycles,
            "instructions        %12d" % self.instructions,
            "utilization         %12.3f" % self.utilization,
            "context switches    %12d" % self.context_switches,
            "threads created     %12d" % self.threads_created,
            "futures created     %12d" % self.futures_created,
            "touches (hit/wait)  %7d/%4d" % (
                self.touches_resolved, self.touches_unresolved),
            "lazy (pushed/stolen)%7d/%4d" % (self.lazy_pushed, self.lazy_stolen),
            "thread loads/unloads%7d/%4d" % (self.thread_loads, self.thread_unloads),
        ]
        return "\n".join(lines)
