"""Analytical-model parameters (paper Table 4 and Section 8).

"The analysis assumes 8000 processors arranged in a three dimensional
array.  In such a system, the average number of hops between a random
pair of nodes is nk/3 = 20 ... This yields an average round trip
network latency of 55 cycles for an unloaded network, when memory
latency and average packet size are taken into account."
"""

from repro.errors import ConfigError


class ModelParams:
    """Default system parameters (Table 4), plus the two calibration
    coefficients of the validated cache/network component models.

    ======================= =========== =================================
    Parameter               Value       Source
    ======================= =========== =================================
    memory_latency          10 cycles   Table 4
    network_dim (n)         3           Table 4
    network_radix (k)       20          Table 4
    fixed_miss_rate         2%          Table 4
    packet_size (B)         4           Table 4
    cache_block_bytes       16          Table 4
    ws_blocks               250         Table 4 (thread working set)
    cache_bytes             64 KB       Table 4
    context_switch (C)      10 cycles   Section 8 (the SPARC APRIL)
    processors              8000        Section 8
    ======================= =========== =================================

    The two non-Table-4 coefficients parameterize the first-order linear
    components the paper validated by simulation (Section 8: "Both these
    terms are shown to be the sum of two components: one component
    independent of the number of threads p and the other linearly
    related to p"):

    * ``cache_interference_coeff`` scales the per-extra-thread miss-rate
      increase from working-set interference, relative to the occupancy
      ratio ``ws_blocks / cache_blocks``;
    * ``bandwidth_coeff`` scales per-miss channel traffic to account for
      protocol messages beyond the data round trip (the strong-coherence
      acknowledgment traffic of Section 2.1).
    """

    def __init__(
        self,
        memory_latency=10,
        network_dim=3,
        network_radix=20,
        fixed_miss_rate=0.02,
        packet_size=4,
        cache_block_bytes=16,
        ws_blocks=250,
        cache_bytes=64 * 1024,
        context_switch=10,
        processors=8000,
        cache_interference_coeff=0.030,
        bandwidth_coeff=1.2,
    ):
        self.memory_latency = memory_latency
        self.network_dim = network_dim
        self.network_radix = network_radix
        self.fixed_miss_rate = fixed_miss_rate
        self.packet_size = packet_size
        self.cache_block_bytes = cache_block_bytes
        self.ws_blocks = ws_blocks
        self.cache_bytes = cache_bytes
        self.context_switch = context_switch
        self.processors = processors
        self.cache_interference_coeff = cache_interference_coeff
        self.bandwidth_coeff = bandwidth_coeff
        self.validate()

    def validate(self):
        if self.network_dim < 1 or self.network_radix < 2:
            raise ConfigError("degenerate network geometry")
        if not 0 <= self.fixed_miss_rate < 1:
            raise ConfigError("miss rate must be a probability")
        if self.cache_bytes < self.cache_block_bytes:
            raise ConfigError("cache smaller than one block")

    @property
    def cache_blocks(self):
        """Cache capacity in blocks (4096 for the Table 4 defaults)."""
        return self.cache_bytes // self.cache_block_bytes

    @property
    def avg_hops(self):
        """Average one-way hop count nk/3 (20 for Table 4)."""
        return self.network_dim * self.network_radix / 3.0

    @property
    def base_round_trip(self):
        """Unloaded round-trip latency: 2 hops-worth of switching plus
        memory access plus packet transmission (55 cycles at defaults)."""
        return (2 * self.avg_hops + self.memory_latency
                + self.packet_size + 1)

    def replace(self, **overrides):
        fields = dict(
            memory_latency=self.memory_latency,
            network_dim=self.network_dim,
            network_radix=self.network_radix,
            fixed_miss_rate=self.fixed_miss_rate,
            packet_size=self.packet_size,
            cache_block_bytes=self.cache_block_bytes,
            ws_blocks=self.ws_blocks,
            cache_bytes=self.cache_bytes,
            context_switch=self.context_switch,
            processors=self.processors,
            cache_interference_coeff=self.cache_interference_coeff,
            bandwidth_coeff=self.bandwidth_coeff,
        )
        fields.update(overrides)
        return ModelParams(**fields)

    def render_table4(self):
        """The Table 4 text block."""
        rows = [
            ("Memory latency", "%d cycles" % self.memory_latency),
            ("Network dimension n", str(self.network_dim)),
            ("Network radix k", str(self.network_radix)),
            ("Fixed miss rate", "%g%%" % (100 * self.fixed_miss_rate)),
            ("Average packet size", str(self.packet_size)),
            ("Cache block size", "%d bytes" % self.cache_block_bytes),
            ("Thread working set size", "%d blocks" % self.ws_blocks),
            ("Cache size", "%d Kbytes" % (self.cache_bytes // 1024)),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join("%-*s  %s" % (width, name, value)
                         for name, value in rows)
