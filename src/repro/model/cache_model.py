"""The cache-miss-rate component m(p) (paper Section 8).

"The fixed miss rate comprises first-time fetches of blocks into the
cache, and the interference due to multiprocessor coherence
invalidations."  On top of that, "the private working sets of multiple
contexts interfere in the cache", adding a component that is linear in
the number of resident threads p to first order (validated by
simulation in [1]).

The linear coefficient is the product of the working-set occupancy
ratio (how much of the cache one more thread's working set displaces)
and a reuse-rate coefficient calibrated once against the paper's
operating point ("caches greater than 64 Kbytes comfortably sustain the
working sets of four processes").
"""


def interference_slope(params):
    """Per-extra-thread miss-rate increase (the linear coefficient)."""
    occupancy = params.ws_blocks / params.cache_blocks
    return params.cache_interference_coeff * occupancy


def miss_rate(params, p):
    """m(p): misses per useful cycle with p resident threads.

    ``m(1)`` is the fixed miss rate; each additional thread adds the
    working-set interference slope.  The rate saturates at 1 when the
    aggregate working set overwhelms the cache (every reference misses).
    """
    if p < 1:
        raise ValueError("need at least one thread")
    rate = params.fixed_miss_rate + interference_slope(params) * (p - 1)
    return min(rate, 1.0)


def sustainable_threads(params, degradation=0.5):
    """How many threads the cache sustains before m(p) grows by
    ``degradation`` x the fixed rate (the Section 8 cache-size claim)."""
    slope = interference_slope(params)
    if slope == 0:
        return float("inf")
    return 1 + degradation * params.fixed_miss_rate / slope
