"""Regenerate Figure 5: utilization vs. resident threads, decomposed.

The figure stacks, for each p, the bands between four curves:

* **Ideal** — miss rate and network contention pinned at their
  single-thread values, no context-switch cost cap beyond Eq. 1's
  C term?  No: the ideal curve is Eq. 1 with m(1) and the unloaded
  network ("the increase in processor utilization when both the cache
  miss rate and network contention correspond to that of a single
  process, and do not increase with the degree of multithreading p").
* **Network effects** — contention on, interference off.
* **Cache and network effects** — both on.
* **Useful work** — both on (the same curve; the residual band below it
  is the CS-overhead share that separates it from the cache+network
  curve when C is charged vs. C=0).

Concretely we emit, per p: U_ideal, U_net, U_cache_net_no_cs (C=0), and
U_full; the plotted bands are the successive differences.
"""

from repro.model.params import ModelParams
from repro.model.utilization import solve


class Figure5Point:
    """All Figure 5 curves at one thread count."""

    def __init__(self, p, ideal, network, cache_network, useful):
        self.p = p
        self.ideal = ideal
        self.network = network            # ideal minus network contention
        self.cache_network = cache_network  # ... minus cache interference
        self.useful = useful              # full model (with C)

    @property
    def band_network(self):
        """Utilization lost to network contention."""
        return max(self.ideal - self.network, 0.0)

    @property
    def band_cache(self):
        """Additional loss from multi-thread cache interference."""
        return max(self.network - self.cache_network, 0.0)

    @property
    def band_cs(self):
        """Additional loss from context-switch overhead."""
        return max(self.cache_network - self.useful, 0.0)


def compute(params=None, max_threads=8, context_switch=None):
    """Compute all Figure 5 series; returns ``[Figure5Point]``."""
    params = params or ModelParams()
    if context_switch is not None:
        params = params.replace(context_switch=context_switch)
    points = []
    for p in range(1, max_threads + 1):
        # The three upper curves exclude the context-switch cost; only
        # the bottom (useful work) pays C.  The ideal curve therefore
        # climbs to 1.0, as in the paper's figure.
        ideal, _, _ = solve(params, p, vary_cache=False, vary_network=False,
                            context_switch=0)
        network, _, _ = solve(params, p, vary_cache=False, vary_network=True,
                              context_switch=0)
        cache_network, _, _ = solve(
            params, p, vary_cache=True, vary_network=True, context_switch=0)
        useful, _, _ = solve(params, p, vary_cache=True, vary_network=True)
        points.append(Figure5Point(p, ideal, network, cache_network, useful))
    return points


def render(points):
    """Text rendering of the Figure 5 data (stacked bands)."""
    header = ("  p   useful  +CS ovh  +cache   +network  ideal")
    lines = [header, "-" * len(header)]
    for pt in points:
        lines.append(
            "%3d   %6.3f  %7.3f  %7.3f  %8.3f  %6.3f" % (
                pt.p, pt.useful, pt.band_cs, pt.band_cache,
                pt.band_network, pt.ideal))
    return "\n".join(lines)


def ascii_plot(points, width=60):
    """A terminal bar plot of U(p) with the component bands."""
    lines = ["Processor utilization vs resident threads "
             "(#=useful, c=CS, $=cache, n=network)"]
    for pt in points:
        useful = int(round(pt.useful * width))
        cs = int(round(pt.band_cs * width))
        cache = int(round(pt.band_cache * width))
        net = int(round(pt.band_network * width))
        bar = "#" * useful + "c" * cs + "$" * cache + "n" * net
        lines.append("p=%d |%-*s| U=%.2f" % (pt.p, width, bar[:width],
                                             pt.useful))
    return "\n".join(lines)
