"""The Section 8 analytical model: Equation 1 processor utilization,
the m(p) cache and T(p) network component models, and Figure 5."""

from repro.model.params import ModelParams
from repro.model.utilization import solve, utilization, utilization_curve

__all__ = ["ModelParams", "solve", "utilization", "utilization_curve"]
