"""Processor utilization U(p): Equation 1 of the paper.

::

            /  p / (1 + T(p) m(p))       for p <  (1 + T(p) m(p)) / (1 + C m(p))
    U(p) = <
            \\  1 / (1 + C m(p))          for p >= (1 + T(p) m(p)) / (1 + C m(p))

With few threads, network latency cannot be fully overlapped and each
thread contributes its share; with enough threads the processor is
limited only by the context-switch overhead C paid on every miss.
Because T depends on the traffic the processor itself generates, the
pair (U, T) is solved as a damped fixed point.
"""

from repro.model import cache_model, network_model
from repro.model.params import ModelParams

_BISECT_STEPS = 80


def equation1(p, miss, latency_cycles, context_switch):
    """Literal Equation 1 for given m, T, and C."""
    saturation_point = (1 + latency_cycles * miss) / (1 + context_switch * miss)
    if p < saturation_point:
        return p / (1 + latency_cycles * miss)
    return 1 / (1 + context_switch * miss)


def _response(params, p, miss, candidate, vary_network, context_switch):
    """Eq. 1's answer given a candidate utilization (which sets traffic)."""
    if vary_network:
        latency_cycles = network_model.latency(params, candidate * miss)
        if latency_cycles == float("inf"):
            return 0.0, latency_cycles
    else:
        latency_cycles = params.base_round_trip
    return (equation1(p, miss, latency_cycles, context_switch),
            latency_cycles)


def solve(params, p, *, vary_cache=True, vary_network=True,
          context_switch=None):
    """Solve the U/T fixed point for ``p`` resident threads.

    The network sees the traffic the processor generates, and the
    processor runs as fast as the network lets it; Eq. 1's answer is a
    monotonically decreasing function of the assumed utilization, so
    the fixed point is unique and found by bisection.

    Args:
        vary_cache: use m(p) (False pins the single-thread miss rate —
            the "ideal" curves of Figure 5).
        vary_network: include network contention (False pins T at the
            unloaded 55-cycle round trip).
        context_switch: override C (None = params.context_switch).

    Returns:
        ``(U, T, m)``.
    """
    if context_switch is None:
        context_switch = params.context_switch
    miss = cache_model.miss_rate(params, p if vary_cache else 1)
    low, high = 0.0, 1.0
    for _ in range(_BISECT_STEPS):
        mid = (low + high) / 2
        answer, _ = _response(params, p, miss, mid, vary_network,
                              context_switch)
        if answer > mid:
            low = mid
        else:
            high = mid
    utilization = (low + high) / 2
    _, latency_cycles = _response(params, p, miss, utilization,
                                  vary_network, context_switch)
    return utilization, latency_cycles, miss


def utilization(params=None, p=3, **kwargs):
    """U(p) alone (convenience wrapper)."""
    params = params or ModelParams()
    return solve(params, p, **kwargs)[0]


def utilization_curve(params=None, max_threads=8, **kwargs):
    """[U(1) .. U(max_threads)]."""
    params = params or ModelParams()
    return [solve(params, p, **kwargs)[0]
            for p in range(1, max_threads + 1)]


def saturation_utilization(params=None, context_switch=None):
    """The context-switch-limited ceiling 1/(1 + C m) at the
    single-thread miss rate (the flat part of Figure 5's ideal)."""
    params = params or ModelParams()
    if context_switch is None:
        context_switch = params.context_switch
    return 1 / (1 + context_switch * params.fixed_miss_rate)
