"""The network-latency component T(p) (paper Section 8).

The unloaded round trip is ``2 * nk/3`` hop delays plus the memory
access plus packet transmission — 55 cycles for the Table 4 defaults.
Under load, each switch adds a queueing delay that grows with channel
utilization: the classic k-ary n-cube contention model (Agarwal's
network analysis, reference [1]'s companion), an M/D/1-style term

    w(rho) = rho / (1 - rho) * (B - 1) / B        per hop,

where ``rho`` is the channel utilization induced by the processors'
miss traffic.  Each miss moves ``2 * hops * B * bandwidth_coeff``
flit-hops (request + response + the coherence acknowledgments of the
strong protocol), spread over the node's ``2n`` channels.

Because traffic depends on how fast processors compute, and compute
speed depends on latency, T(p) and U(p) form a fixed point — solved
iteratively in :mod:`repro.model.utilization`.  This feedback is what
caps utilization near 0.80: "when available network bandwidth is used
up, adding more processes will not improve processor utilization."
"""


def channel_utilization(params, request_rate):
    """rho: flit-hops demanded per channel per cycle.

    ``request_rate`` is misses issued per node per cycle (U x m).
    """
    flit_hops = (request_rate * 2 * params.avg_hops * params.packet_size
                 * params.bandwidth_coeff)
    channels = 2 * params.network_dim
    return flit_hops / channels


def contention_delay(params, rho):
    """Extra round-trip cycles due to switch queueing at load ``rho``."""
    if rho >= 1.0:
        return float("inf")
    per_hop = (rho / (1.0 - rho)) * (params.packet_size - 1) / params.packet_size
    return 2 * params.avg_hops * per_hop


def latency(params, request_rate):
    """T: round-trip latency at a given per-node request rate."""
    rho = channel_utilization(params, request_rate)
    return params.base_round_trip + contention_delay(params, rho)


def saturation_request_rate(params):
    """The request rate at which the network saturates (rho = 1)."""
    per_request = (2 * params.avg_hops * params.packet_size
                   * params.bandwidth_coeff)
    return 2 * params.network_dim / per_request
