"""The sequential baselines of Table 3.

* **T seq** — the program with futures stripped, compiled by the
  optimizing sequential compiler (no future checks anywhere).  This is
  the normalization denominator for every system.
* **Mul-T seq** — the same sequential program compiled by the Mul-T
  compiler: identical to T seq on APRIL (tag hardware is free), but
  carrying software future checks on the Encore (the ~2x column).
"""

from repro.lang.compiler import compile_source
from repro.lang.run import run_mult
from repro.machine.config import MachineConfig


def t_seq_cycles(source, args=()):
    """Cycles for the T-compiled sequential program (one processor)."""
    result = run_mult(source, mode="sequential", processors=1, args=args)
    return result.cycles


def mult_seq_cycles(source, args=(), software_checks=False):
    """Cycles for Mul-T-compiled sequential code.

    ``software_checks=True`` gives the Encore configuration; APRIL's
    hardware tags make Mul-T seq identical to T seq (the paper's 1.0).
    """
    result = run_mult(source, mode="sequential", processors=1, args=args,
                      software_checks=software_checks)
    return result.cycles


def compile_sequential(source, software_checks=False):
    """Compile the futures-stripped program (for custom harnesses)."""
    return compile_source(source, mode="sequential",
                          software_checks=software_checks)


def uniprocessor_config(**overrides):
    """A plain one-processor ideal-memory machine."""
    return MachineConfig(num_processors=1, **overrides)
