"""Comparison systems of Table 3: the Encore Multimax configuration and
the sequential (T-compiled) baselines."""

from repro.baselines.encore import encore_config

__all__ = ["encore_config"]
