"""The Encore Multimax baseline (paper Section 7, Table 3).

The paper compares APRIL against Mul-T running on an Encore Multimax, a
bus-based shared-memory multiprocessor of conventional processors.  The
differences that Table 3 isolates — and that this configuration models —
are:

1. **No tag hardware.**  Future detection is compiled-in software: an
   inline tag test before every strict operand
   (``software_checks=True``), "close to a factor of two loss in
   performance" even when no future is ever created.
2. **No rapid context switching.**  One hardware context, no register
   frames: a blocked thread is switched by an OS-level save/restore
   costing hundreds of cycles, and an unresolved touch blocks
   immediately (spinning buys nothing without a cheap switch).
3. **Heavier task creation.**  Future creation goes through the
   general-purpose scheduler rather than APRIL's lean trap path.

Table 3's numbers are normalized per-system, so the Encore's different
clock and ISA normalize away; only these structural costs matter.
"""

from repro.machine.config import MachineConfig

#: Cost stand-ins for the Encore run-time paths (cycles).  Chosen so the
#: structural ratios of Table 3 hold: task creation about twice APRIL's
#: trap path, and OS-level thread switching an order of magnitude above
#: APRIL's 11-cycle frame switch.
ENCORE_TASK_CREATE_CYCLES = 420
ENCORE_THREAD_SWITCH_CYCLES = 220
ENCORE_EXIT_CYCLES = 70


def encore_config(processors=1, **overrides):
    """A :class:`MachineConfig` modeling the Encore Multimax."""
    defaults = dict(
        num_processors=processors,
        num_task_frames=1,
        eager_task_create_cycles=ENCORE_TASK_CREATE_CYCLES,
        thread_load_cycles=ENCORE_THREAD_SWITCH_CYCLES,
        thread_unload_cycles=ENCORE_THREAD_SWITCH_CYCLES,
        thread_exit_cycles=ENCORE_EXIT_CYCLES,
        touch_spin_limit=0,        # block immediately: no cheap switch
        lazy_futures=False,
        memory_mode="ideal",
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


#: Compile-time flag paired with this machine: the Encore has no tag
#: hardware, so Mul-T code carries software future checks.
ENCORE_SOFTWARE_CHECKS = True
