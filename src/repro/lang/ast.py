"""AST node types for the Mul-T core language.

The analyzer (:mod:`repro.lang.analyzer`) turns reader forms into these
nodes, resolving every variable reference to a *local slot*, a *closure
capture index*, or a *top-level binding*, and computing each lambda's
free variables so the code generator can build flat closures.
"""


class Node:
    """Base AST node."""

    __slots__ = ()


class Const(Node):
    """A literal: fixnum, boolean, or the empty list."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value  # int | True | False | () for nil

    def __repr__(self):
        return "Const(%r)" % (self.value,)


class LocalRef(Node):
    """A reference to the current function's local slot."""

    __slots__ = ("name", "slot")

    def __init__(self, name, slot):
        self.name = name
        self.slot = slot

    def __repr__(self):
        return "LocalRef(%s@%d)" % (self.name, self.slot)


class CaptureRef(Node):
    """A reference to a value captured in the current closure."""

    __slots__ = ("name", "index")

    def __init__(self, name, index):
        self.name = name
        self.index = index

    def __repr__(self):
        return "CaptureRef(%s@%d)" % (self.name, self.index)


class GlobalRef(Node):
    """A reference to a top-level definition."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "GlobalRef(%s)" % self.name


class SetLocal(Node):
    """``(set! local expr)``."""

    __slots__ = ("name", "slot", "value")

    def __init__(self, name, slot, value):
        self.name = name
        self.slot = slot
        self.value = value


class SetGlobal(Node):
    """``(set! toplevel expr)``."""

    __slots__ = ("name", "value")

    def __init__(self, name, value):
        self.name = name
        self.value = value


class If(Node):
    __slots__ = ("test", "then", "alt")

    def __init__(self, test, then, alt):
        self.test = test
        self.then = then
        self.alt = alt


class Begin(Node):
    __slots__ = ("body",)

    def __init__(self, body):
        self.body = body  # non-empty list of nodes


class Let(Node):
    """``(let ((x e) ...) body)`` with slots pre-assigned."""

    __slots__ = ("bindings", "body")

    def __init__(self, bindings, body):
        self.bindings = bindings  # [(name, slot, init_node)]
        self.body = body


class Lambda(Node):
    """A closure-converted function.

    ``captures`` lists the *outer-scope* references whose values build
    the closure record (each is a LocalRef/CaptureRef in the enclosing
    function's terms).
    """

    __slots__ = ("name", "params", "nlocals", "body", "captures", "label")

    def __init__(self, name, params, nlocals, body, captures, label):
        self.name = name
        self.params = params        # [str]
        self.nlocals = nlocals      # total local slots (params + lets)
        self.body = body
        self.captures = captures    # [Node] evaluated in the outer scope
        self.label = label          # assembly label


class Call(Node):
    """A function call; ``target`` is a node or a known global label."""

    __slots__ = ("func", "args", "tail", "direct_label", "self_tail")

    def __init__(self, func, args, tail=False, direct_label=None,
                 self_tail=False):
        self.func = func            # node (None when direct_label set)
        self.args = args
        self.tail = tail
        self.direct_label = direct_label
        self.self_tail = self_tail  # self-recursive tail call (loop)


class PrimCall(Node):
    """An inline primitive (``+``, ``car``, ``vector-ref``...)."""

    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = args


class FutureExpr(Node):
    """``(future E)`` / ``(future-on node E)``.

    ``call`` is the Call node for the child when E is a direct call to
    a known function (the thunk-free lazy path: evaluate the arguments,
    push the marker, call inline — no closure allocated); otherwise
    ``thunk`` is a zero-argument Lambda wrapping E.
    """

    __slots__ = ("thunk", "call", "node_expr")

    def __init__(self, thunk=None, call=None, node_expr=None):
        self.thunk = thunk          # zero-arg Lambda (eager / complex E)
        self.call = call            # direct Call (lazy fast path)
        self.node_expr = node_expr  # placement for future-on, or None


class TouchExpr(Node):
    """``(touch E)``: strict identity."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class Definition:
    """One top-level ``(define ...)``."""

    def __init__(self, name, lam=None, const=None):
        self.name = name
        self.lam = lam              # Lambda for function definitions
        self.const = const          # Const for constant definitions

    @property
    def is_function(self):
        return self.lam is not None


class ProgramAST:
    """All top-level definitions of a Mul-T program."""

    def __init__(self, definitions, lambdas):
        self.definitions = definitions    # [Definition]
        self.lambdas = lambdas            # every Lambda (for codegen)

    def lookup(self, name):
        for definition in self.definitions:
            if definition.name == name:
                return definition
        return None
