"""Mul-T (the paper's extended Scheme, Section 2.2): reader, analyzer,
APRIL code generator, compiler driver, and a reference interpreter for
differential testing."""

from repro.lang.compiler import CompiledProgram, compile_source
from repro.lang.interp import interpret
from repro.lang.run import run_mult

__all__ = ["CompiledProgram", "compile_source", "interpret", "run_mult"]
