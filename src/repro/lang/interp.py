"""A reference Mul-T interpreter in Python.

Used for differential testing: the compiled program running on the
APRIL simulator must produce the same value this direct evaluator does.
Futures are evaluated eagerly inline (sequential semantics — legal for
deterministic programs, which all our workloads are).

Mirrors the subset accepted by :mod:`repro.lang.analyzer`; it
deliberately shares no code with the compiler so a bug in one is caught
by the other.
"""

from repro.errors import CompilerError
from repro.lang import reader

NIL = ()


class _Closure:
    def __init__(self, params, body, env, name="anon"):
        self.params = params
        self.body = body
        self.env = env
        self.name = name


class _Env:
    def __init__(self, parent=None):
        self.vars = {}
        self.parent = parent

    def lookup(self, name):
        env = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise CompilerError("unbound variable %s" % name)

    def set(self, name, value):
        env = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            env = env.parent
        raise CompilerError("set! of unbound %s" % name)


def _truthy(value):
    return not (value is False or value == NIL)


class Interpreter:
    """Evaluates Mul-T programs directly."""

    def __init__(self):
        self.globals = _Env()
        self.output = []

    def load(self, source):
        for form in reader.read_program(source):
            if not (isinstance(form, list) and form and form[0] == "define"):
                raise CompilerError("top level allows only define", form)
            target = form[1]
            if isinstance(target, list):
                closure = _Closure(target[1:], form[2:], self.globals,
                                   name=target[0])
                self.globals.vars[target[0]] = closure
            else:
                self.globals.vars[target] = self._eval(form[2], self.globals)

    def call(self, name, *args):
        closure = self.globals.lookup(name)
        return self._apply(closure, list(args))

    def _apply(self, closure, args):
        if not isinstance(closure, _Closure):
            raise CompilerError("calling a non-function: %r" % (closure,))
        if len(args) != len(closure.params):
            raise CompilerError(
                "%s expects %d args, got %d"
                % (closure.name, len(closure.params), len(args)))
        env = _Env(closure.env)
        env.vars.update(zip(closure.params, args))
        result = NIL
        for form in closure.body:
            result = self._eval(form, env)
        return result

    def _eval(self, form, env):
        if isinstance(form, bool) or isinstance(form, int):
            return form
        if isinstance(form, str):
            return env.lookup(form)
        if not isinstance(form, list) or not form:
            raise CompilerError("cannot evaluate", form)
        head = form[0]
        if head == "quote":
            datum = form[1]
            if datum == [] or datum == "nil":
                return NIL
            if isinstance(datum, (bool, int)):
                return datum
            raise CompilerError("only atomic quotation", form)
        if head == "if":
            if _truthy(self._eval(form[1], env)):
                return self._eval(form[2], env)
            return self._eval(form[3], env) if len(form) == 4 else False
        if head == "begin":
            result = NIL
            for sub in form[1:]:
                result = self._eval(sub, env)
            return result
        if head == "let":
            inner = _Env(env)
            for name, init in form[1]:
                inner.vars[name] = self._eval(init, env)
            result = NIL
            for sub in form[2:]:
                result = self._eval(sub, inner)
            return result
        if head == "let*":
            inner = env
            for name, init in form[1]:
                new = _Env(inner)
                new.vars[name] = self._eval(init, inner)
                inner = new
            result = NIL
            for sub in form[2:]:
                result = self._eval(sub, inner)
            return result
        if head == "cond":
            for clause in form[1:]:
                if clause[0] == "else" or _truthy(self._eval(clause[0], env)):
                    result = NIL
                    for sub in clause[1:]:
                        result = self._eval(sub, env)
                    return result
            return False
        if head == "and":
            result = True
            for sub in form[1:]:
                result = self._eval(sub, env)
                if not _truthy(result):
                    return result
            return result
        if head == "or":
            for sub in form[1:]:
                result = self._eval(sub, env)
                if _truthy(result):
                    return result
            return False
        if head == "when":
            if _truthy(self._eval(form[1], env)):
                return self._eval(["begin"] + form[2:], env)
            return False
        if head == "unless":
            if not _truthy(self._eval(form[1], env)):
                return self._eval(["begin"] + form[2:], env)
            return False
        if head == "set!":
            env.set(form[1], self._eval(form[2], env))
            return NIL
        if head == "lambda":
            return _Closure(form[1], form[2:], env)
        if head in ("future", "touch"):
            return self._eval(form[1], env)
        if head == "future-on":
            self._eval(form[1], env)  # placement has no semantic effect
            return self._eval(form[2], env)
        if isinstance(head, str) and head in _PRIMS \
                and not self._shadowed(head, env):
            args = [self._eval(sub, env) for sub in form[1:]]
            return _PRIMS[head](self, args)
        func = self._eval(head, env)
        args = [self._eval(sub, env) for sub in form[1:]]
        return self._apply(func, args)

    def _shadowed(self, name, env):
        walk = env
        while walk is not None:
            if name in walk.vars:
                return True
            walk = walk.parent
        return False


class _Pair:
    __slots__ = ("car", "cdr")

    def __init__(self, car, cdr):
        self.car = car
        self.cdr = cdr


def _to_list(value):
    """Convert a pair chain to a Python list for comparisons."""
    items = []
    while isinstance(value, _Pair):
        items.append(_to_list(value.car) if isinstance(value.car, _Pair)
                     else value.car)
        value = value.cdr
    return items


def _fold(op, args):
    result = args[0]
    for arg in args[1:]:
        result = op(result, arg)
    return result


def _quotient(a, b):
    return int(a / b)


_PRIMS = {
    "+": lambda interp, a: _fold(lambda x, y: x + y, a),
    "-": lambda interp, a: -a[0] if len(a) == 1 else _fold(
        lambda x, y: x - y, a),
    "*": lambda interp, a: _fold(lambda x, y: x * y, a),
    "quotient": lambda interp, a: _quotient(a[0], a[1]),
    "remainder": lambda interp, a: a[0] - _quotient(a[0], a[1]) * a[1],
    "<": lambda interp, a: a[0] < a[1],
    ">": lambda interp, a: a[0] > a[1],
    "<=": lambda interp, a: a[0] <= a[1],
    ">=": lambda interp, a: a[0] >= a[1],
    "=": lambda interp, a: a[0] == a[1],
    "eq?": lambda interp, a: a[0] is a[1] or a[0] == a[1],
    "zero?": lambda interp, a: a[0] == 0,
    "null?": lambda interp, a: a[0] == NIL,
    "pair?": lambda interp, a: isinstance(a[0], _Pair),
    "not": lambda interp, a: not _truthy(a[0]),
    "cons": lambda interp, a: _Pair(a[0], a[1]),
    "car": lambda interp, a: a[0].car,
    "cdr": lambda interp, a: a[0].cdr,
    "set-car!": lambda interp, a: setattr(a[0], "car", a[1]),
    "set-cdr!": lambda interp, a: setattr(a[0], "cdr", a[1]),
    "vector-ref": lambda interp, a: a[0][a[1]],
    "vector-set!": lambda interp, a: a[0].__setitem__(a[1], a[2]),
    "vector-length": lambda interp, a: len(a[0]),
    "make-vector": lambda interp, a: [a[1] if len(a) > 1 else 0] * a[0],
    "print": lambda interp, a: interp.output.append(
        _to_list(a[0]) if isinstance(a[0], _Pair) else a[0]),
}


def interpret(source, entry="main", args=(), prelude=None):
    """Load + run a program; returns (result, output list)."""
    from repro.lang.compiler import PRELUDE
    interp = Interpreter()
    interp.load(PRELUDE if prelude is None else prelude)
    interp.load(source)
    result = interp.call(entry, *args)
    if isinstance(result, _Pair):
        result = _to_list(result)
    return result, interp.output
