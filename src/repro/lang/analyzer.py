"""Scope analysis and closure conversion for Mul-T.

Turns reader forms into the AST of :mod:`repro.lang.ast`:

* resolves every variable to a local slot, a closure-capture index, or
  a top-level definition;
* converts ``lambda`` into flat closures (free variables become capture
  expressions evaluated in the enclosing scope);
* wraps every ``(future E)`` body in a zero-argument thunk lambda (or
  drops the wrapper entirely in *strip* mode, producing the sequential
  program the paper's "T seq" / "Mul-T seq" columns run);
* desugars ``cond``/``and``/``or``/``when``/``unless``/``let*``;
* marks self-recursive tail calls so the code generator can reuse the
  frame (loops written as tail recursion run in constant stack).
"""

import itertools

from repro.errors import CompilerError
from repro.lang import ast, reader

#: Inline primitives with their accepted argument counts (None = n-ary).
PRIMITIVES = {
    "+": None, "-": None, "*": None,
    "quotient": 2, "remainder": 2,
    "<": 2, ">": 2, "<=": 2, ">=": 2, "=": 2,
    "eq?": 2, "zero?": 1, "null?": 1, "pair?": 1, "not": 1,
    "cons": 2, "car": 1, "cdr": 1, "set-car!": 2, "set-cdr!": 2,
    "vector-ref": 2, "vector-set!": 3, "vector-length": 1,
    "make-vector": (1, 2), "print": 1,
}

MAX_ARGS = 4

_label_counter = itertools.count(1)


def reset_labels():
    """Restart the label gensym (compile_source calls this so a given
    source always produces the same label names — recompiling in one
    process must not shift every ``fn_*_N`` suffix, or monitor scripts
    and saved breakpoints would dangle)."""
    global _label_counter
    _label_counter = itertools.count(1)


def _mangle(name):
    """Turn a Mul-T identifier into an assembler-safe label chunk."""
    out = []
    for ch in name:
        if ch.isalnum() or ch == "_":
            out.append(ch)
        else:
            out.append("_%02x" % ord(ch))
    return "".join(out)


class _FunctionScope:
    """Compile-time context of one lambda being analyzed."""

    def __init__(self, parent, name, params, label):
        self.parent = parent
        self.name = name
        self.label = label
        self.params = list(params)
        self.locals = {}          # name -> slot (innermost binding wins)
        self.shadow_stack = []    # for restoring let shadowing
        self.next_slot = 0
        self.max_slot = 0
        self.captures = []        # outer-scope nodes building the closure
        self.capture_index = {}   # name -> index in captures
        for param in params:
            self.bind(param)

    def bind(self, name):
        slot = self.next_slot
        self.shadow_stack.append((name, self.locals.get(name)))
        self.locals[name] = slot
        self.next_slot += 1
        self.max_slot = max(self.max_slot, self.next_slot)
        return slot

    def unbind(self, count):
        for _ in range(count):
            name, previous = self.shadow_stack.pop()
            if previous is None:
                del self.locals[name]
            else:
                self.locals[name] = previous
            self.next_slot -= 1


class Analyzer:
    """Builds a :class:`~repro.lang.ast.ProgramAST` from source forms.

    Args:
        strip_futures: compile ``(future E)`` as plain ``E`` (the
            sequential "T seq" configuration).
    """

    def __init__(self, strip_futures=False, lazy_futures=False):
        self.strip_futures = strip_futures
        self.lazy_futures = lazy_futures
        self.globals = {}          # name -> Definition
        self.lambdas = []
        self._declared_functions = set()

    # -- top level ----------------------------------------------------------

    def analyze_program(self, source):
        """Analyze full program text; returns a ProgramAST."""
        forms = reader.read_program(source)
        definitions = []
        # Pass 1: collect global names (mutual recursion).
        parsed = []
        for form in forms:
            name, shape = self._parse_define(form)
            if name in self.globals:
                raise CompilerError("duplicate definition of %s" % name)
            definition = ast.Definition(name)
            self.globals[name] = definition
            if shape[0] == "function":
                self._declared_functions.add(name)
            definitions.append(definition)
            parsed.append((definition, shape))
        # Pass 2: analyze bodies.
        for definition, (kind, payload) in parsed:
            if kind == "function":
                params, body_forms = payload
                definition.lam = self._analyze_lambda(
                    definition.name, params, body_forms, parent=None)
            else:
                definition.const = self._constant(payload)
        return ast.ProgramAST(definitions, self.lambdas)

    def _parse_define(self, form):
        if not (isinstance(form, list) and form and form[0] == "define"):
            raise CompilerError("top level allows only define", form)
        if len(form) < 3:
            raise CompilerError("malformed define", form)
        target = form[1]
        if isinstance(target, list):
            name = target[0]
            params = target[1:]
            if not all(isinstance(p, str) for p in params):
                raise CompilerError("bad parameter list", form)
            return name, ("function", (params, form[2:]))
        if isinstance(target, str):
            if len(form) != 3:
                raise CompilerError("malformed constant define", form)
            if (isinstance(form[2], list) and form[2]
                    and form[2][0] == "lambda"):
                lam_form = form[2]
                return target, ("function", (lam_form[1], lam_form[2:]))
            return target, ("constant", form[2])
        raise CompilerError("malformed define", form)

    def _constant(self, form):
        if isinstance(form, bool) or isinstance(form, int):
            return ast.Const(form)
        if isinstance(form, list) and form and form[0] == "quote":
            return self._quoted(form[1])
        raise CompilerError(
            "top-level constants must be literals", form)

    def _quoted(self, datum):
        if isinstance(datum, (bool, int)):
            return ast.Const(datum)
        if datum == [] or datum == "nil":
            return ast.Const(())
        raise CompilerError("only atomic quotation is supported", datum)

    # -- lambdas ---------------------------------------------------------------

    def _analyze_lambda(self, name, params, body_forms, parent):
        if len(params) > MAX_ARGS:
            raise CompilerError(
                "%s: at most %d parameters are supported" % (name, MAX_ARGS))
        label = "fn_%s_%d" % (_mangle(name), next(_label_counter))
        scope = _FunctionScope(parent, name, params, label)
        body = self._analyze_body(body_forms, scope, tail=True)
        lam = ast.Lambda(
            name=name,
            params=list(params),
            nlocals=scope.max_slot,
            body=body,
            captures=scope.captures,
            label=label,
        )
        self.lambdas.append(lam)
        return lam

    def _analyze_body(self, forms, scope, tail):
        if not forms:
            raise CompilerError("empty body in %s" % scope.name)
        nodes = []
        for form in forms[:-1]:
            nodes.append(self._analyze(form, scope, tail=False))
        nodes.append(self._analyze(forms[-1], scope, tail=tail))
        return nodes[0] if len(nodes) == 1 else ast.Begin(nodes)

    # -- expressions -----------------------------------------------------------

    def _analyze(self, form, scope, tail):
        if isinstance(form, bool) or isinstance(form, int):
            return ast.Const(form)
        if isinstance(form, str):
            return self._variable(form, scope)
        if not isinstance(form, list) or not form:
            raise CompilerError("cannot analyze", form)
        head = form[0]
        if isinstance(head, str):
            handler = getattr(
                self, "_form_" + _mangle(head), None) if head in _SPECIAL \
                else None
            if handler is not None:
                return handler(form, scope, tail)
            if head in PRIMITIVES and not self._is_bound(head, scope):
                return self._primitive(form, scope)
        return self._call(form, scope, tail)

    def _is_bound(self, name, scope):
        walk = scope
        while walk is not None:
            if name in walk.locals:
                return True
            walk = walk.parent
        return name in self.globals

    def _variable(self, name, scope):
        if name in scope.locals:
            return ast.LocalRef(name, scope.locals[name])
        # Search enclosing scopes: a hit becomes a capture chain.
        if scope.parent is not None:
            if name in scope.capture_index:
                return ast.CaptureRef(name, scope.capture_index[name])
            outer = self._variable_in(name, scope.parent)
            if outer is not None:
                index = len(scope.captures)
                scope.captures.append(outer)
                scope.capture_index[name] = index
                return ast.CaptureRef(name, index)
        if name in self.globals:
            return ast.GlobalRef(name)
        raise CompilerError("unbound variable %s in %s" % (name, scope.name))

    def _variable_in(self, name, scope):
        """Resolve a name against a specific scope (for capture chains)."""
        if name in scope.locals:
            return ast.LocalRef(name, scope.locals[name])
        if scope.parent is not None:
            if name in scope.capture_index:
                return ast.CaptureRef(name, scope.capture_index[name])
            outer = self._variable_in(name, scope.parent)
            if outer is not None:
                index = len(scope.captures)
                scope.captures.append(outer)
                scope.capture_index[name] = index
                return ast.CaptureRef(name, index)
        if name in self.globals:
            return ast.GlobalRef(name)
        return None

    def _primitive(self, form, scope):
        name = form[0]
        args = [self._analyze(f, scope, tail=False) for f in form[1:]]
        arity = PRIMITIVES[name]
        if arity is None:
            if name in ("+", "*") and len(args) < 2:
                raise CompilerError("%s needs at least 2 arguments" % name, form)
            if name == "-" and not 1 <= len(args) <= 2:
                raise CompilerError("- takes 1 or 2 arguments", form)
        elif isinstance(arity, tuple):
            if len(args) not in arity:
                raise CompilerError(
                    "%s takes %s arguments" % (name, "/".join(map(str, arity))),
                    form)
        elif len(args) != arity:
            raise CompilerError(
                "%s takes %d arguments, got %d" % (name, arity, len(args)),
                form)
        # Fold n-ary +/-/* into binary chains.
        if name in ("+", "*") and len(args) > 2:
            node = ast.PrimCall(name, args[:2])
            for arg in args[2:]:
                node = ast.PrimCall(name, [node, arg])
            return node
        if name == "-" and len(args) == 1:
            return ast.PrimCall("-", [ast.Const(0), args[0]])
        if name == "make-vector" and len(args) == 1:
            args.append(ast.Const(0))
        return ast.PrimCall(name, args)

    def _call(self, form, scope, tail):
        head = form[0]
        args = [self._analyze(f, scope, tail=False) for f in form[1:]]
        if len(args) > MAX_ARGS:
            raise CompilerError("calls support at most %d arguments" % MAX_ARGS,
                                form)
        if isinstance(head, str) and not self._locally_bound(head, scope) \
                and head in self.globals:
            definition = self.globals[head]
            label = "global:" + head
            self_tail = bool(
                tail and head == scope.name and scope.parent is None
                and len(args) == len(scope.params))
            return ast.Call(None, args, tail=tail, direct_label=head,
                            self_tail=self_tail)
        func = self._analyze(head, scope, tail=False)
        return ast.Call(func, args, tail=tail)

    def _locally_bound(self, name, scope):
        walk = scope
        while walk is not None:
            if name in walk.locals or name in walk.capture_index:
                return True
            walk = walk.parent
        return False

    # -- special forms -----------------------------------------------------------

    def _form_quote(self, form, scope, tail):
        return self._quoted(form[1])

    def _form_if(self, form, scope, tail):
        if len(form) not in (3, 4):
            raise CompilerError("malformed if", form)
        test = self._analyze(form[1], scope, tail=False)
        then = self._analyze(form[2], scope, tail=tail)
        alt = (self._analyze(form[3], scope, tail=tail)
               if len(form) == 4 else ast.Const(False))
        return ast.If(test, then, alt)

    def _form_begin(self, form, scope, tail):
        return self._analyze_body(form[1:], scope, tail)

    def _form_let(self, form, scope, tail):
        if len(form) < 3:
            raise CompilerError("malformed let", form)
        if isinstance(form[1], str):
            raise CompilerError(
                "named let is not supported; use a helper define", form)
        bindings = []
        inits = []
        for binding in form[1]:
            if not (isinstance(binding, list) and len(binding) == 2
                    and isinstance(binding[0], str)):
                raise CompilerError("malformed let binding", binding)
            # Inits are analyzed in the *outer* environment.
            inits.append(self._analyze(binding[1], scope, tail=False))
        for binding, init in zip(form[1], inits):
            slot = scope.bind(binding[0])
            bindings.append((binding[0], slot, init))
        body = self._analyze_body(form[2:], scope, tail)
        scope.unbind(len(bindings))
        return ast.Let(bindings, body)

    def _form_let_2a(self, form, scope, tail):  # let*
        if len(form) < 3:
            raise CompilerError("malformed let*", form)
        if not form[1]:
            return self._analyze_body(form[2:], scope, tail)
        first, rest = form[1][0], form[1][1:]
        return self._form_let(
            ["let", [first], ["let*", rest] + form[2:]], scope, tail)

    def _form_cond(self, form, scope, tail):
        clauses = form[1:]
        if not clauses:
            return ast.Const(False)
        first = clauses[0]
        if first[0] == "else":
            return self._analyze_body(first[1:], scope, tail)
        test = self._analyze(first[0], scope, tail=False)
        then = self._analyze_body(first[1:], scope, tail)
        alt = self._form_cond(["cond"] + list(clauses[1:]), scope, tail)
        return ast.If(test, then, alt)

    def _form_and(self, form, scope, tail):
        if len(form) == 1:
            return ast.Const(True)
        if len(form) == 2:
            return self._analyze(form[1], scope, tail)
        test = self._analyze(form[1], scope, tail=False)
        rest = self._form_and(["and"] + form[2:], scope, tail)
        return ast.If(test, rest, ast.Const(False))

    def _form_or(self, form, scope, tail):
        if len(form) == 1:
            return ast.Const(False)
        if len(form) == 2:
            return self._analyze(form[1], scope, tail)
        # (or a b...) without re-evaluating a: bind it.
        return self._form_let(
            ["let", [["or_tmp", form[1]]],
             ["if", "or_tmp", "or_tmp", ["or"] + form[2:]]], scope, tail)

    def _form_when(self, form, scope, tail):
        return self._form_if(
            ["if", form[1], ["begin"] + form[2:]], scope, tail)

    def _form_unless(self, form, scope, tail):
        return self._form_if(
            ["if", form[1], False, ["begin"] + form[2:]], scope, tail)

    def _form_set_21(self, form, scope, tail):  # set!
        if len(form) != 3 or not isinstance(form[1], str):
            raise CompilerError("malformed set!", form)
        name = form[1]
        value = self._analyze(form[2], scope, tail=False)
        if name in scope.locals:
            return ast.SetLocal(name, scope.locals[name], value)
        if name in self.globals:
            if self.globals[name].is_function:
                raise CompilerError("cannot set! a function binding", form)
            return ast.SetGlobal(name, value)
        raise CompilerError(
            "set! of captured variables is not supported "
            "(captures are by value)", form)

    def _form_lambda(self, form, scope, tail):
        if len(form) < 3 or not isinstance(form[1], list):
            raise CompilerError("malformed lambda", form)
        return self._analyze_lambda(
            "anon", form[1], form[2:], parent=scope)

    def _form_future(self, form, scope, tail):
        if len(form) != 2:
            raise CompilerError("future takes one expression", form)
        if self.strip_futures:
            return self._analyze(form[1], scope, tail=tail)
        if self.lazy_futures:
            call = self._direct_call_form(form[1], scope)
            if call is not None:
                return ast.FutureExpr(call=call)
        thunk = self._analyze_lambda("future_body", [], [form[1]],
                                     parent=scope)
        return ast.FutureExpr(thunk=thunk)

    def _direct_call_form(self, body, scope):
        """Analyze E as a direct call when the lazy fast path applies:
        a call to a known top-level function with at most 4 arguments.
        The child then runs inline with no thunk closure at all (the
        real lazy-task-creation code sequence of [17])."""
        if not (isinstance(body, list) and body
                and isinstance(body[0], str)
                and body[0] not in _SPECIAL
                and body[0] in self._declared_functions
                and not self._locally_bound(body[0], scope)
                and len(body) - 1 <= MAX_ARGS):
            return None
        node = self._call(body, scope, tail=False)
        if isinstance(node, ast.Call) and node.direct_label is not None:
            return node
        return None

    def _form_future_2don(self, form, scope, tail):  # future-on
        if len(form) != 3:
            raise CompilerError("future-on takes node and expression", form)
        node_expr = self._analyze(form[1], scope, tail=False)
        if self.strip_futures:
            return self._analyze(form[2], scope, tail=tail)
        thunk = self._analyze_lambda("future_body", [], [form[2]],
                                     parent=scope)
        return ast.FutureExpr(thunk, node_expr=node_expr)

    def _form_touch(self, form, scope, tail):
        if len(form) != 2:
            raise CompilerError("touch takes one expression", form)
        return ast.TouchExpr(self._analyze(form[1], scope, tail=False))


_SPECIAL = frozenset([
    "quote", "if", "begin", "let", "let*", "cond", "and", "or",
    "when", "unless", "set!", "lambda", "future", "future-on", "touch",
])
