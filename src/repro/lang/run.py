"""Convenience entry point: compile and run Mul-T on a simulated machine."""

from repro.lang.compiler import compile_source
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig


def build_mult_machine(source, mode="eager", processors=1,
                       software_checks=False, config=None, optimize=False,
                       fastpath=True, jit=True):
    """Compile ``source`` and construct the machine without running it.

    Returns ``(machine, compiled)`` — the caller picks the driving loop:
    ``machine.run(...)`` for batch execution or ``machine.stepper(...)``
    for incremental control (the ``april monitor`` debugger).
    """
    compiled = compile_source(source, mode=mode,
                              software_checks=software_checks,
                              optimize=optimize)
    if config is None:
        config = MachineConfig(num_processors=processors)
    if config.lazy_futures != compiled.wants_lazy_scheduling:
        config = config.replace(lazy_futures=compiled.wants_lazy_scheduling)
    machine = AlewifeMachine(compiled.program, config, fastpath=fastpath,
                             jit=jit)
    return machine, compiled


def run_mult(source, mode="eager", processors=1, software_checks=False,
             config=None, entry="main", args=(), max_cycles=200_000_000,
             optimize=False, observe=None, fastpath=True, jit=True,
             watchdog=None):
    """Compile ``source`` and run its ``entry`` function.

    Returns the :class:`~repro.machine.alewife.MachineResult`; its
    ``value`` field holds the decoded Python value of the result and
    ``cycles`` the simulated run time.  Pass an
    :class:`~repro.obs.Observation` as ``observe`` to capture events,
    utilization timelines, and profiles from the run.
    ``fastpath=False`` selects the reference interpreter and event loop;
    ``jit=False`` keeps the fast path but disables the superblock JIT
    tier (see :class:`~repro.machine.alewife.AlewifeMachine`).  Pass a
    :class:`~repro.obs.Watchdog` as ``watchdog`` to get hang detection:
    the run raises :class:`~repro.errors.HangDetected` with a post-mortem
    instead of spinning to ``max_cycles``.
    """
    machine, compiled = build_mult_machine(
        source, mode=mode, processors=processors,
        software_checks=software_checks, config=config, optimize=optimize,
        fastpath=fastpath, jit=jit)
    if observe is not None:
        observe.attach(machine)
    if watchdog is not None:
        watchdog.attach(machine)
    return machine.run(entry=compiled.entry_label(entry), args=args,
                       max_cycles=max_cycles)
