"""S-expression reader for Mul-T (the paper's extended Scheme).

Produces plain Python data: lists for forms, ``int`` for numeric
literals, ``str`` for symbols, ``True``/``False`` for ``#t``/``#f``.
``'x`` reads as ``["quote", "x"]``.
"""

from repro.errors import CompilerError


class _TokenStream:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise CompilerError("unexpected end of input")
        self.index += 1
        return token


def tokenize(text):
    """Split source text into tokens; ``;`` comments run to end of line."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch.isspace():
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == "'":
            tokens.append("'")
            i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "();'":
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _atom(token):
    if token == "#t":
        return True
    if token == "#f":
        return False
    try:
        return int(token)
    except ValueError:
        return token


def _read_form(stream):
    token = stream.next()
    if token == "(":
        form = []
        while True:
            nxt = stream.peek()
            if nxt is None:
                raise CompilerError("unbalanced parenthesis")
            if nxt == ")":
                stream.next()
                return form
            form.append(_read_form(stream))
    if token == ")":
        raise CompilerError("unexpected ')'")
    if token == "'":
        return ["quote", _read_form(stream)]
    return _atom(token)


def read(text):
    """Read one form from source text."""
    stream = _TokenStream(tokenize(text))
    form = _read_form(stream)
    if stream.peek() is not None:
        raise CompilerError("trailing input after form: %r" % stream.peek())
    return form


def read_program(text):
    """Read all top-level forms from source text."""
    stream = _TokenStream(tokenize(text))
    forms = []
    while stream.peek() is not None:
        forms.append(_read_form(stream))
    return forms


def write(form):
    """Render a form back to source text (for error messages)."""
    if form is True:
        return "#t"
    if form is False:
        return "#f"
    if isinstance(form, list):
        return "(" + " ".join(write(f) for f in form) + ")"
    return str(form)
