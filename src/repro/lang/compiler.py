"""The Mul-T compiler driver.

``compile_source`` takes Mul-T program text and produces a
:class:`CompiledProgram`: assembled APRIL code (with the run-time stubs
linked in) plus the metadata the machine needs to start it.

Compilation modes (the systems compared in Table 3):

=============== ======================= ====================================
mode            futures                 software checks
=============== ======================= ====================================
``sequential``  stripped (plain E)      off — the "T seq" column
``eager``       real tasks per future   off on APRIL / on for Encore
``lazy``        lazy task creation      off on APRIL
=============== ======================= ====================================

``software_checks=True`` adds the Encore Multimax configuration: inline
future-tag tests before every strict operand (no tag hardware).
"""

from repro.errors import CompilerError
from repro.isa.assembler import assemble
from repro.lang.analyzer import Analyzer
from repro.lang.codegen import CodeGenerator

#: Library functions available to every program, written in Mul-T.
PRELUDE = """
(define (abs x) (if (< x 0) (- 0 x) x))
(define (min2 a b) (if (< a b) a b))
(define (max2 a b) (if (> a b) a b))
(define (even? n) (= (remainder n 2) 0))
(define (odd? n) (not (= (remainder n 2) 0)))
(define (list-length lst)
  (if (null? lst) 0 (+ 1 (list-length (cdr lst)))))
(define (list-ref lst k)
  (if (= k 0) (car lst) (list-ref (cdr lst) (- k 1))))
(define (reverse-onto l acc)
  (if (null? l) acc (reverse-onto (cdr l) (cons (car l) acc))))
(define (list-reverse l) (reverse-onto l '()))
(define (iota-from n k)
  (if (= k 0) '() (cons n (iota-from (+ n 1) (- k 1)))))
(define (iota k) (iota-from 0 k))
"""

MODES = ("sequential", "eager", "lazy")


class CompiledProgram:
    """A compiled, assembled Mul-T program."""

    def __init__(self, source, mode, software_checks, asm_source, program,
                 program_ast):
        self.source = source
        self.mode = mode
        self.software_checks = software_checks
        self.asm_source = asm_source
        self.program = program
        self.ast = program_ast

    def entry_label(self, name="main"):
        """Assembly label of a top-level function."""
        definition = self.ast.lookup(name)
        if definition is None or not definition.is_function:
            raise CompilerError("no top-level function named %s" % name)
        return definition.lam.label

    @property
    def wants_lazy_scheduling(self):
        """Machine configs must enable lazy stealing for this program."""
        return self.mode == "lazy"


def compile_source(source, mode="eager", software_checks=False, base=0,
                   include_prelude=True, optimize=False):
    """Compile Mul-T source text into a :class:`CompiledProgram`.

    ``optimize=True`` runs the postpass branch-delay-slot filler
    (:mod:`repro.isa.optimizer`) over the generated assembly.
    """
    if mode not in MODES:
        raise CompilerError("unknown compilation mode %r" % mode)
    # Deterministic label names: the same source always compiles to the
    # same labels, even on recompilation within one process (monitor
    # breakpoint scripts and post-mortem listings depend on this).
    from repro.lang import analyzer as _analyzer_mod
    from repro.lang import codegen as _codegen_mod
    _analyzer_mod.reset_labels()
    _codegen_mod.reset_labels()
    full_source = (PRELUDE + source) if include_prelude else source
    analyzer = Analyzer(strip_futures=(mode == "sequential"),
                        lazy_futures=(mode == "lazy"))
    program_ast = analyzer.analyze_program(full_source)
    generator = CodeGenerator(
        program_ast,
        lazy_futures=(mode == "lazy"),
        software_checks=software_checks,
    )
    asm_source = generator.generate()
    if optimize:
        from repro.isa.optimizer import assemble_optimized
        program = assemble_optimized(asm_source, base=base)
    else:
        program = assemble(asm_source, base=base)
    return CompiledProgram(
        source, mode, software_checks, asm_source, program, program_ast)
