"""The APRIL processor core (paper Sections 3-5): task frames, tagged
ALU, trap mechanism, per-context FPU, and the pipeline interpreter."""

from repro.core.processor import Processor
from repro.core.traps import Trap, TrapAction, TrapKind

__all__ = ["Processor", "Trap", "TrapAction", "TrapKind"]
