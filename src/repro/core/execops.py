"""Predecoded execution handlers: the interpreter's translation cache.

The classic cure for a fetch -> decode -> if-chain interpreter loop is
threaded code: translate each instruction *once* into a directly
callable handler and dispatch through a table instead of re-walking the
if-chain on every execution.  This module is that translation layer for
the APRIL simulator.

:func:`build_entry` compiles one decoded
:class:`~repro.isa.instructions.Instruction` into an :class:`ExecEntry`
via :data:`DISPATCH`, an opcode-indexed table of handler factories.
Each factory unpacks the operand fields into Python locals at
*predecode* time:

* register numbers are classified once (hardwired zero / frame-relative
  / global) so the per-execution access is a bare list index instead of
  a ``read_reg``/``write_reg`` call;
* immediates are masked/scaled once (``imm & WORD_MASK``, branch
  offsets pre-multiplied by 4);
* condition-code updates write the PSR bits directly instead of going
  through four property setters.

The resulting ``run(cpu, frame, pc, npc)`` closure has *identical
architectural semantics* to the reference ``Processor._execute``
if-chain it replaces — same results, same trap conditions and payloads,
same cycle categories in the same order — which the differential
lockstep harness (``tests/core/test_lockstep.py``) enforces
instruction-for-instruction.

Entries for instructions that can neither trap, branch, touch memory,
nor move the frame pointer (raw logic, ``LUI``/``ORIL``, ``NOP``) also
carry a ``fuse(cpu, frame)`` closure: the register/PSR effect alone,
with no cycle charge and no PC-chain math.  The superblock executor
(:meth:`repro.core.processor.Processor.step_block`) strings those
together and batches the whole block's accounting into single integer
adds.

This closure tier is the middle rung of a three-tier ladder.  Cold
code runs through :meth:`~repro.core.processor.Processor.step`
dispatching one ``run`` closure per instruction; block-start pcs warm
through the fused-closure superblocks above; and hot blocks are
compiled by :mod:`repro.core.jit` into single generated Python
functions (operands baked as constants, registers flattened to locals,
accounting batched) with these same ``run`` closures as the delegation
target for whatever the generated code does not inline.  Every rung is
held to the same lockstep contract against the reference if-chain.

Cycle accounting contract: handlers charge "useful" cycles inline
(``cpu.cycles``/``stats.useful``/``stats._total``) but still honor the
dormant observability hook — ``cpu.lifetime.on_charge`` fires exactly
as :meth:`Processor.charge` would.  All other categories go through
``cpu.charge`` itself.
"""

from repro.core.psr import C_BIT, FE_BIT, N_BIT, V_BIT, Z_BIT
from repro.core.traps import Trap, TrapKind, TrapSignal
from repro.errors import ProcessorError
from repro.isa import registers
from repro.isa.instructions import (
    LOAD_FLAVORS,
    STORE_FLAVORS,
    STRICT_COMPUTE,
    Category,
    Opcode,
    category_of,
)
from repro.isa.tags import WORD_MASK

_GLOBAL_BASE = registers.GLOBAL_BASE
_CC_MASK = N_BIT | Z_BIT | V_BIT | C_BIT
_SIGN_BIT = 0x80000000


class ExecEntry:
    """One predecoded instruction: the unit of the translation cache.

    Attributes:
        instr: the decoded :class:`Instruction` (for hooks/disassembly).
        run: ``run(cpu, frame, pc, npc) -> (next_pc, next_npc)``; full
            semantics including cycle charges; raises
            :class:`TrapSignal` exactly like the reference interpreter.
        fuse: ``fuse(cpu, frame)`` register/PSR effect only, or ``None``
            when the instruction is not superblock-fusible.
    """

    __slots__ = ("instr", "run", "fuse")

    def __init__(self, instr, run, fuse=None):
        self.instr = instr
        self.run = run
        self.fuse = fuse

    def __repr__(self):
        return "ExecEntry(%r, fusible=%s)" % (self.instr, self.fuse is not None)


# -- ALU cores: (a, b) -> (result, cc_bits) ------------------------------------
#
# Bit-for-bit the formulas of :mod:`repro.core.alu`, but returning the
# condition codes pre-packed as PSR bits so handlers can splice them in
# with one mask-and-or instead of four property writes.

def _cc(result):
    if result == 0:
        return Z_BIT
    if result & _SIGN_BIT:
        return N_BIT
    return 0


def _core_add(a, b):
    total = a + b
    result = total & WORD_MASK
    cc = _cc(result)
    if (a ^ result) & (b ^ result) & _SIGN_BIT:
        cc |= V_BIT
    if total > WORD_MASK:
        cc |= C_BIT
    return result, cc


def _core_sub(a, b):
    total = a - b
    result = total & WORD_MASK
    cc = _cc(result)
    if (a ^ b) & (a ^ result) & _SIGN_BIT:
        cc |= V_BIT
    if total < 0:
        cc |= C_BIT
    return result, cc


def _core_mul(a, b):
    sa = a - 0x100000000 if a & _SIGN_BIT else a
    sb = b - 0x100000000 if b & _SIGN_BIT else b
    product = (sa >> 2) * sb
    result = product & WORD_MASK
    cc = _cc(result)
    if not -(1 << 31) <= product < (1 << 31):
        cc |= V_BIT
    return result, cc


_ALU_CORES = {
    Opcode.ADD: _core_add,
    Opcode.SUB: _core_sub,
    Opcode.CMP: _core_sub,
    Opcode.ADDR: _core_add,
    Opcode.SUBR: _core_sub,
    Opcode.MUL: _core_mul,
    Opcode.AND: lambda a, b: ((a & b), _cc(a & b)),
    Opcode.OR: lambda a, b: ((a | b), _cc(a | b)),
    Opcode.XOR: lambda a, b: (((a ^ b) & WORD_MASK), _cc((a ^ b) & WORD_MASK)),
    Opcode.ANDN: lambda a, b: ((a & ~b & WORD_MASK), _cc(a & ~b & WORD_MASK)),
    Opcode.SLL: lambda a, b: (
        ((a << (b & 31)) & WORD_MASK), _cc((a << (b & 31)) & WORD_MASK)),
    Opcode.SRL: lambda a, b: (
        ((a & WORD_MASK) >> (b & 31)), _cc((a & WORD_MASK) >> (b & 31))),
    Opcode.SRA: lambda a, b: (
        (((a - 0x100000000 if a & _SIGN_BIT else a) >> (b & 31)) & WORD_MASK),
        _cc(((a - 0x100000000 if a & _SIGN_BIT else a) >> (b & 31)) & WORD_MASK)),
}


# -- branch condition tests on the raw PSR word --------------------------------

_BRANCH_TESTS = {
    Opcode.BE: lambda v: bool(v & Z_BIT),
    Opcode.BNE: lambda v: not v & Z_BIT,
    Opcode.BL: lambda v: bool(v & N_BIT) != bool(v & V_BIT),
    Opcode.BLE: lambda v: bool(v & Z_BIT) or bool(v & N_BIT) != bool(v & V_BIT),
    Opcode.BG: lambda v: not (
        bool(v & Z_BIT) or bool(v & N_BIT) != bool(v & V_BIT)),
    Opcode.BGE: lambda v: bool(v & N_BIT) == bool(v & V_BIT),
    Opcode.BNEG: lambda v: bool(v & N_BIT),
    Opcode.BPOS: lambda v: not v & N_BIT,
    Opcode.BCS: lambda v: bool(v & C_BIT),
    Opcode.BCC: lambda v: not v & C_BIT,
    Opcode.BVS: lambda v: bool(v & V_BIT),
    Opcode.BVC: lambda v: not v & V_BIT,
    Opcode.JFULL: lambda v: bool(v & FE_BIT),
    Opcode.JEMPTY: lambda v: not v & FE_BIT,
}


# -- factory helpers -----------------------------------------------------------

def _reg_plan(number):
    """(is_frame_relative, index) access plan for an encoded register."""
    if number < _GLOBAL_BASE:
        return True, number
    return False, number - _GLOBAL_BASE


# -- ALU (COMPUTE / LOGIC) -----------------------------------------------------

def _factory_lui(instr):
    rd = instr.rd
    value = (instr.imm << 14) & WORD_MASK
    rdf, gd = _reg_plan(rd)

    def fuse(cpu, frame):
        if rd:
            if rdf:
                frame.regs[rd] = value
            else:
                cpu.globals[gd] = value

    return ExecEntry(instr, _charged_straightline(fuse), fuse)


def _factory_oril(instr):
    rd = instr.rd
    imm = instr.imm
    rdf, gd = _reg_plan(rd)

    def fuse(cpu, frame):
        if rd:
            if rdf:
                frame.regs[rd] |= imm
            else:
                cpu.globals[gd] = (cpu.globals[gd] | imm) & WORD_MASK

    return ExecEntry(instr, _charged_straightline(fuse), fuse)


def _charged_straightline(fuse):
    """Wrap a fuse closure as a full run handler: effect + 1 useful cycle."""

    def run(cpu, frame, pc, npc):
        fuse(cpu, frame)
        cpu.cycles += 1
        stats = cpu.stats
        stats.useful += 1
        stats._total += 1
        lifetime = cpu.lifetime
        if lifetime is not None:
            lifetime.on_charge(cpu, 1, "useful")
        return npc, npc + 4

    return run


def _factory_alu(instr):
    op = instr.op
    if op is Opcode.LUI:
        return _factory_lui(instr)
    if op is Opcode.ORIL:
        return _factory_oril(instr)

    rd, rs1, rs2 = instr.rd, instr.rs1, instr.rs2
    use_imm = instr.use_imm
    imm_w = instr.imm & WORD_MASK
    rs1f, g1 = _reg_plan(rs1)
    rs2f, g2 = _reg_plan(rs2)
    rdf, gd = _reg_plan(rd)
    write_rd = bool(rd) and op is not Opcode.CMP
    opname = op.name

    if op is Opcode.DIV or op is Opcode.REM:
        is_div = op is Opcode.DIV

        def run(cpu, frame, pc, npc):
            regs = frame.regs
            a = regs[rs1] if rs1f else cpu.globals[g1]
            b = imm_w if use_imm else (
                regs[rs2] if rs2f else cpu.globals[g2])
            if (a | b) & 1:
                raise TrapSignal(Trap(
                    TrapKind.FUTURE_COMPUTE, instr=instr, pc=pc,
                    value=a if a & 1 else b, cause=opname))
            if b == 0:
                raise TrapSignal(Trap(
                    TrapKind.ILLEGAL, instr=instr, pc=pc,
                    cause="divide by zero"))
            x = (a - 0x100000000 if a & _SIGN_BIT else a) >> 2
            y = (b - 0x100000000 if b & _SIGN_BIT else b) >> 2
            quotient = int(x / y) if y else 0
            if is_div:
                result = (quotient << 2) & WORD_MASK
            else:
                result = ((x - quotient * y) << 2) & WORD_MASK
            psr = frame.psr
            psr.value = (psr.value & ~_CC_MASK) | _cc(result)
            if write_rd:
                if rdf:
                    regs[rd] = result
                else:
                    cpu.globals[gd] = result
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            return npc, npc + 4

        return ExecEntry(instr, run)

    core = _ALU_CORES[op]
    if op in STRICT_COMPUTE:

        def run(cpu, frame, pc, npc):
            regs = frame.regs
            a = regs[rs1] if rs1f else cpu.globals[g1]
            b = imm_w if use_imm else (
                regs[rs2] if rs2f else cpu.globals[g2])
            if (a | b) & 1:
                raise TrapSignal(Trap(
                    TrapKind.FUTURE_COMPUTE, instr=instr, pc=pc,
                    value=a if a & 1 else b, cause=opname))
            result, cc = core(a, b)
            psr = frame.psr
            psr.value = (psr.value & ~_CC_MASK) | cc
            if write_rd:
                if rdf:
                    regs[rd] = result
                else:
                    cpu.globals[gd] = result
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            return npc, npc + 4

        return ExecEntry(instr, run)

    # Raw logic: no strictness, no traps, no control flow — fusible.
    def fuse(cpu, frame):
        regs = frame.regs
        a = regs[rs1] if rs1f else cpu.globals[g1]
        b = imm_w if use_imm else (regs[rs2] if rs2f else cpu.globals[g2])
        result, cc = core(a, b)
        psr = frame.psr
        psr.value = (psr.value & ~_CC_MASK) | cc
        if write_rd:
            if rdf:
                regs[rd] = result
            else:
                cpu.globals[gd] = result

    return ExecEntry(instr, _charged_straightline(fuse), fuse)


# -- memory --------------------------------------------------------------------

def _factory_load(instr):
    flavor = LOAD_FLAVORS[instr.op]
    raw = flavor.raw
    rd, rs1, imm = instr.rd, instr.rs1, instr.imm
    rs1f, g1 = _reg_plan(rs1)
    rdf, gd = _reg_plan(rd)

    def run(cpu, frame, pc, npc):
        regs = frame.regs
        base = regs[rs1] if rs1f else cpu.globals[g1]
        if not raw and base & 1:
            raise TrapSignal(Trap(
                TrapKind.FUTURE_ADDRESS, instr=instr, pc=pc, value=base))
        address = (base + imm) & WORD_MASK
        if address & 3:
            raise TrapSignal(Trap(
                TrapKind.ALIGNMENT, instr=instr, pc=pc, address=address))
        outcome = cpu.port.load(address, flavor, context=cpu)
        cycles = outcome.cycles
        if not outcome.ok:
            cpu.charge(cycles - 1 if cycles > 1 else 0, "stall")
            cpu.charge(1)
            raise TrapSignal(Trap(
                outcome.trap_kind, instr=instr, pc=pc, address=address,
                cause=outcome.detail))
        cpu.cycles += 1
        stats = cpu.stats
        stats.useful += 1
        stats._total += 1
        lifetime = cpu.lifetime
        if lifetime is not None:
            lifetime.on_charge(cpu, 1, "useful")
        if cycles > 1:
            cpu.charge(cycles - 1, "stall")
        psr = frame.psr
        if outcome.fe_full:
            psr.value |= FE_BIT
        else:
            psr.value &= ~FE_BIT
        if rd:
            value = outcome.value & WORD_MASK
            if rdf:
                regs[rd] = value
            else:
                cpu.globals[gd] = value
        if cpu.watch_hook is not None:
            cpu.watch_hook(cpu, pc, address, True, outcome)
        return npc, npc + 4

    return ExecEntry(instr, run)


def _factory_store(instr):
    flavor = STORE_FLAVORS[instr.op]
    raw = flavor.raw
    rd, rs1, imm = instr.rd, instr.rs1, instr.imm
    rs1f, g1 = _reg_plan(rs1)
    rdf, gd = _reg_plan(rd)

    def run(cpu, frame, pc, npc):
        regs = frame.regs
        base = regs[rs1] if rs1f else cpu.globals[g1]
        if not raw and base & 1:
            raise TrapSignal(Trap(
                TrapKind.FUTURE_ADDRESS, instr=instr, pc=pc, value=base))
        address = (base + imm) & WORD_MASK
        if address & 3:
            raise TrapSignal(Trap(
                TrapKind.ALIGNMENT, instr=instr, pc=pc, address=address))
        value = regs[rd] if rdf else cpu.globals[gd]
        outcome = cpu.port.store(address, value, flavor, context=cpu)
        cycles = outcome.cycles
        if not outcome.ok:
            cpu.charge(cycles - 1 if cycles > 1 else 0, "stall")
            cpu.charge(1)
            raise TrapSignal(Trap(
                outcome.trap_kind, instr=instr, pc=pc, address=address,
                cause=outcome.detail))
        cpu.cycles += 1
        stats = cpu.stats
        stats.useful += 1
        stats._total += 1
        lifetime = cpu.lifetime
        if lifetime is not None:
            lifetime.on_charge(cpu, 1, "useful")
        if cycles > 1:
            cpu.charge(cycles - 1, "stall")
        psr = frame.psr
        if outcome.fe_full:
            psr.value |= FE_BIT
        else:
            psr.value &= ~FE_BIT
        if cpu.watch_hook is not None:
            cpu.watch_hook(cpu, pc, address, False, outcome)
        return npc, npc + 4

    return ExecEntry(instr, run)


# -- control flow --------------------------------------------------------------

def _factory_branch(instr):
    op = instr.op
    off = 4 * instr.imm

    if op is Opcode.BA:

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            return npc, pc + off

    elif op is Opcode.BN:

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            return npc, npc + 4

    else:
        test = _BRANCH_TESTS[op]

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            if test(frame.psr.value):
                return npc, pc + off
            return npc, npc + 4

    return ExecEntry(instr, run)


def _factory_call(instr):
    off = 4 * instr.imm
    ra = registers.RA

    def run(cpu, frame, pc, npc):
        cpu.cycles += 1
        stats = cpu.stats
        stats.useful += 1
        stats._total += 1
        lifetime = cpu.lifetime
        if lifetime is not None:
            lifetime.on_charge(cpu, 1, "useful")
        frame.regs[ra] = (pc + 8) & WORD_MASK
        return npc, pc + off

    return ExecEntry(instr, run)


def _factory_jmpl(instr):
    rd, rs1, imm = instr.rd, instr.rs1, instr.imm
    rs1f, g1 = _reg_plan(rs1)
    rdf, gd = _reg_plan(rd)

    def run(cpu, frame, pc, npc):
        cpu.cycles += 1
        stats = cpu.stats
        stats.useful += 1
        stats._total += 1
        lifetime = cpu.lifetime
        if lifetime is not None:
            lifetime.on_charge(cpu, 1, "useful")
        regs = frame.regs
        base = regs[rs1] if rs1f else cpu.globals[g1]
        target = (base + imm) & WORD_MASK
        if rd:
            link = (pc + 8) & WORD_MASK
            if rdf:
                regs[rd] = link
            else:
                cpu.globals[gd] = link
        return npc, target

    return ExecEntry(instr, run)


# -- frame pointer -------------------------------------------------------------

def _factory_frame(instr):
    op = instr.op
    rd, rs1 = instr.rd, instr.rs1
    rdf, gd = _reg_plan(rd)
    rs1f, g1 = _reg_plan(rs1)

    def run(cpu, frame, pc, npc):
        cpu.cycles += 1
        stats = cpu.stats
        stats.useful += 1
        stats._total += 1
        lifetime = cpu.lifetime
        if lifetime is not None:
            lifetime.on_charge(cpu, 1, "useful")
        count = len(cpu.frames)
        if op is Opcode.INCFP:
            cpu.fp = (cpu.fp + 1) % count
        elif op is Opcode.DECFP:
            cpu.fp = (cpu.fp - 1) % count
        elif op is Opcode.RDFP:
            if rd:
                if rdf:
                    frame.regs[rd] = cpu.fp
                else:
                    cpu.globals[gd] = cpu.fp
        else:  # STFP
            value = frame.regs[rs1] if rs1f else cpu.globals[g1]
            cpu.fp = value % count
        return npc, npc + 4

    return ExecEntry(instr, run)


# -- system --------------------------------------------------------------------

def _factory_system(instr):
    op = instr.op

    if op is Opcode.NOP:

        def fuse(cpu, frame):
            return None

        return ExecEntry(instr, _charged_straightline(fuse), fuse)

    if op is Opcode.HALT:

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            cpu.halted = True
            return pc, npc  # PC frozen at the halt

        return ExecEntry(instr, run)

    if op is Opcode.TRAP:
        vector = instr.imm

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            raise TrapSignal(Trap(
                TrapKind.SOFTWARE, vector=vector, instr=instr, pc=pc))

        return ExecEntry(instr, run)

    if op is Opcode.RDPSR:
        rd = instr.rd
        rdf, gd = _reg_plan(rd)

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            if rd:
                value = frame.psr.value & WORD_MASK
                if rdf:
                    frame.regs[rd] = value
                else:
                    cpu.globals[gd] = value
            return npc, npc + 4

        return ExecEntry(instr, run)

    if op is Opcode.WRPSR:
        rs1 = instr.rs1
        rs1f, g1 = _reg_plan(rs1)

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            frame.psr.value = (
                frame.regs[rs1] if rs1f else cpu.globals[g1])
            return npc, npc + 4

        return ExecEntry(instr, run)

    if op is Opcode.RETT:

        def run(cpu, frame, pc, npc):
            cpu.cycles += 1
            stats = cpu.stats
            stats.useful += 1
            stats._total += 1
            lifetime = cpu.lifetime
            if lifetime is not None:
                lifetime.on_charge(cpu, 1, "useful")
            frame.return_from_trap(retry=True)
            return frame.pc, frame.npc

        return ExecEntry(instr, run)

    raise ProcessorError("unimplemented system op %r" % (instr,))


# -- out-of-band ---------------------------------------------------------------

def _factory_oob(instr):
    op = instr.op
    rd, rs1, imm = instr.rd, instr.rs1, instr.imm
    rs1f, g1 = _reg_plan(rs1)
    rdf, gd = _reg_plan(rd)

    if op is Opcode.FLUSH:

        def run(cpu, frame, pc, npc):
            base = frame.regs[rs1] if rs1f else cpu.globals[g1]
            address = (base + imm) & WORD_MASK
            outcome = cpu.port.flush(address, context=cpu)
            cpu.charge(outcome.cycles)
            return npc, npc + 4

    elif op is Opcode.LDIO:

        def run(cpu, frame, pc, npc):
            base = frame.regs[rs1] if rs1f else cpu.globals[g1]
            address = (base + imm) & WORD_MASK
            outcome = cpu.port.ldio(address, context=cpu)
            cpu.charge(outcome.cycles)
            if rd:
                value = outcome.value & WORD_MASK
                if rdf:
                    frame.regs[rd] = value
                else:
                    cpu.globals[gd] = value
            return npc, npc + 4

    else:  # STIO

        def run(cpu, frame, pc, npc):
            base = frame.regs[rs1] if rs1f else cpu.globals[g1]
            address = (base + imm) & WORD_MASK
            value = frame.regs[rd] if rdf else cpu.globals[gd]
            outcome = cpu.port.stio(address, value, context=cpu)
            cpu.charge(outcome.cycles)
            return npc, npc + 4

    return ExecEntry(instr, run)


# -- the opcode-indexed dispatch table -----------------------------------------

_CATEGORY_FACTORIES = {
    Category.COMPUTE: _factory_alu,
    Category.LOGIC: _factory_alu,
    Category.LOAD: _factory_load,
    Category.STORE: _factory_store,
    Category.BRANCH: _factory_branch,
    Category.FRAME: _factory_frame,
    Category.SYSTEM: _factory_system,
    Category.OOB: _factory_oob,
}

#: Opcode-indexed handler-factory table (the dispatch table that
#: replaces the ``_execute`` if-chain).  ``DISPATCH[int(op)]`` maps a
#: decoded instruction to its :class:`ExecEntry`.
DISPATCH = [None] * 256
for _op in Opcode:
    if _op is Opcode.CALL:
        DISPATCH[int(_op)] = _factory_call
    elif _op is Opcode.JMPL:
        DISPATCH[int(_op)] = _factory_jmpl
    else:
        DISPATCH[int(_op)] = _CATEGORY_FACTORIES[category_of(_op)]
del _op


def build_entry(instr):
    """Compile one decoded instruction into its :class:`ExecEntry`."""
    factory = DISPATCH[instr.op]
    if factory is None:
        raise ProcessorError("no handler factory for %r" % (instr,))
    return factory(instr)
