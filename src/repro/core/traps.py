"""The APRIL trap mechanism (paper Sections 3, 5, 6).

"When a trap is signalled in APRIL, the trap mechanism lets the pipeline
empty and passes control to the trap handler.  The trap handler executes
in the same task frame as the thread that trapped so that it can access
all of the thread's registers."

Because the SPARC has a minimum trap overhead of five cycles (squashing
the pipeline and computing the trap vector), every trap in this
simulator charges :data:`TRAP_SQUASH_CYCLES` before its handler runs.
Handlers are run-time-system routines; in this reproduction they are
Python callables that mutate simulated state while *charging the cycle
cost the paper measured for the corresponding assembly routine* (see
DESIGN.md, substitution table).

A handler receives ``(cpu, frame, trap)`` and returns a
:class:`TrapAction` telling the hardware what to do next.
"""

import enum

from repro.errors import ProcessorError

#: Minimum trap overhead: pipeline squash + vector computation (Section 5).
TRAP_SQUASH_CYCLES = 5

#: Cycles for the switch-spin trap handler body (Section 6.1): rdpsr,
#: save, save, wrpsr, jmpl, rett = 6 cycles, for an 11-cycle total switch.
SWITCH_HANDLER_CYCLES = 6

#: Cycles for the future-touch handler when the future is resolved
#: (Section 6.2): decode the trapping instruction, test the value slot's
#: full/empty bit, substitute the value, rett.
FUTURE_TOUCH_RESOLVED_CYCLES = 23


class TrapKind(enum.Enum):
    """Synchronous and asynchronous trap causes."""

    # Synchronous data exceptions (Section 4, "Memory Instructions").
    CACHE_MISS = "cache_miss"            # remote miss: controller trapped us
    EMPTY_LOAD = "empty_load"            # f/e exception: load of empty word
    FULL_STORE = "full_store"            # f/e exception: store to full word
    # Future detection (Section 4/5).
    FUTURE_COMPUTE = "future_compute"    # strict op on a future operand
    FUTURE_ADDRESS = "future_address"    # memory op with future address
    # Software traps: the run-time system's entry points.
    SOFTWARE = "software"
    # Asynchronous: interprocessor interrupts (Section 3.4).
    IPI = "ipi"
    # Error traps.
    ALIGNMENT = "alignment"
    ILLEGAL = "illegal"


class TrapAction(enum.Enum):
    """What the processor does after a trap handler returns."""

    RETRY = "retry"        # re-execute the trapping instruction
    RESUME = "resume"      # continue after the trapping instruction
    SWITCHED = "switched"  # handler switched frames; use the new frame's PC
    HALT = "halt"          # stop this processor


class Trap:
    """Details of one trap event, passed to the handler."""

    __slots__ = ("kind", "vector", "instr", "pc", "address", "value", "cause")

    def __init__(self, kind, vector=0, instr=None, pc=0, address=None,
                 value=None, cause=None):
        self.kind = kind
        self.vector = vector    # software trap number (TRAP #n)
        self.instr = instr      # the decoded trapping Instruction
        self.pc = pc            # word address of the trapping instruction
        self.address = address  # memory address involved, if any
        self.value = value      # offending operand value, if any
        self.cause = cause      # free-form extra detail

    def __repr__(self):
        return "Trap(%s, vector=%d, pc=%#x)" % (self.kind.name, self.vector, self.pc)


class TrapTable:
    """Dispatch table mapping trap kinds (and software vectors) to handlers.

    A handler is ``callable(cpu, frame, trap) -> (TrapAction, cycles)``.
    The cycles are the handler-body cost charged on top of the 5-cycle
    squash, mirroring the measured costs in Sections 6.1-6.2.
    """

    def __init__(self):
        self._by_kind = {}
        self._by_vector = {}

    def register(self, kind, handler):
        """Install the handler for one trap kind."""
        self._by_kind[kind] = handler

    def register_software(self, vector, handler):
        """Install the handler for software trap number ``vector``."""
        self._by_vector[vector] = handler

    def lookup(self, trap):
        """Find the handler for a trap event.

        Raises :class:`ProcessorError` for unhandled traps: an unhandled
        trap on real hardware would wedge the machine, and silently
        ignoring one in a simulator hides bugs.
        """
        if trap.kind is TrapKind.SOFTWARE:
            handler = self._by_vector.get(trap.vector)
            if handler is None:
                raise ProcessorError(
                    "unhandled software trap %d at pc=%#x" % (trap.vector, trap.pc)
                )
            return handler
        handler = self._by_kind.get(trap.kind)
        if handler is None:
            raise ProcessorError(
                "unhandled %s trap at pc=%#x (%r)" % (trap.kind.name, trap.pc, trap)
            )
        return handler


class TrapSignal(Exception):
    """Internal control-flow signal: an instruction raised a trap.

    Raised inside the execute stage and caught by the processor's step
    loop, which then runs the trap mechanism.  Never escapes the
    processor.
    """

    def __init__(self, trap):
        super().__init__(trap.kind.value)
        self.trap = trap
