"""Superblock JIT: translation-cache entries compiled to Python code.

The third interpreter tier.  :mod:`repro.core.execops` predecodes each
word into a bound closure (tier 2); this module goes one step further
and compiles a whole superblock into a *single generated Python
function* via ``compile()`` + ``exec``:

* operand fields, masks, immediates, and memory-flavor semantics are
  baked into the source as integer literals;
* register reads and writes are flattened to Python locals, with one
  read-in of the referenced registers at block entry and one write-back
  of the dirty ones at block exit;
* the per-instruction cycle/useful/instruction accounting collapses
  into batched adds at segment boundaries;
* branch exits assign the next PC chain directly (taken target and
  fall-through both precomputed at compile time).

A superblock is more than a straight-line run.  The former extends
through three kinds of joints that would otherwise terminate a block
after a handful of instructions (RISC code has a branch or memory
access every ~3 words, so plain straight-line blocks average under 3
instructions and the per-call overhead eats the win):

* **memory instructions** over the ideal single-cycle port (the Table
  3 configuration) are *inlined*: the generated code performs the
  full/empty-bit flavor semantics directly on the memory arrays, and
  the access costs one batched cycle like any other instruction.  Any
  access the inline path cannot complete bit-identically — a future
  base address, a misaligned or out-of-bank address, a full/empty
  mismatch (the flavors that trap), a store into a code-watched word,
  or an attached ``watch_hook`` — falls to the instruction's
  :class:`~repro.core.execops.ExecEntry` closure with the PC chain
  parked at the instruction, and the block *ends there*: the closure
  redoes the access from scratch (the inline test mutated nothing), so
  trap payloads, stall charging, watch notifications, and hook calls
  stay exactly the closure tier's.  On a non-ideal port (the cache /
  directory machine) every memory instruction is such a delegated
  block terminator.  Because delegation always ends the block, a
  compiled block never runs on past a stall or a self-invalidating
  store — the multi-CPU slice interleaving stays reference-identical;
* **branch delay slots** are fused into the exit: the delay
  instruction executes on the block's locals after the branch
  decision, then the taken/untaken chain is installed — without this
  every taken branch costs a full ``step()``;
* **untaken conditional branches** continue the block: the taken path
  writes back, commits, and returns; the fall-through path keeps
  accumulating in locals, so a forward if-then costs one test.

Strict compute ops (``ADD``/``SUB``/``MUL``/``CMP``) are inlined with
their future-detection guard.  A tripped guard writes back the
registers dirtied so far, commits the cycles already earned, parks the
PC chain at the guarded instruction, and raises the *identical*
:class:`TrapSignal` the closure tier's strict op would — same kind,
instr, pc, value, and cause — which the runner
(:meth:`repro.core.processor.Processor._run_jit`) takes exactly as
``step()`` does.  ``DIV``/``REM`` (divide-by-zero on top of
strictness) are never inlined.

A block's final terminator is either *inlined* (``BA``, ``CALL``,
``JMPL`` — pure PC-chain math on the locals) or *delegated*: any other
decodable instruction (frame ops, system ops, ``DIV``/``REM``) runs
through its closure after the prefix commits, ending the block.

Self-modifying code: each compiled block records the byte range
``[start, end)`` it was translated from and a hash of the translated
words; the machine's :class:`~repro.mem.memory.CodeWatch` notifies
every processor on stores into covered words and the overlapping
blocks are discarded (see ``Processor.invalidate_code``).  A block can
never invalidate *itself* mid-run: inline stores to watched words are
exactly the case the inline path refuses, and the delegated store that
performs them ends the block.

Generated functions close over nothing machine-specific — registers,
memory arrays, and the PSR all come off the ``(cpu, frame)`` arguments
— so compiled blocks are shared process-wide through
:data:`SHARED_BLOCKS`, keyed by ``(pc, code words, port spec)``.  A
second machine running the same program (benchmark repetitions, sweep
workers in-process, A/B observation runs) reuses the code objects and
pays no ``compile()`` cost; self-modifying code changes the words and
therefore the key.

Determinism contract: generated code performs *identical architectural
semantics* to the reference ``_execute`` if-chain — same results, same
CC bits, same trap conditions in the same order, same per-category
cycle accounting, same event-loop interleaving — which the
differential lockstep harness (``tests/core/test_lockstep.py``)
enforces per instruction, per tier.
"""

from collections import OrderedDict

from repro.core.psr import C_BIT, FE_BIT, N_BIT, V_BIT, Z_BIT
from repro.core.traps import Trap, TrapKind, TrapSignal
from repro.isa import registers
from repro.isa.instructions import (
    BRANCHES,
    LOAD_FLAVORS,
    STORE_FLAVORS,
    STRICT_COMPUTE,
    Opcode,
)
from repro.isa.tags import WORD_MASK
from repro.mem.ideal import IdealMemoryPort

_GLOBAL_BASE = registers.GLOBAL_BASE
_CC_MASK = N_BIT | Z_BIT | V_BIT | C_BIT
_NOT_CC = ~_CC_MASK
_SIGN = 0x80000000

#: Most instructions one generated function may execute on a single
#: pass (the slice-budget admission cost); also the scan bound.
MAX_JIT_BLOCK = 32

#: Straight-line ops inlined into the generated body (everything here
#: costs exactly one "useful" cycle; strict ops get an inline guard).
#: ``BN`` (branch never) belongs here: it charges one cycle and always
#: falls through, so its delay slot is just the next instruction.
_STRAIGHT = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.CMP,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.ANDN,
    Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.ADDR, Opcode.SUBR, Opcode.LUI, Opcode.ORIL,
    Opcode.NOP, Opcode.BN,
})

#: Memory ops (inlined over the ideal port, delegated otherwise).
_MEM_LOADS = frozenset(LOAD_FLAVORS)
_MEM_STORES = frozenset(STORE_FLAVORS)
_MEM = _MEM_LOADS | _MEM_STORES

#: Unconditional redirects compiled to inline PC-chain math.
_UNCOND_EXITS = frozenset({Opcode.BA, Opcode.CALL, Opcode.JMPL})

#: Branch condition source expressions over the local ``psr`` word —
#: exact transliterations of ``execops._BRANCH_TESTS``.
_COND = {
    Opcode.BE: "psr & %d" % Z_BIT,
    Opcode.BNE: "not psr & %d" % Z_BIT,
    Opcode.BL: "(psr & %d != 0) != (psr & %d != 0)" % (N_BIT, V_BIT),
    Opcode.BLE: "psr & %d or (psr & %d != 0) != (psr & %d != 0)" % (
        Z_BIT, N_BIT, V_BIT),
    Opcode.BG: "not (psr & %d or (psr & %d != 0) != (psr & %d != 0))" % (
        Z_BIT, N_BIT, V_BIT),
    Opcode.BGE: "(psr & %d != 0) == (psr & %d != 0)" % (N_BIT, V_BIT),
    Opcode.BNEG: "psr & %d" % N_BIT,
    Opcode.BPOS: "not psr & %d" % N_BIT,
    Opcode.BCS: "psr & %d" % C_BIT,
    Opcode.BCC: "not psr & %d" % C_BIT,
    Opcode.BVS: "psr & %d" % V_BIT,
    Opcode.BVC: "not psr & %d" % V_BIT,
    Opcode.JFULL: "psr & %d" % FE_BIT,
    Opcode.JEMPTY: "not psr & %d" % FE_BIT,
}


class CodeCache:
    """A bounded pc-keyed translation cache with true LRU eviction.

    Shared by the predecode entry cache and the JIT block cache (the
    "same LRU policy" both tiers advertise).  ``data`` is the backing
    :class:`OrderedDict`; hot paths may read it directly (``data.get``
    + ``data.move_to_end``) and must route insertions through
    :meth:`put` so the bound and the eviction counter stay exact.  The
    dict object is never replaced, so callers may alias it.
    """

    __slots__ = ("data", "capacity", "evictions", "invalidations")

    def __init__(self, capacity):
        self.data = OrderedDict()
        self.capacity = capacity
        self.evictions = 0
        self.invalidations = 0

    def get(self, key):
        """LRU lookup: returns the value or None, refreshing recency."""
        data = self.data
        value = data.get(key)
        if value is not None:
            data.move_to_end(key)
        return value

    def put(self, key, value):
        """Insert (refreshing recency), evicting the LRU tail if full."""
        data = self.data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def discard(self, key):
        """Drop one key (an invalidation); returns True if present."""
        if key in self.data:
            del self.data[key]
            self.invalidations += 1
            return True
        return False

    def __len__(self):
        return len(self.data)

    def counters(self):
        """JSON-ready size/eviction/invalidation counters."""
        return {
            "size": len(self.data),
            "capacity": self.capacity,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


#: Process-wide cache of compiled blocks, keyed by
#: ``(pc, words tuple, port spec)``.  Nothing machine-specific is baked
#: into a generated function (see the module docstring), so any machine
#: whose code words at ``pc`` match — and whose port admits the same
#: inline-memory specialization — reuses the block and skips
#: ``compile()``, the dominant cost of warming a fresh machine.
SHARED_BLOCKS = CodeCache(1 << 12)


def _port_spec(cpu):
    """Inline-memory specialization key for this CPU's port.

    Only the plain ideal port with unit latency is inlined — its
    successful loads and stores are pure array reads/writes plus
    full/empty-bit flavor logic, all compile-time known.  The spec
    carries the bank geometry because it is baked into the generated
    bounds checks.  ``None`` means "delegate every memory access".
    """
    port = cpu.port
    if type(port) is IdealMemoryPort and port.latency == 1:
        memory = port.memory
        return (memory.base, memory.size_words)
    return None


class JitBlock:
    """One compiled superblock.

    Attributes:
        fn: the generated ``fn(cpu, frame)`` — executes the whole
            block including accounting and the PC-chain exit; raises
            :class:`TrapSignal` from a guard or a delegated closure.
        count: instructions the block executes on a full pass.
        cost: worst-case 1-cycle instructions the block issues (equal
            to ``count``) — the slice-budget admission test.
        start/end: byte range of code words the block was compiled
            from (invalidation granularity).
        key: the :data:`SHARED_BLOCKS` key — ``(start, words, spec)``;
            a recompile after self-modifying code yields a different
            key.
        source: the generated Python source (debugging / tests).
    """

    __slots__ = ("fn", "count", "cost", "start", "end", "key", "source")

    def __init__(self, fn, count, cost, start, end, key, source):
        self.fn = fn
        self.count = count
        self.cost = cost
        self.start = start
        self.end = end
        self.key = key
        self.source = source

    def __repr__(self):
        return "JitBlock(start=%#x, count=%d, cost=%d)" % (
            self.start, self.count, self.cost)


class _Emitter:
    """Accumulates generated source plus the register-local bookkeeping."""

    def __init__(self):
        self.body = []
        # name -> load statement, in first-reference order.
        self.refs = OrderedDict()
        self.dirty = OrderedDict()   # name -> store_stmt
        self._stores = {}
        self.psr_used = False
        self.psr_dirty = False
        self.needs_regs = False
        self.needs_glob = False
        self.needs_mem = False
        self.delegates = []          # closure default-arg values
        self.instrs = []             # Instruction constants (trap payloads)

    def line(self, indent, text):
        self.body.append("    " * indent + text)

    # -- register locals ---------------------------------------------------

    def use_reg(self, number):
        """Expression for reading register ``number`` (read-in local)."""
        if number == 0:
            return "0"
        if number < _GLOBAL_BASE:
            name = "r%d" % number
            load = "%s = regs[%d]" % (name, number)
            store = "regs[%d] = %s" % (number, name)
            self.needs_regs = True
        else:
            index = number - _GLOBAL_BASE
            name = "g%d" % index
            load = "%s = glob[%d]" % (name, index)
            store = "glob[%d] = %s" % (index, name)
            self.needs_glob = True
        if name not in self.refs:
            self.refs[name] = load
            self._stores[name] = store
        return name

    def def_reg(self, number):
        """Local name for writing register ``number`` (marked dirty)."""
        name = self.use_reg(number)
        if name not in self.dirty:
            self.dirty[name] = self._stores[name]
        return name

    def use_psr(self):
        self.psr_used = True

    def def_psr(self):
        self.psr_used = True
        self.psr_dirty = True

    def add_delegate(self, run):
        """Bind a closure as a default argument; returns its local name."""
        name = "_d%d" % len(self.delegates)
        self.delegates.append(run)
        return name

    def add_instr(self, instr):
        """Bake an Instruction as a namespace constant (trap payloads)."""
        name = "_i%d" % len(self.instrs)
        self.instrs.append(instr)
        return name

    # -- common fragments --------------------------------------------------

    def writeback(self, indent, dirty_names=None, psr_dirty=None):
        """Emit register + PSR write-back for the given dirty snapshot."""
        names = self.dirty if dirty_names is None else dirty_names
        for name in names:
            self.line(indent, self._stores[name])
        if self.psr_dirty if psr_dirty is None else psr_dirty:
            self.line(indent, "_psr.value = psr")

    def commit(self, indent, count):
        """Emit the batched cycle/useful/instruction accounting."""
        self.line(indent, "cpu.cycles += %d" % count)
        self.line(indent, "_st = cpu.stats")
        self.line(indent, "_st.useful += %d" % count)
        self.line(indent, "_st._total += %d" % count)
        self.line(indent, "_st.instructions += %d" % count)


def _emit_guard(emitter, guard_expr, value_expr, instr, pending, pc_k,
                npc_expr=None):
    """Inline future-detection guard: write back, commit, raise.

    ``pending`` is the number of uncommitted instructions already
    executed when the guard trips.  The tripped guard writes back the
    dirt so far, commits the earned cycles, parks the PC chain at the
    guarded instruction (``npc_expr`` overrides the straight ``pc +
    4`` for a delay-slot guard whose next pc is the branch target),
    and raises the *identical* :class:`TrapSignal` the closure tier's
    strict op would — same kind, instr, pc, value, and cause — which
    the runner takes exactly as ``step()`` does.
    """
    emitter.line(1, "if %s:" % guard_expr)
    # Snapshot of dirt *so far* — later instructions' write-backs must
    # not leak into an earlier bail.
    emitter.writeback(2, dirty_names=list(emitter.dirty),
                      psr_dirty=emitter.psr_dirty)
    if pending:
        emitter.commit(2, pending)
    emitter.line(2, "frame.pc = %d" % pc_k)
    emitter.line(2, "frame.npc = %s" % (
        npc_expr if npc_expr is not None else "%d" % (pc_k + 4)))
    name = emitter.add_instr(instr)
    emitter.line(2, "raise _TS(_T(_FC, instr=%s, pc=%d, value=%s,"
                 " cause=%r))" % (name, pc_k, value_expr, instr.op.name))


def _emit_straight(emitter, instr, pending, pc_i, npc_expr=None):
    """Emit one inlined straight-line instruction at ``pc_i``."""
    op = instr.op
    if op is Opcode.NOP or op is Opcode.BN:
        return
    if op is Opcode.LUI:
        if instr.rd:
            name = emitter.def_reg(instr.rd)
            emitter.line(1, "%s = %d" % (name, (instr.imm << 14) & WORD_MASK))
        return
    if op is Opcode.ORIL:
        if instr.rd:
            name = emitter.def_reg(instr.rd)
            if instr.rd < _GLOBAL_BASE:
                # Mirrors the closure: frame regs hold masked words and
                # the 18-bit immediate cannot push them out of range.
                emitter.line(1, "%s |= %d" % (name, instr.imm))
            else:
                emitter.line(1, "%s = (%s | %d) & %d" % (
                    name, name, instr.imm, WORD_MASK))
        return

    a = emitter.use_reg(instr.rs1)
    if instr.use_imm:
        imm_w = instr.imm & WORD_MASK
        b = "%d" % imm_w
        b_const = imm_w
    else:
        b = emitter.use_reg(instr.rs2)
        b_const = None

    if op in STRICT_COMPUTE:
        if b_const is not None and not b_const & 1:
            guard = "%s & 1" % a
            value = a
        elif b_const is not None and b_const & 1:
            guard = "1"          # odd literal operand: always a future
            value = "%s if %s & 1 else %s" % (a, a, b)
        else:
            guard = "(%s | %s) & 1" % (a, b)
            value = "%s if %s & 1 else %s" % (a, a, b)
        _emit_guard(emitter, guard, value, instr, pending, pc_i, npc_expr)

    line = emitter.line
    if op is Opcode.ADD or op is Opcode.ADDR:
        line(1, "_t = %s + %s" % (a, b))
        line(1, "res = _t & %d" % WORD_MASK)
        line(1, "_cc = %d if res == 0 else (%d if res & %d else 0)" % (
            Z_BIT, N_BIT, _SIGN))
        line(1, "if (%s ^ res) & (%s ^ res) & %d:" % (a, b, _SIGN))
        line(2, "_cc |= %d" % V_BIT)
        line(1, "if _t > %d:" % WORD_MASK)
        line(2, "_cc |= %d" % C_BIT)
    elif op is Opcode.SUB or op is Opcode.SUBR or op is Opcode.CMP:
        line(1, "_t = %s - %s" % (a, b))
        line(1, "res = _t & %d" % WORD_MASK)
        line(1, "_cc = %d if res == 0 else (%d if res & %d else 0)" % (
            Z_BIT, N_BIT, _SIGN))
        line(1, "if (%s ^ %s) & (%s ^ res) & %d:" % (a, b, a, _SIGN))
        line(2, "_cc |= %d" % V_BIT)
        line(1, "if _t < 0:")
        line(2, "_cc |= %d" % C_BIT)
    elif op is Opcode.MUL:
        line(1, "_sa = %s - %d if %s & %d else %s" % (a, 1 << 32, a, _SIGN, a))
        line(1, "_sb = %s - %d if %s & %d else %s" % (b, 1 << 32, b, _SIGN, b))
        line(1, "_t = (_sa >> 2) * _sb")
        line(1, "res = _t & %d" % WORD_MASK)
        line(1, "_cc = %d if res == 0 else (%d if res & %d else 0)" % (
            Z_BIT, N_BIT, _SIGN))
        line(1, "if not %d <= _t < %d:" % (-(1 << 31), 1 << 31))
        line(2, "_cc |= %d" % V_BIT)
    else:
        if op is Opcode.AND:
            expr = "%s & %s" % (a, b)
        elif op is Opcode.OR:
            expr = "%s | %s" % (a, b)
        elif op is Opcode.XOR:
            expr = "(%s ^ %s) & %d" % (a, b, WORD_MASK)
        elif op is Opcode.ANDN:
            expr = "%s & ~%s & %d" % (a, b, WORD_MASK)
        elif op is Opcode.SLL:
            expr = "(%s << (%s & 31)) & %d" % (a, b, WORD_MASK)
        elif op is Opcode.SRL:
            expr = "(%s & %d) >> (%s & 31)" % (a, WORD_MASK, b)
        else:  # SRA
            expr = "((%s - %d if %s & %d else %s) >> (%s & 31)) & %d" % (
                a, 1 << 32, a, _SIGN, a, b, WORD_MASK)
        line(1, "res = %s" % expr)
        line(1, "_cc = %d if res == 0 else (%d if res & %d else 0)" % (
            Z_BIT, N_BIT, _SIGN))
    emitter.def_psr()
    line(1, "psr = psr & %d | _cc" % _NOT_CC)
    if instr.rd and op is not Opcode.CMP:
        name = emitter.def_reg(instr.rd)
        line(1, "%s = res" % name)


def _emit_mem_delegate(emitter, instr, run, pending, pc_i, npc_expr,
                       install, indent=1):
    """Emit a delegated load/store at ``pc_i``, ending the block.

    Writes back and commits the pending segment, parks the PC chain at
    the instruction (so a raised trap banks exactly the state
    ``step()`` would have), calls the closure, installs the next
    chain, bumps the retired counter, and returns.  When ``install``
    the chain comes from the closure's return value (delay-slot use,
    where the next pc is dynamic); otherwise it is the static
    fall-through.  Used both for every memory access on a non-ideal
    port and for the slow path of an inlined access.
    """
    name = emitter.add_delegate(run)
    dirty = list(emitter.dirty) if indent > 1 else None
    psr_dirty = emitter.psr_dirty if indent > 1 else None
    emitter.writeback(indent, dirty_names=dirty, psr_dirty=psr_dirty)
    if pending:
        emitter.commit(indent, pending)
    line = emitter.line
    line(indent, "frame.pc = %d" % pc_i)
    line(indent, "frame.npc = %s" % npc_expr)
    call = "%s(cpu, frame, %d, %s)" % (name, pc_i, npc_expr)
    if install:
        line(indent, "_p, _n = %s" % call)
        line(indent, "frame.pc = _p")
        line(indent, "frame.npc = _n")
    else:
        line(indent, "%s" % call)
        line(indent, "frame.pc = %d" % (pc_i + 4))
        line(indent, "frame.npc = %d" % (pc_i + 8))
    line(indent, "cpu.stats.instructions += 1")
    line(indent, "return")


def _emit_mem_inline(emitter, instr, run, pending, pc_i, npc_expr, spec,
                     install):
    """Emit an inlined ideal-port load/store at ``pc_i``.

    The successful single-cycle access runs on the block's locals and
    memory arrays and joins the pending batch; every other case — the
    flavor's trap condition, a future base, a misaligned or
    out-of-bank address, a store into a code-watched word, an attached
    ``watch_hook`` — takes the slow branch, which delegates to the
    closure and ends the block (the inline test mutated nothing, so
    the closure redoes the access from scratch, bit-identically).
    """
    emitter.needs_mem = True
    op = instr.op
    is_load = op in _MEM_LOADS
    flavor = LOAD_FLAVORS[op] if is_load else STORE_FLAVORS[op]
    base, size_words = spec
    line = emitter.line

    b = emitter.use_reg(instr.rs1)
    line(1, "_a = (%s + %d) & %d" % (b, instr.imm, WORD_MASK))
    if base:
        line(1, "_x = (_a - %d) >> 2" % base)
    else:
        line(1, "_x = _a >> 2")
    slow = []
    if not flavor.raw:
        slow.append("%s & 1" % b)
    slow.append("_a & 3")
    if base:
        slow.append("_x < 0")
    slow.append("_x >= %d" % size_words)
    slow.append("cpu.watch_hook is not None")
    if is_load:
        if flavor.trap_on_empty:
            slow.append("not _fe[_x]")
    else:
        slow.append("_x in _ww")
        if flavor.trap_on_full:
            slow.append("_fe[_x]")
    line(1, "if %s:" % " or ".join(slow))
    _emit_mem_delegate(emitter, instr, run, pending, pc_i, npc_expr,
                       install, indent=2)

    # Fast path: the flavor's semantics inline.  The PSR full/empty
    # condition bit reflects the state *before* the access.
    emitter.def_psr()
    line(1, "psr = psr | %d if _fe[_x] else psr & %d" % (FE_BIT, ~FE_BIT))
    if is_load:
        if instr.rd:
            name = emitter.def_reg(instr.rd)
            line(1, "%s = _mw[_x]" % name)
        if flavor.set_empty:
            line(1, "_fe[_x] = 0")
    else:
        value = emitter.use_reg(instr.rd)
        line(1, "_mw[_x] = %s" % value)
        if flavor.set_full:
            line(1, "_fe[_x] = 1")


def _classify_delay(decoder, fetch, address):
    """Decode the delay-slot instruction at ``address`` for fusion.

    Returns ``("s", instr, None, word)`` for an inlineable straight
    op, ``("m", instr, run, word)`` for a load/store, or ``None`` when
    the slot cannot be fused (another branch, a system op, an
    unfetchable word) — the exit then leaves the delay slot to
    ``step()``, exactly as the closure tier does.
    """
    try:
        word = fetch(address)
        instr = decoder.decode(word)
    except Exception:
        return None
    if instr.op in _STRAIGHT:
        return ("s", instr, None, word)
    if instr.op in _MEM:
        try:
            run = decoder.predecode(word).run
        except Exception:
            return None
        return ("m", instr, run, word)
    return None


def _scan_block(cpu, pc, spec):
    """Scan the superblock at ``pc`` into a translation plan.

    Returns ``(plan, words, total, end)`` — the classified
    instructions, the code words covered, the instruction count on a
    full pass, and the first byte past the block — without generating
    any source.  The split from emission exists so a
    :data:`SHARED_BLOCKS` hit (the common case on every machine after
    the first) pays only this cheap classification walk, not the
    string building.  Scanning uses side-effect-free instruction
    fetches (the perfect I-cache), exactly like the closure tier's
    ``_build_block``.

    Plan items:
        ``("s", instr, pc)`` — inlined straight-line op;
        ``("mi", instr, run, pc)`` — inlined ideal-port load/store;
        ``("md", instr, run, pc)`` — delegated memory terminator;
        ``("cb", instr, pc)`` — bare conditional exit;
        ``("c", instr, pc, delay)`` — fused conditional (continues);
        ``("u", instr, pc, delay_or_None)`` — BA/CALL/JMPL exit;
        ``("d", instr, run, pc)`` — delegated terminator.
    """
    decoder = cpu.decoder
    fetch = cpu.port.fetch
    predecode = decoder.predecode
    plan = []
    words = []
    scan = pc
    total = 0

    while total < MAX_JIT_BLOCK:
        try:
            word = fetch(scan)
            instr = decoder.decode(word)
        except Exception:
            # Unfetchable/undecodable word ends the block; executing
            # into it falls to step(), which raises the ILLEGAL trap.
            break
        op = instr.op

        if op in _STRAIGHT:
            plan.append(("s", instr, scan))
            words.append(word)
            total += 1
            scan += 4
            continue

        if op in _MEM:
            try:
                run = predecode(word).run
            except Exception:
                break
            words.append(word)
            if spec is not None:
                plan.append(("mi", instr, run, scan))
                total += 1
                scan += 4
                continue
            # Non-ideal port: a delegated terminator.
            plan.append(("md", instr, run, scan))
            total += 1
            scan += 4
            break

        if op in _UNCOND_EXITS or op in _COND:
            delay = _classify_delay(decoder, fetch, scan + 4)
            if delay is not None and delay[0] == "m" and spec is None:
                # A delegated delay slot ends the block anyway; fusing
                # it buys nothing over the bare exit, so keep the exit
                # simple on non-ideal ports.
                delay = None
            if op in _COND:
                if delay is None:
                    plan.append(("cb", instr, scan))
                    words.append(word)
                    total += 1
                    scan += 4
                    break
                plan.append(("c", instr, scan, delay))
                words.append(word)
                words.append(delay[3])
                total += 2
                scan += 8
                continue
            plan.append(("u", instr, scan, delay))
            words.append(word)
            total += 1
            scan += 4
            if delay is not None:
                words.append(delay[3])
                total += 1
                scan += 4
            break

        # Anything else decodable (frame ops, system ops, DIV/REM, IO):
        # a delegated terminator ending the block.
        try:
            run = predecode(word).run
        except Exception:
            break
        plan.append(("d", instr, run, scan))
        words.append(word)
        total += 1
        scan += 4
        break

    return plan, words, total, scan


def compile_block(cpu, pc):
    """Compile the superblock starting at ``pc`` for ``cpu``.

    Returns a :class:`JitBlock`, or ``None`` when the code at ``pc``
    yields fewer than two compilable instructions (nothing worth a
    generated function).  Identical translations are shared
    process-wide through :data:`SHARED_BLOCKS` — source emission and
    ``compile()`` run only on a cache miss.
    """
    spec = _port_spec(cpu)
    plan, words, total, end = _scan_block(cpu, pc, spec)
    if total < 2:
        return None

    key = (pc, tuple(words), spec)
    shared = SHARED_BLOCKS.get(key)
    if shared is not None:
        return shared

    emitter = _Emitter()
    line = emitter.line
    pending = 0        # uncommitted 1-cycle instructions so far
    term_emitted = False

    for item in plan:
        kind = item[0]
        if kind == "s":
            _, instr, pc_i = item
            _emit_straight(emitter, instr, pending, pc_i)
            pending += 1
        elif kind == "mi":
            _, instr, run, pc_i = item
            _emit_mem_inline(emitter, instr, run, pending, pc_i,
                             "%d" % (pc_i + 4), spec, install=False)
            pending += 1
        elif kind == "md":
            _, instr, run, pc_i = item
            _emit_mem_delegate(emitter, instr, run, pending, pc_i,
                               "%d" % (pc_i + 4), install=False)
            term_emitted = True
        elif kind == "cb":
            # Bare conditional exit: branch only, delay slot left to
            # step() (the chain is no longer straight).
            _, instr, pc_i = item
            emitter.use_psr()
            emitter.writeback(1)
            emitter.commit(1, pending + 1)
            line(1, "frame.pc = %d" % (pc_i + 4))
            line(1, "frame.npc = %d if %s else %d" % (
                pc_i + 4 * instr.imm, _COND[instr.op], pc_i + 8))
            line(1, "return")
            term_emitted = True
        elif kind == "c":
            # Fused conditional: decide, run the delay slot, exit on
            # taken, continue the block on fall-through.
            _, instr, pc_i, delay = item
            emitter.use_psr()
            target = pc_i + 4 * instr.imm
            line(1, "_tk = %s" % _COND[instr.op])
            line(1, "_nn = %d if _tk else %d" % (target, pc_i + 8))
            pending += 1
            dkind, dinstr, drun, _dword = delay
            if dkind == "s":
                _emit_straight(emitter, dinstr, pending, pc_i + 4,
                               npc_expr="_nn")
            else:
                _emit_mem_inline(emitter, dinstr, drun, pending,
                                 pc_i + 4, "_nn", spec, install=True)
            pending += 1
            line(1, "if _tk:")
            emitter.writeback(2, dirty_names=list(emitter.dirty),
                              psr_dirty=emitter.psr_dirty)
            emitter.commit(2, pending)
            line(2, "frame.pc = %d" % target)
            line(2, "frame.npc = %d" % (target + 4))
            line(2, "return")
        elif kind == "u":
            # Unconditional redirect: BA/CALL/JMPL, delay slot fused
            # when possible.
            _, instr, pc_i, delay = item
            op = instr.op
            pending += 1
            if op is Opcode.CALL:
                name = emitter.def_reg(registers.RA)
                line(1, "%s = %d" % (name, (pc_i + 8) & WORD_MASK))
                target_expr = "%d" % (pc_i + 4 * instr.imm)
            elif op is Opcode.JMPL:
                base = emitter.use_reg(instr.rs1)
                line(1, "_nn = (%s + %d) & %d" % (
                    base, instr.imm, WORD_MASK))
                if instr.rd:
                    name = emitter.def_reg(instr.rd)
                    line(1, "%s = %d" % (name, (pc_i + 8) & WORD_MASK))
                target_expr = "_nn"
            else:  # BA
                target_expr = "%d" % (pc_i + 4 * instr.imm)
            if delay is None:
                emitter.writeback(1)
                emitter.commit(1, pending)
                line(1, "frame.pc = %d" % (pc_i + 4))
                line(1, "frame.npc = %s" % target_expr)
                line(1, "return")
            else:
                dkind, dinstr, drun, _dword = delay
                if dkind == "s":
                    _emit_straight(emitter, dinstr, pending, pc_i + 4,
                                   npc_expr=target_expr)
                else:
                    _emit_mem_inline(emitter, dinstr, drun, pending,
                                     pc_i + 4, target_expr, spec,
                                     install=True)
                pending += 1
                emitter.writeback(1)
                emitter.commit(1, pending)
                line(1, "frame.pc = %s" % target_expr)
                if target_expr == "_nn":
                    line(1, "frame.npc = _nn + 4")
                else:
                    line(1, "frame.npc = %d" % (int(target_expr) + 4))
                line(1, "return")
            term_emitted = True
        else:  # "d": delegated terminator
            _, instr, run, pc_i = item
            name = emitter.add_delegate(run)
            emitter.writeback(1)
            if pending:
                emitter.commit(1, pending)
            line(1, "frame.pc = %d" % pc_i)
            line(1, "frame.npc = %d" % (pc_i + 4))
            line(1, "_p, _n = %s(cpu, frame, %d, %d)" % (
                name, pc_i, pc_i + 4))
            line(1, "frame.pc = _p")
            line(1, "frame.npc = _n")
            line(1, "cpu.stats.instructions += 1")
            line(1, "return")
            term_emitted = True

    scan = end
    if not term_emitted:
        # Ran off the scan bound (or into an undecodable word): park
        # the chain at the first untranslated pc.
        emitter.writeback(1)
        if pending:
            emitter.commit(1, pending)
        emitter.line(1, "frame.pc = %d" % scan)
        emitter.line(1, "frame.npc = %d" % (scan + 4))
        emitter.line(1, "return")

    params = ["cpu", "frame"]
    for index in range(len(emitter.delegates)):
        params.append("_d%d=_D%d" % (index, index))
    header = ["def _jit(%s):" % ", ".join(params)]
    prologue = []
    if emitter.needs_regs:
        prologue.append("    regs = frame.regs")
    if emitter.needs_glob:
        prologue.append("    glob = cpu.globals")
    if emitter.psr_used:
        prologue.append("    _psr = frame.psr")
        prologue.append("    psr = _psr.value")
    if emitter.needs_mem:
        prologue.append("    _mem = cpu.port.memory")
        prologue.append("    _mw = _mem._words")
        prologue.append("    _fe = _mem._full")
        prologue.append("    _cw = _mem.code_watch")
        prologue.append("    _ww = _cw.words if _cw is not None else ()")
    prologue.extend("    " + load for load in emitter.refs.values())
    source = "\n".join(header + prologue + emitter.body) + "\n"

    # Trap machinery and Instruction payloads resolve through the
    # generated function's globals — cold path, so dict lookups are
    # fine there (the hot path only touches locals and default args).
    namespace = {
        "_TS": TrapSignal,
        "_T": Trap,
        "_FC": TrapKind.FUTURE_COMPUTE,
    }
    for index, instr_const in enumerate(emitter.instrs):
        namespace["_i%d" % index] = instr_const
    for index, run in enumerate(emitter.delegates):
        namespace["_D%d" % index] = run
    code = compile(source, "<jit:%#x>" % pc, "exec")
    exec(code, namespace)
    fn = namespace["_jit"]

    jb = JitBlock(fn, total, total, pc, scan, key, source)
    SHARED_BLOCKS.put(key, jb)
    return jb
