"""Hardware task frames (paper Section 3, Figure 2).

A task frame is the register set, PC chain, and PSR belonging to one
*loaded* thread.  APRIL has four task frames; only the one designated by
the frame pointer (FP) is active.  The set of task frames "acts like a
cache on the virtual threads": the run-time system loads and unloads
thread state to and from memory through
:meth:`TaskFrame.save_state` / :meth:`TaskFrame.load_state`.

The SPARC implementation spends two register windows per frame — a user
window and a trap window (Section 5).  We model the trap window as the
``trap_saved_*`` slots where the trap mechanism banks the PC chain and
PSR of the interrupted thread.
"""

from repro.isa import registers
from repro.core.psr import PSR


class TaskFrame:
    """One hardware task frame: 32 registers + PC chain + PSR."""

    __slots__ = (
        "index", "regs", "pc", "npc", "psr",
        "trap_saved_pc", "trap_saved_npc", "trap_saved_psr",
        "thread",
    )

    def __init__(self, index):
        self.index = index
        self.regs = [0] * registers.NUM_FRAME_REGISTERS
        self.pc = 0
        self.npc = 4
        self.psr = PSR()
        # Trap window: where the hardware banks state on a trap.
        self.trap_saved_pc = 0
        self.trap_saved_npc = 0
        self.trap_saved_psr = 0
        #: The run-time Thread currently loaded here (None = free frame).
        self.thread = None

    @property
    def occupied(self):
        """True when a thread is loaded in this frame."""
        return self.thread is not None

    def reset(self):
        """Clear the frame for a fresh thread."""
        for i in range(registers.NUM_FRAME_REGISTERS):
            self.regs[i] = 0
        self.pc = 0
        self.npc = 4
        self.psr = PSR()
        self.thread = None

    def save_state(self):
        """Capture the full architectural state (for thread unloading).

        Returns a dict the run-time system stores with the unloaded
        thread; pass it back to :meth:`load_state` to reload.
        """
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "npc": self.npc,
            "psr": self.psr.value,
        }

    def load_state(self, state):
        """Restore architectural state captured by :meth:`save_state`."""
        self.regs[:] = state["regs"]
        self.pc = state["pc"]
        self.npc = state["npc"]
        self.psr = PSR(state["psr"])

    def enter_trap(self):
        """Bank the PC chain and PSR in the trap window (hardware trap)."""
        self.trap_saved_pc = self.pc
        self.trap_saved_npc = self.npc
        self.trap_saved_psr = self.psr.value

    def return_from_trap(self, retry):
        """Restore banked state; retry re-executes the trapping instruction."""
        self.psr.value = self.trap_saved_psr
        if retry:
            self.pc = self.trap_saved_pc
            self.npc = self.trap_saved_npc
        else:
            self.pc = self.trap_saved_npc
            self.npc = self.trap_saved_npc + 4

    def __repr__(self):
        tid = self.thread.tid if self.thread is not None else None
        return "TaskFrame(%d, pc=%#x, thread=%r)" % (self.index, self.pc, tid)
