"""The APRIL Processor State Register (PSR).

Each task frame has its own 32-bit PSR (paper Section 3, Figure 2).  It
holds the ALU condition codes, the full/empty condition bit set by
non-trapping memory instructions (used by ``Jfull``/``Jempty``), the
trap-enable flag, and a software-visible thread-id field used by the
run-time system.

Bit layout (our choice; the paper leaves it unspecified):

====== ==============================================
Bits   Field
====== ==============================================
23     N — negative
22     Z — zero
21     V — overflow
20     C — carry
19     FE — full/empty condition bit (1 = full)
18     ET — traps enabled
15..0  TID — run-time thread-id tag
====== ==============================================
"""

N_BIT = 1 << 23
Z_BIT = 1 << 22
V_BIT = 1 << 21
C_BIT = 1 << 20
FE_BIT = 1 << 19
ET_BIT = 1 << 18
TID_MASK = 0xFFFF


class PSR:
    """A mutable view over a 32-bit PSR value."""

    __slots__ = ("value",)

    def __init__(self, value=ET_BIT):
        self.value = value

    # -- condition codes ---------------------------------------------------

    def set_ccs(self, n, z, v, c):
        """Set all four ALU condition codes at once."""
        value = self.value & ~(N_BIT | Z_BIT | V_BIT | C_BIT)
        if n:
            value |= N_BIT
        if z:
            value |= Z_BIT
        if v:
            value |= V_BIT
        if c:
            value |= C_BIT
        self.value = value

    @property
    def n(self):
        return bool(self.value & N_BIT)

    @property
    def z(self):
        return bool(self.value & Z_BIT)

    @property
    def v(self):
        return bool(self.value & V_BIT)

    @property
    def c(self):
        return bool(self.value & C_BIT)

    # -- full/empty condition bit -------------------------------------------

    @property
    def fe(self):
        """Full/empty condition bit: True when the last tested word was full."""
        return bool(self.value & FE_BIT)

    @fe.setter
    def fe(self, full):
        if full:
            self.value |= FE_BIT
        else:
            self.value &= ~FE_BIT

    # -- trap enable -----------------------------------------------------------

    @property
    def traps_enabled(self):
        return bool(self.value & ET_BIT)

    @traps_enabled.setter
    def traps_enabled(self, enabled):
        if enabled:
            self.value |= ET_BIT
        else:
            self.value &= ~ET_BIT

    # -- thread id ---------------------------------------------------------------

    @property
    def tid(self):
        """Run-time system thread-id tag (software convention)."""
        return self.value & TID_MASK

    @tid.setter
    def tid(self, tid):
        self.value = (self.value & ~TID_MASK) | (tid & TID_MASK)

    def __repr__(self):
        flags = "".join(
            name if flag else name.lower()
            for name, flag in (
                ("N", self.n), ("Z", self.z), ("V", self.v), ("C", self.c),
                ("F", self.fe), ("E", self.traps_enabled),
            )
        )
        return "PSR(%s tid=%d)" % (flags, self.tid)
