"""The processor <-> cache-controller interface.

The ALEWIFE cache controller answers every data access with one of
three outcomes (paper Sections 2.1 and 5):

* **OK** — the access completed.  ``cycles`` includes any stall the
  controller imposed while *holding* the processor (the MHOLD line:
  local cache misses and the "wait" load/store flavors).  ``fe_full``
  reports the full/empty bit state for the condition bit that
  ``Jfull``/``Jempty`` test (delivered via the coprocessor condition
  bits on SPARC).
* **TRAP** — the access did not complete and the controller trapped the
  processor (the MEXC line): a remote cache miss for a "trap" flavor, or
  a full/empty mismatch for a trapping synchronizing access.
* **HALTED** is never an outcome; a port must always answer.

Any object with this interface can back a processor: the ideal
single-cycle memory used for the Table 3 experiments, the full
cache + directory + network controller, or the Encore-style bus memory.
"""


class MemOutcome:
    """Result of one data access."""

    __slots__ = ("ok", "value", "cycles", "fe_full", "trap_kind", "detail")

    def __init__(self, ok, value=0, cycles=1, fe_full=True, trap_kind=None,
                 detail=None):
        self.ok = ok
        self.value = value        # loaded word (loads only)
        self.cycles = cycles      # total cycles, including hold time
        self.fe_full = fe_full    # full/empty bit observed at the word
        self.trap_kind = trap_kind
        self.detail = detail

    @classmethod
    def hit(cls, value=0, cycles=1, fe_full=True):
        """A completed access."""
        return cls(True, value=value, cycles=cycles, fe_full=fe_full)

    @classmethod
    def trap(cls, kind, cycles=1, detail=None, fe_full=True):
        """An access the controller refused, trapping the processor."""
        return cls(False, cycles=cycles, trap_kind=kind, detail=detail,
                   fe_full=fe_full)

    def __repr__(self):
        if self.ok:
            return "MemOutcome.hit(value=%#x, cycles=%d)" % (self.value, self.cycles)
        return "MemOutcome.trap(%s)" % self.trap_kind


class MemoryPort:
    """Abstract base for processor memory ports.

    Subclasses must implement :meth:`fetch`, :meth:`load`, and
    :meth:`store`; the out-of-band operations default to no-ops that
    subclasses override when they model the mechanism.
    """

    def fetch(self, address):
        """Instruction fetch: return the raw 32-bit word at ``address``.

        Instruction fetches are modeled as always hitting (the paper's
        thrashing interlocks guarantee forward progress; we assume a
        perfect instruction cache, which Section 7's simulator does too
        for the Table 3 runs).
        """
        raise NotImplementedError

    def load(self, address, flavor, context=None):
        """Data load with a Table 2 flavor; returns :class:`MemOutcome`."""
        raise NotImplementedError

    def store(self, address, value, flavor, context=None):
        """Data store with a store flavor; returns :class:`MemOutcome`."""
        raise NotImplementedError

    def flush(self, address, context=None):
        """FLUSH: write back and invalidate the line (Section 3.4)."""
        return MemOutcome.hit(cycles=1)

    def ldio(self, address, context=None):
        """LDIO: memory-mapped I/O read (fence counter, IPI status)."""
        return MemOutcome.hit(value=0, cycles=1)

    def stio(self, address, value, context=None):
        """STIO: memory-mapped I/O write (IPI send, block transfer)."""
        return MemOutcome.hit(cycles=1)
