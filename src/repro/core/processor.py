"""The APRIL processor (paper Sections 3-5).

A pipelined RISC interpreter with the multiprocessing extensions:

* four hardware task frames selected by a frame pointer (FP), plus
  eight global registers;
* coarse-grain multithreading: execution proceeds full-speed within one
  thread until the cache controller or the full/empty logic traps the
  processor, at which point a (cheap) trap handler context-switches;
* hardware future detection: strict compute instructions and memory
  address operands trap when a value has its LSB set;
* a PC chain (PC + nPC) giving a single-cycle branch delay slot;
* the trap mechanism of Section 5: five cycles to squash the pipeline,
  then the handler runs in the trapping thread's task frame.

Cycle accounting: every instruction costs one cycle (plus memory stall
cycles reported by the controller, plus trap/handler overheads).  The
processor keeps per-category cycle counters so the harness can decompose
utilization exactly like Figure 5 of the paper (useful work / switch
overhead / memory stalls / idle).
"""

from collections import deque

from repro.core import alu
from repro.core.fpu import FPU
from repro.core.jit import CodeCache, compile_block
from repro.core.psr import ET_BIT
from repro.core.task_frame import TaskFrame
from repro.core.traps import (
    TRAP_SQUASH_CYCLES,
    Trap,
    TrapAction,
    TrapKind,
    TrapSignal,
    TrapTable,
)
from repro.errors import ProcessorError
from repro.isa import registers
from repro.isa.encoding import DecodeCache
from repro.isa.instructions import (
    LOAD_FLAVORS,
    STORE_FLAVORS,
    Category,
    Opcode,
)
from repro.isa.tags import WORD_MASK
from repro.obs.events import EventKind

#: Cycle-cost categories tracked by :attr:`Processor.stats`.
CATEGORIES = ("useful", "stall", "trap", "switch", "spin", "idle")

#: Longest straight-line run fused into one superblock.
MAX_SUPERBLOCK = 32

#: Superblock visits at one pc before the JIT tier compiles it.
#: Low on purpose: compiled blocks are shared process-wide (see
#: :data:`repro.core.jit.SHARED_BLOCKS`), so compilation is cheap on
#: every machine after the first, and short benchmark runs spend most
#: of their cycles warm only if the ladder promotes quickly.
JIT_THRESHOLD = 4

#: Bound on the per-CPU pc -> ExecEntry predecode cache (LRU).
PREDECODE_CACHE_CAPACITY = 1 << 16

#: Bound on the per-CPU JIT block cache (LRU).
JIT_CACHE_CAPACITY = 2048


class ProcessorStats:
    """Per-processor cycle and event counters.

    ``_total`` mirrors the sum of the six category counters
    incrementally, so :attr:`total_cycles` is an attribute read instead
    of a 6-way ``getattr`` sum; everything that bumps a category (the
    ``_add_*`` table, the fast-path handlers in
    :mod:`repro.core.execops`, the superblock executor) bumps ``_total``
    by the same amount.  The invariant is asserted in the test suite.
    """

    __slots__ = (
        "useful", "stall", "trap", "switch", "spin", "idle", "_total",
        "instructions", "context_switches", "traps_taken", "trap_counts",
        "_charge",
    )

    def __init__(self):
        for name in CATEGORIES:
            setattr(self, name, 0)
        self._total = 0
        self.instructions = 0
        self.context_switches = 0
        self.traps_taken = 0
        self.trap_counts = {}
        # Per-category bound-method dispatch: replaces the
        # getattr/setattr pair in the old Processor.charge.
        self._charge = {
            "useful": self._add_useful,
            "stall": self._add_stall,
            "trap": self._add_trap,
            "switch": self._add_switch,
            "spin": self._add_spin,
            "idle": self._add_idle,
        }

    # -- category adders (the precomputed charge table) --------------------

    def _add_useful(self, cycles):
        self.useful += cycles
        self._total += cycles

    def _add_stall(self, cycles):
        self.stall += cycles
        self._total += cycles

    def _add_trap(self, cycles):
        self.trap += cycles
        self._total += cycles

    def _add_switch(self, cycles):
        self.switch += cycles
        self._total += cycles

    def _add_spin(self, cycles):
        self.spin += cycles
        self._total += cycles

    def _add_idle(self, cycles):
        self.idle += cycles
        self._total += cycles

    @property
    def total_cycles(self):
        return self._total

    def utilization(self):
        """Fraction of cycles doing useful work (the paper's U)."""
        total = self._total
        return self.useful / total if total else 0.0

    def count_trap(self, kind):
        self.traps_taken += 1
        self.trap_counts[kind] = self.trap_counts.get(kind, 0) + 1

    def snapshot(self):
        """Dict snapshot for reporting."""
        data = {name: getattr(self, name) for name in CATEGORIES}
        data.update(
            instructions=self.instructions,
            context_switches=self.context_switches,
            traps_taken=self.traps_taken,
            total_cycles=self.total_cycles,
        )
        return data


class Processor:
    """One APRIL processor.

    Args:
        node_id: index of the ALEWIFE node this processor belongs to.
        port: a :class:`repro.core.memport.MemoryPort`.
        num_frames: hardware task frames (4 in the SPARC implementation).
        decoder: optionally shared :class:`DecodeCache`.
    """

    def __init__(self, node_id=0, port=None, num_frames=registers.NUM_TASK_FRAMES,
                 decoder=None):
        self.node_id = node_id
        self.port = port
        self.frames = [TaskFrame(i) for i in range(num_frames)]
        self.globals = [0] * registers.NUM_GLOBAL_REGISTERS
        self.fp = 0
        self.fpu = FPU()
        self.trap_table = TrapTable()
        self.decoder = decoder if decoder is not None else DecodeCache()
        self.cycles = 0
        self.stats = ProcessorStats()
        self.halted = False
        self.ipi_queue = deque()
        #: Superblock cache: block-start pc -> list of fuse closures, or
        #: ``False`` for "no fusible run here".  Invalidated through
        #: :meth:`invalidate_code` when an attached
        #: :class:`~repro.mem.memory.CodeWatch` sees a store into the
        #: block's pc range.
        self._blocks = {}
        #: pc -> :class:`ExecEntry` translation cache, bounded LRU;
        #: lets :meth:`step` skip the fetch + word-keyed predecode pair
        #: on every revisited pc.  ``_entry_map`` aliases its backing
        #: OrderedDict for the hot path.
        self._entries = CodeCache(PREDECODE_CACHE_CAPACITY)
        self._entry_map = self._entries.data
        #: The JIT tier (see :mod:`repro.core.jit`): pc ->
        #: :class:`JitBlock` (or ``False`` for "not compilable here"),
        #: bounded LRU; ``_jit_map`` aliases its backing OrderedDict.
        self._jit = CodeCache(JIT_CACHE_CAPACITY)
        self._jit_map = self._jit.data
        #: pc -> visit count; promotion to the JIT tier at
        #: :data:`JIT_THRESHOLD` (bounded by the code footprint).
        self._heat = {}
        #: Master switch for the JIT tier (the ``april bench --no-jit``
        #: A/B knob; the machine sets it from its ``jit`` argument).
        self.jit_enabled = True
        self.jit_threshold = JIT_THRESHOLD
        #: Optional :class:`~repro.mem.memory.CodeWatch` this CPU
        #: registers its translated pc ranges with (self-modifying-code
        #: invalidation); see :meth:`attach_code_watch`.
        self._code_watch = None
        #: Count of fused superblocks executed (diagnostics/tests only;
        #: deliberately not part of ``stats.snapshot()``).
        self.superblocks = 0
        #: JIT tier diagnostics (same non-snapshot contract).
        self.jit_compiles = 0
        self.jit_runs = 0
        self.jit_deopts = 0
        self.block_invalidations = 0
        #: Pipeline-squash cost per trap (4 on custom APRIL silicon).
        self.trap_squash_cycles = TRAP_SQUASH_CYCLES
        #: Optional per-instruction callback(cpu, pc, instr) for tracing.
        self.trace_hook = None
        #: Optional per-instruction callback(cpu, pc, instr) for profiling.
        self.profile_hook = None
        #: Optional per-trap callback(cpu, frame, trap) at trap entry.
        self.trap_hook = None
        #: Optional data-access callback(cpu, pc, address, is_load,
        #: outcome) fired after every *successful* load/store (both
        #: interpreters).  The monitor's watchpoints attribute memory
        #: and full/empty-bit transitions to the storing pc through it.
        self.watch_hook = None
        #: Optional :class:`repro.obs.events.EventBus` (None = no-op hooks).
        self.events = None
        #: Optional transaction tracer (see :mod:`repro.obs.txn`).
        self.txn = None
        #: Optional lifetime accountant (see :mod:`repro.obs.lifetime`).
        self.lifetime = None
        #: Opaque slot for the run-time system (scheduler, queues...).
        self.env = None

    # -- register file ----------------------------------------------------

    @property
    def frame(self):
        """The active task frame (designated by FP)."""
        return self.frames[self.fp]

    def read_reg(self, number, frame=None):
        """Read an encoded register (frame-relative or global)."""
        if number == 0:
            return 0
        if number < registers.GLOBAL_BASE:
            return (frame or self.frame).regs[number]
        return self.globals[number - registers.GLOBAL_BASE]

    def write_reg(self, number, value, frame=None):
        """Write an encoded register; writes to r0 are discarded."""
        if number == 0:
            return
        value &= WORD_MASK
        if number < registers.GLOBAL_BASE:
            (frame or self.frame).regs[number] = value
        else:
            self.globals[number - registers.GLOBAL_BASE] = value

    # -- cycle accounting ------------------------------------------------------

    def charge(self, cycles, category="useful"):
        """Advance the local clock, attributing cycles to a category."""
        if cycles < 0:
            raise ProcessorError("negative cycle charge")
        self.cycles += cycles
        self.stats._charge[category](cycles)
        if self.lifetime is not None:
            self.lifetime.on_charge(self, cycles, category)

    # -- IPI delivery (Section 3.4) -----------------------------------------

    def post_ipi(self, message):
        """Queue a preemptive interprocessor interrupt for this processor."""
        self.ipi_queue.append(message)

    # -- main step loop ------------------------------------------------------

    def step(self):
        """Execute one instruction (or take one trap).

        Returns the number of cycles consumed, and advances
        :attr:`cycles` by the same amount.

        Dispatches through the translation cache
        (:meth:`DecodeCache.predecode`): each fetched word resolves to a
        prebuilt :class:`~repro.core.execops.ExecEntry` whose ``run``
        closure has the operand fields already unpacked, replacing the
        old ``_execute`` if-chain walk.  The if-chain survives as
        :meth:`step_reference` so the lockstep harness can run both
        interpreters differentially.
        """
        if self.halted:
            return 0
        start = self.cycles

        frame = self.frames[self.fp]
        if self.ipi_queue and frame.psr.value & ET_BIT:
            message = self.ipi_queue.popleft()
            self._take_trap(frame, Trap(TrapKind.IPI, pc=frame.pc, value=message))
            return self.cycles - start

        pc = frame.pc
        entries = self._entry_map
        entry = entries.get(pc)
        if entry is None:
            try:
                entry = self.decoder.predecode(self.port.fetch(pc))
            except Exception as exc:
                self._take_trap(
                    frame, Trap(TrapKind.ILLEGAL, pc=pc, cause=str(exc)))
                return self.cycles - start
            # Only successful translations are cached, so a faulting pc
            # re-raises (and re-traps) on every execution, like the
            # reference interpreter.
            self._entries.put(pc, entry)
            watch = self._code_watch
            if watch is not None:
                watch.cover(pc, pc + 4)
        else:
            entries.move_to_end(pc)

        if self.trace_hook is not None:
            self.trace_hook(self, pc, entry.instr)
        if self.profile_hook is not None:
            self.profile_hook(self, pc, entry.instr)
        try:
            next_pc, next_npc = entry.run(self, frame, pc, frame.npc)
        except TrapSignal as signal:
            self._take_trap(frame, signal.trap)
            return self.cycles - start

        # The executing frame's PC chain advances; a handler or INCFP may
        # have redirected FP, which only affects the *next* fetch.
        frame.pc = next_pc
        frame.npc = next_npc
        self.stats.instructions += 1
        return self.cycles - start

    def step_reference(self):
        """The original decode + if-chain interpreter step.

        Semantically identical to :meth:`step`; kept as the oracle side
        of the differential lockstep harness
        (``tests/core/test_lockstep.py``) and selected machine-wide by
        ``AlewifeMachine(..., fastpath=False)``.
        """
        if self.halted:
            return 0
        start = self.cycles

        frame = self.frame
        if self.ipi_queue and frame.psr.traps_enabled:
            message = self.ipi_queue.popleft()
            self._take_trap(frame, Trap(TrapKind.IPI, pc=frame.pc, value=message))
            return self.cycles - start

        pc = frame.pc
        try:
            word = self.port.fetch(pc)
            instr = self.decoder.decode(word)
        except Exception as exc:
            self._take_trap(frame, Trap(TrapKind.ILLEGAL, pc=pc, cause=str(exc)))
            return self.cycles - start

        if self.trace_hook is not None:
            self.trace_hook(self, pc, instr)
        if self.profile_hook is not None:
            self.profile_hook(self, pc, instr)
        npc = frame.npc
        try:
            next_pc, next_npc = self._execute(frame, instr, pc, npc)
        except TrapSignal as signal:
            self._take_trap(frame, signal.trap)
            return self.cycles - start

        frame.pc = next_pc
        frame.npc = next_npc
        self.stats.instructions += 1
        return self.cycles - start

    def use_reference_interpreter(self):
        """Route all step() calls through :meth:`step_reference`.

        Shadows the bound method on the instance so every caller —
        run-time system, machine loop, tests — gets the if-chain path
        without per-step branching.
        """
        self.step = self.step_reference

    # -- superblock executor (fast path only) --------------------------------

    def step_block(self, budget):
        """Execute one superblock — JIT, fused closures — or :meth:`step`.

        The tier ladder at a block-start pc: cold pcs run through the
        closure tier (or plain :meth:`step`) while a visit counter
        warms; at :attr:`jit_threshold` the pc is compiled by
        :mod:`repro.core.jit` into one generated Python function that
        executes the whole straight-line run *and* its terminating
        branch/memory instruction with batched accounting.  The closure
        tier (a cached list of ``fuse`` closures — raw logic,
        ``LUI``/``ORIL``, ``NOP`` only) remains the warm-up path and
        the fallback when the compiled block does not fit the slice
        budget.

        ``budget`` bounds the block cost in cycles so the caller's
        event-loop slice is never overshot (every block instruction
        costs exactly one cycle; a delegated memory terminator may
        stall past the horizon, but so would the same instruction under
        :meth:`step` — the reference loop has the same property).
        Falls back to :meth:`step` — same return convention, cycles
        consumed — whenever no block applies or any per-instruction
        hook is attached; only call this with machine-level
        observability dormant.
        """
        if self.halted:
            return 0
        if (self.trace_hook is not None or self.profile_hook is not None
                or self.lifetime is not None):
            return self.step()
        frame = self.frames[self.fp]
        if self.ipi_queue and frame.psr.value & ET_BIT:
            return self.step()
        pc = frame.pc
        if frame.npc != pc + 4:
            # In a branch delay slot (or a redirected PC chain): the
            # block's straight-line npc math would be wrong.
            return self.step()

        if self.jit_enabled:
            jit_map = self._jit_map
            jb = jit_map.get(pc)
            if jb is not None:
                jit_map.move_to_end(pc)
                if jb is not False and jb.cost <= budget:
                    return self._run_jit(jb, frame, budget)
                # Uncompilable pc, or the compiled block overshoots the
                # slice: fall through to the closure tier / step().
            else:
                heat = self._heat.get(pc, 0) + 1
                if heat >= self.jit_threshold:
                    self._heat.pop(pc, None)
                    jb = self._compile_jit(pc)
                    if jb is not None and jb.cost <= budget:
                        return self._run_jit(jb, frame, budget)
                else:
                    self._heat[pc] = heat

        block = self._blocks.get(pc)
        if block is None:
            block = self._build_block(pc)
        if block is False:
            return self.step()
        n = len(block)
        if n > budget:
            return self.step()
        for fuse in block:
            fuse(self, frame)
        self.cycles += n
        stats = self.stats
        stats.useful += n
        stats._total += n
        stats.instructions += n
        self.superblocks += 1
        next_pc = pc + 4 * n
        frame.pc = next_pc
        frame.npc = next_pc + 4
        return n

    def _build_block(self, pc):
        """Scan forward from ``pc`` collecting fusible handlers.

        Caches the result (or ``False`` when the run is too short to be
        worth fusing) under the block-start pc.  Scanning uses
        side-effect-free instruction fetches (perfect I-cache).
        """
        predecode = self.decoder.predecode
        fetch = self.port.fetch
        fuses = []
        scan = pc
        try:
            while len(fuses) < MAX_SUPERBLOCK:
                fuse = predecode(fetch(scan)).fuse
                if fuse is None:
                    break
                fuses.append(fuse)
                scan += 4
        except Exception:
            # Unfetchable/undecodable word ends the block; the slow
            # path will turn it into the proper ILLEGAL trap if the
            # program actually executes into it.
            pass
        block = fuses if len(fuses) >= 2 else False
        self._blocks[pc] = block
        if block is not False:
            watch = self._code_watch
            if watch is not None:
                watch.cover(pc, pc + 4 * len(block))
        return block

    # -- JIT tier (see repro.core.jit) ----------------------------------------

    def _compile_jit(self, pc):
        """Compile the superblock at ``pc``; caches the result.

        Uncompilable pcs cache ``False`` so the hotness counter is paid
        only once per pc; real blocks register their pc range with the
        code watch so self-modifying stores invalidate them.
        """
        jb = compile_block(self, pc)
        self._jit.put(pc, jb if jb is not None else False)
        if jb is not None:
            self.jit_compiles += 1
            watch = self._code_watch
            if watch is not None:
                watch.cover(jb.start, jb.end)
        return jb

    def _run_jit(self, jb, frame, budget):
        """Execute one compiled block; returns cycles consumed.

        The block may stop early — at a tripped future guard, at the
        slow path of an inlined memory access, or at a taken branch —
        so the cycles consumed are whatever the generated code banked,
        not ``jb.cost``.  Traps raised by a guard or a delegated
        instruction are taken here exactly as :meth:`step` takes them
        (the generated code parked the PC chain at the instruction and
        committed the prefix first).  A zero-cycle return cannot
        happen on current codegen (guards raise, delegates charge);
        the deoptimize-to-:meth:`step` branch below is a safety net
        that keeps any future zero-progress block from livelocking the
        event loop.
        """
        start = self.cycles
        try:
            jb.fn(self, frame)
        except TrapSignal as signal:
            self._take_trap(frame, signal.trap)
            self.jit_runs += 1
            return self.cycles - start
        spent = self.cycles - start
        if spent == 0:
            self.jit_deopts += 1
            return self.step()
        self.jit_runs += 1
        return spent

    def attach_code_watch(self, watch):
        """Register with a :class:`~repro.mem.memory.CodeWatch`.

        The watch notifies :meth:`invalidate_code` on every store into
        a word this CPU has translated, keeping all three cache tiers
        (predecode entries, fused closure blocks, JIT blocks) correct
        under self-modifying code.
        """
        self._code_watch = watch
        watch.add_listener(self.invalidate_code)

    def invalidate_code(self, address):
        """Drop every cached translation covering ``address``.

        ``False`` sentinels ("nothing to fuse/compile here") are kept:
        they never execute stale instructions, only route the pc to a
        lower tier, so correctness cannot depend on dropping them.
        """
        word = address & ~3
        self._entries.discard(word)
        jit = self._jit
        jit_map = jit.data
        if jit_map:
            for key in [k for k, jb in jit_map.items()
                        if jb is not False and jb.start <= word < jb.end]:
                # A block can never invalidate *itself* mid-run (inline
                # stores refuse watched words; delegated stores end the
                # block), so dropping the cache entry is sufficient.
                jit.discard(key)
        blocks = self._blocks
        if blocks:
            for key in [k for k, blk in blocks.items()
                        if blk is not False
                        and k <= word < k + 4 * len(blk)]:
                del blocks[key]
                self.block_invalidations += 1

    def translation_counters(self):
        """JSON-ready per-tier translation-cache counters.

        Surfaced by :func:`repro.obs.report.machine_report` next to the
        per-CPU cycle stats; none of this participates in
        ``stats.snapshot()`` (the lockstep harness pins that
        byte-identical across tiers).
        """
        jit = self._jit.counters()
        jit.update(
            blocks=sum(1 for jb in self._jit.data.values()
                       if jb is not False),
            compiles=self.jit_compiles,
            runs=self.jit_runs,
            deopts=self.jit_deopts,
            enabled=self.jit_enabled,
        )
        return {
            "node": self.node_id,
            "predecode": self._entries.counters(),
            "jit": jit,
            "superblocks": {
                "size": len(self._blocks),
                "executed": self.superblocks,
                "invalidations": self.block_invalidations,
            },
        }

    def run(self, max_cycles=None, max_instructions=None):
        """Step until halted or a limit is reached; returns cycles run."""
        start = self.cycles
        executed = 0
        while not self.halted:
            if max_cycles is not None and self.cycles - start >= max_cycles:
                break
            if max_instructions is not None and executed >= max_instructions:
                break
            self.step()
            executed += 1
        return self.cycles - start

    # -- trap mechanism -----------------------------------------------------

    def _take_trap(self, frame, trap):
        """The hardware trap sequence (Section 5): squash, bank state,
        run the handler in the trapping frame, apply its action."""
        self.charge(self.trap_squash_cycles, "trap")
        self.stats.count_trap(trap.kind)
        if self.trap_hook is not None:
            self.trap_hook(self, frame, trap)
        if self.events is not None:
            self.events.emit(
                EventKind.TRAP_ENTER, self.cycles, self.node_id,
                trap=trap.kind.name, pc=trap.pc, frame=frame.index)
        frame.enter_trap()
        handler = self.trap_table.lookup(trap)
        action = handler(self, frame, trap)
        if action is None:
            raise ProcessorError("trap handler returned no action for %r" % trap)
        if self.events is not None:
            self.events.emit(
                EventKind.TRAP_EXIT, self.cycles, self.node_id,
                trap=trap.kind.name, action=action.name, frame=self.fp)
        if self.txn is not None:
            self.txn.trap_action(self.node_id, trap.kind.name, action.name,
                                 self.cycles, self.fp)
        if action is TrapAction.RETRY or action is TrapAction.SWITCHED:
            # PC chain untouched: the trapping instruction re-executes
            # when this frame next runs.
            return
        if action is TrapAction.RESUME:
            frame.pc = frame.trap_saved_npc
            frame.npc = frame.trap_saved_npc + 4
            return
        if action is TrapAction.HALT:
            self.halted = True
            return
        raise ProcessorError("unknown trap action %r" % action)

    # -- execute stage ----------------------------------------------------------

    def _execute(self, frame, instr, pc, npc):
        """Execute one decoded instruction; returns the next PC chain."""
        op = instr.op
        cat = instr.category

        if cat is Category.COMPUTE or cat is Category.LOGIC:
            self._execute_alu(frame, instr, pc)
            self.charge(1)
            return npc, npc + 4

        if cat is Category.LOAD:
            self._execute_load(frame, instr, pc)
            return npc, npc + 4

        if cat is Category.STORE:
            self._execute_store(frame, instr, pc)
            return npc, npc + 4

        if cat is Category.BRANCH:
            self.charge(1)
            if alu.branch_taken(op, frame.psr):
                return npc, pc + 4 * instr.imm
            return npc, npc + 4

        if op is Opcode.CALL:
            self.charge(1)
            self.write_reg(registers.RA, pc + 8, frame)
            return npc, pc + 4 * instr.imm

        if op is Opcode.JMPL:
            self.charge(1)
            target = (self.read_reg(instr.rs1, frame) + instr.imm) & WORD_MASK
            self.write_reg(instr.rd, pc + 8, frame)
            return npc, target

        if cat is Category.FRAME:
            return self._execute_frame_op(frame, instr, npc)

        if cat is Category.SYSTEM:
            return self._execute_system(frame, instr, pc, npc)

        if cat is Category.OOB:
            self._execute_oob(frame, instr)
            return npc, npc + 4

        raise ProcessorError("unimplemented instruction %r" % instr)

    def _alu_operand_b(self, frame, instr):
        if instr.use_imm:
            return instr.imm & WORD_MASK
        return self.read_reg(instr.rs2, frame)

    def _execute_alu(self, frame, instr, pc):
        op = instr.op
        if op is Opcode.LUI:
            self.write_reg(instr.rd, (instr.imm << 14) & WORD_MASK, frame)
            return
        if op is Opcode.ORIL:
            value = self.read_reg(instr.rd, frame) | instr.imm
            self.write_reg(instr.rd, value, frame)
            return
        a = self.read_reg(instr.rs1, frame)
        b = self._alu_operand_b(frame, instr)
        result, (n, z, v, c) = alu.execute(op, a, b, instr=instr, pc=pc)
        frame.psr.set_ccs(n, z, v, c)
        if op is not Opcode.CMP:
            self.write_reg(instr.rd, result, frame)

    def _data_address(self, frame, instr, pc, raw):
        """Compute and validate a data address; trap on future pointers."""
        base = self.read_reg(instr.rs1, frame)
        if not raw and (base & 1):
            raise TrapSignal(Trap(
                TrapKind.FUTURE_ADDRESS, instr=instr, pc=pc, value=base,
            ))
        address = (base + instr.imm) & WORD_MASK
        if address & 3:
            raise TrapSignal(Trap(
                TrapKind.ALIGNMENT, instr=instr, pc=pc, address=address,
            ))
        return address

    def _execute_load(self, frame, instr, pc):
        flavor = LOAD_FLAVORS[instr.op]
        address = self._data_address(frame, instr, pc, flavor.raw)
        outcome = self.port.load(address, flavor, context=self)
        self._finish_access(frame, instr, pc, address, outcome, is_load=True)

    def _execute_store(self, frame, instr, pc):
        flavor = STORE_FLAVORS[instr.op]
        address = self._data_address(frame, instr, pc, flavor.raw)
        value = self.read_reg(instr.rd, frame)
        outcome = self.port.store(address, value, flavor, context=self)
        self._finish_access(frame, instr, pc, address, outcome, is_load=False)

    def _finish_access(self, frame, instr, pc, address, outcome, is_load):
        if not outcome.ok:
            # The controller charged us for the attempt before trapping.
            self.charge(max(outcome.cycles - 1, 0), "stall")
            self.charge(1)
            raise TrapSignal(Trap(
                outcome.trap_kind, instr=instr, pc=pc, address=address,
                cause=outcome.detail,
            ))
        self.charge(1)
        if outcome.cycles > 1:
            self.charge(outcome.cycles - 1, "stall")
        frame.psr.fe = outcome.fe_full
        if is_load:
            self.write_reg(instr.rd, outcome.value, frame)
        if self.watch_hook is not None:
            self.watch_hook(self, pc, address, is_load, outcome)

    def _execute_frame_op(self, frame, instr, npc):
        op = instr.op
        self.charge(1)
        count = len(self.frames)
        if op is Opcode.INCFP:
            self.fp = (self.fp + 1) % count
        elif op is Opcode.DECFP:
            self.fp = (self.fp - 1) % count
        elif op is Opcode.RDFP:
            self.write_reg(instr.rd, self.fp, frame)
        elif op is Opcode.STFP:
            self.fp = self.read_reg(instr.rs1, frame) % count
        return npc, npc + 4

    def _execute_system(self, frame, instr, pc, npc):
        op = instr.op
        if op is Opcode.NOP:
            self.charge(1)
            return npc, npc + 4
        if op is Opcode.HALT:
            self.charge(1)
            self.halted = True
            return pc, npc  # PC frozen at the halt
        if op is Opcode.TRAP:
            self.charge(1)
            raise TrapSignal(Trap(
                TrapKind.SOFTWARE, vector=instr.imm, instr=instr, pc=pc,
            ))
        if op is Opcode.RDPSR:
            self.charge(1)
            self.write_reg(instr.rd, frame.psr.value, frame)
            return npc, npc + 4
        if op is Opcode.WRPSR:
            self.charge(1)
            frame.psr.value = self.read_reg(instr.rs1, frame)
            return npc, npc + 4
        if op is Opcode.RETT:
            self.charge(1)
            frame.return_from_trap(retry=True)
            return frame.pc, frame.npc
        raise ProcessorError("unimplemented system op %r" % instr)

    def _execute_oob(self, frame, instr):
        op = instr.op
        base = self.read_reg(instr.rs1, frame)
        address = (base + instr.imm) & WORD_MASK
        if op is Opcode.FLUSH:
            outcome = self.port.flush(address, context=self)
            self.charge(outcome.cycles)
        elif op is Opcode.LDIO:
            outcome = self.port.ldio(address, context=self)
            self.charge(outcome.cycles)
            self.write_reg(instr.rd, outcome.value, frame)
        elif op is Opcode.STIO:
            value = self.read_reg(instr.rd, frame)
            outcome = self.port.stio(address, value, context=self)
            self.charge(outcome.cycles)
        else:
            raise ProcessorError("unimplemented OOB op %r" % instr)

    # -- occupancy helpers used by the run-time system ------------------------

    def occupied_frames(self):
        """Frames currently holding loaded threads."""
        return [f for f in self.frames if f.occupied]

    def free_frame(self):
        """A frame with no loaded thread, or ``None``."""
        for f in self.frames:
            if not f.occupied:
                return f
        return None

    def __repr__(self):
        return "Processor(node=%d, fp=%d, cycles=%d, halted=%s)" % (
            self.node_id, self.fp, self.cycles, self.halted,
        )
