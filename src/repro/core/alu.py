"""The APRIL ALU: tagged arithmetic with future detection.

Strict compute instructions (``add``, ``sub``, ``mul``, ``div``, ``rem``,
``cmp``) operate on fixnums and *trap when an operand has its least
significant bit set* — i.e. when it is a future pointer (paper Sections
4 and 5: "a strict operation ... applied to one or more future pointers
is flagged with a modified non-fixnum trap, that is triggered if an
operand has its lowest bit set").

Because fixnums are ``n << 2``, addition and subtraction work directly
on the tagged representation; multiply/divide detag and retag.

Raw logic instructions (``and``/``or``/``xor``/shifts/``addr``/``subr``)
never trap; the run-time system uses them to build and take apart tagged
words.

All operations set the four SPARC-style condition codes N/Z/V/C as a
side effect (paper Section 3).
"""

from repro.core.traps import Trap, TrapKind, TrapSignal
from repro.isa.instructions import Opcode
from repro.isa.tags import WORD_MASK


def _signed(word):
    """Interpret a 32-bit word as a signed integer."""
    return word - (1 << 32) if word & 0x80000000 else word


def _ccs_for(result, a=0, b=0, carry=False, overflow=False):
    """(n, z, v, c) condition codes for a 32-bit result."""
    return (
        bool(result & 0x80000000),
        result == 0,
        overflow,
        carry,
    )


def _add(a, b):
    total = a + b
    result = total & WORD_MASK
    carry = total > WORD_MASK
    overflow = ((a ^ result) & (b ^ result) & 0x80000000) != 0
    return result, _ccs_for(result, carry=carry, overflow=overflow)


def _sub(a, b):
    total = a - b
    result = total & WORD_MASK
    borrow = total < 0
    overflow = ((a ^ b) & (a ^ result) & 0x80000000) != 0
    return result, _ccs_for(result, carry=borrow, overflow=overflow)


def _check_strict(op, a, b, instr, pc):
    """Raise the future-detection trap if either operand has bit 0 set."""
    if (a | b) & 1:
        offender = a if (a & 1) else b
        raise TrapSignal(Trap(
            TrapKind.FUTURE_COMPUTE, instr=instr, pc=pc, value=offender,
            cause=op.name,
        ))


def execute(op, a, b, instr=None, pc=0):
    """Execute one ALU operation.

    Args:
        op: the :class:`Opcode`.
        a: first source operand (32-bit word).
        b: second source operand (32-bit word; already the immediate for
           I-format instructions, sign-extended and masked by the caller).
        instr, pc: context for trap reporting.

    Returns:
        ``(result, (n, z, v, c))``.  ``cmp`` returns the discarded
        difference as its result; the processor ignores it.

    Raises:
        TrapSignal: future-detection trap for strict ops on futures, or
            a software-visible divide-by-zero (reported as ILLEGAL).
    """
    if op is Opcode.ADD:
        _check_strict(op, a, b, instr, pc)
        return _add(a, b)
    if op is Opcode.SUB or op is Opcode.CMP:
        _check_strict(op, a, b, instr, pc)
        return _sub(a, b)
    if op is Opcode.MUL:
        _check_strict(op, a, b, instr, pc)
        # Fixnum multiply: (a >> 2) * b keeps one factor tagged.
        product = (_signed(a) >> 2) * _signed(b)
        result = product & WORD_MASK
        overflow = not (-(1 << 31) <= product < (1 << 31))
        return result, _ccs_for(result, overflow=overflow)
    if op is Opcode.DIV or op is Opcode.REM:
        _check_strict(op, a, b, instr, pc)
        if b == 0:
            raise TrapSignal(Trap(
                TrapKind.ILLEGAL, instr=instr, pc=pc, cause="divide by zero",
            ))
        # Truncating division on detagged values, retagged afterwards.
        x, y = _signed(a) >> 2, _signed(b) >> 2
        quotient = int(x / y) if y else 0
        if op is Opcode.DIV:
            result = (quotient << 2) & WORD_MASK
        else:
            result = ((x - quotient * y) << 2) & WORD_MASK
        return result, _ccs_for(result)

    # -- raw logic: no strictness checks ---------------------------------
    if op is Opcode.AND:
        result = a & b
    elif op is Opcode.OR:
        result = a | b
    elif op is Opcode.XOR:
        result = (a ^ b) & WORD_MASK
    elif op is Opcode.ANDN:
        result = a & ~b & WORD_MASK
    elif op is Opcode.SLL:
        result = (a << (b & 31)) & WORD_MASK
    elif op is Opcode.SRL:
        result = (a & WORD_MASK) >> (b & 31)
    elif op is Opcode.SRA:
        result = (_signed(a) >> (b & 31)) & WORD_MASK
    elif op is Opcode.ADDR:
        return _add(a, b)
    elif op is Opcode.SUBR:
        return _sub(a, b)
    else:
        raise ValueError("not an ALU opcode: %r" % op)
    return result, _ccs_for(result)


def branch_taken(op, psr):
    """Evaluate a conditional branch against the PSR condition codes.

    Implements the SPARC integer condition codes plus APRIL's
    ``Jfull``/``Jempty`` on the full/empty condition bit (Section 4).
    """
    n, z, v, c = psr.n, psr.z, psr.v, psr.c
    if op is Opcode.BA:
        return True
    if op is Opcode.BN:
        return False
    if op is Opcode.BE:
        return z
    if op is Opcode.BNE:
        return not z
    if op is Opcode.BL:
        return n != v
    if op is Opcode.BLE:
        return z or (n != v)
    if op is Opcode.BG:
        return not (z or (n != v))
    if op is Opcode.BGE:
        return n == v
    if op is Opcode.BNEG:
        return n
    if op is Opcode.BPOS:
        return not n
    if op is Opcode.BCS:
        return c
    if op is Opcode.BCC:
        return not c
    if op is Opcode.BVS:
        return v
    if op is Opcode.BVC:
        return not v
    if op is Opcode.JFULL:
        return psr.fe
    if op is Opcode.JEMPTY:
        return not psr.fe
    raise ValueError("not a branch opcode: %r" % op)
