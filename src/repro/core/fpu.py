"""The per-context floating-point register file (paper Section 5).

The SPARC FPU has a single 32-word register file and no register
windows.  "To retain rapid context switching ability ... we have divided
the floating point register file into four sets of eight registers.
This is achieved by modifying floating-point instructions in a context
dependent fashion as they are loaded into the FPU and by maintaining
four different sets of condition bits."

This module models exactly that: a 32-entry physical file, with FP
register ``f0..f7`` of context *k* mapping to physical entry
``8*k + n``, and four independent FP condition-code sets selected by the
current frame pointer (the externally visible CWP of Section 5).

The integer benchmarks of the paper never touch the FPU, but the
mechanism is part of the architecture, so it is implemented and tested;
``examples/full_empty_tour.py`` exercises it.
"""

from repro.errors import ProcessorError
from repro.isa.registers import NUM_TASK_FRAMES

REGS_PER_CONTEXT = 8
PHYSICAL_REGS = REGS_PER_CONTEXT * NUM_TASK_FRAMES


class FPU:
    """Four-context windowed view over one physical FP register file."""

    def __init__(self):
        self._file = [0.0] * PHYSICAL_REGS
        self._fcc = [False] * NUM_TASK_FRAMES  # FP condition bit per context

    def _physical(self, context, reg):
        if not 0 <= context < NUM_TASK_FRAMES:
            raise ProcessorError("bad FPU context: %d" % context)
        if not 0 <= reg < REGS_PER_CONTEXT:
            raise ProcessorError(
                "FP register f%d out of per-context range (0..%d)"
                % (reg, REGS_PER_CONTEXT - 1)
            )
        return context * REGS_PER_CONTEXT + reg

    def read(self, context, reg):
        """Read f<reg> as seen by the given context."""
        return self._file[self._physical(context, reg)]

    def write(self, context, reg, value):
        """Write f<reg> as seen by the given context."""
        self._file[self._physical(context, reg)] = float(value)

    def op(self, context, name, rs1, rs2, rd):
        """Execute one FP operation within a context's window.

        Supported: ``fadd``, ``fsub``, ``fmul``, ``fdiv``, ``fcmp``
        (which sets the context's FP condition bit to "rs1 < rs2").
        """
        a = self.read(context, rs1)
        b = self.read(context, rs2)
        if name == "fadd":
            self.write(context, rd, a + b)
        elif name == "fsub":
            self.write(context, rd, a - b)
        elif name == "fmul":
            self.write(context, rd, a * b)
        elif name == "fdiv":
            if b == 0.0:
                raise ProcessorError("FP divide by zero")
            self.write(context, rd, a / b)
        elif name == "fcmp":
            self._fcc[context] = a < b
        else:
            raise ProcessorError("unknown FP op: %s" % name)

    def condition(self, context):
        """The FP condition bit of a context (set by ``fcmp``)."""
        return self._fcc[context]

    def context_registers(self, context):
        """Snapshot of one context's eight registers (for unloading)."""
        base = context * REGS_PER_CONTEXT
        return list(self._file[base:base + REGS_PER_CONTEXT])

    def load_context(self, context, values):
        """Restore one context's registers (for thread loading)."""
        if len(values) != REGS_PER_CONTEXT:
            raise ProcessorError(
                "FPU context restore needs %d values" % REGS_PER_CONTEXT
            )
        base = context * REGS_PER_CONTEXT
        self._file[base:base + REGS_PER_CONTEXT] = [float(v) for v in values]
