"""The ``april`` command-line interface.

Subcommands::

    april run PROGRAM.mult [-p CPUS] [--mode eager|lazy|sequential]
                           [--encore] [--coherent] [--args 10 ...]
                           [--json] [--profile] [--timeline]
                           [--events out.json] [--txn out.json] [--window N]
                           [--watchdog] [--watchdog-interval N]
                           [--postmortem out.json]
                           # --watchdog: stop a hung run with a typed
                           # HangDetected post-mortem (wait-for graph,
                           # last events, disassembly) instead of
                           # burning --max-cycles; exit code 3
    april monitor PROGRAM.mult [-p CPUS] [--mode ...] [--coherent]
                               [--args 10 ...] [--script FILE]
                               # interactive machine debugger: step,
                               # breakpoints, full/empty watchpoints,
                               # pokes, thread table, disassembly
    april explain PROGRAM.mult [run options] [--json]
                               # why is speedup sublinear: per-thread cycle
                               # accounting + ranked critical-path report
    april report PROGRAM.mult [run options] [--histograms]
                              [--threads] [--critical-path]
                              [--out report.json]
    april bench [--out BENCH_simulator.json] [--check baseline] [--quick]
                [--jobs N]
    april asm PROGRAM.s          # assemble + list
    april table3 [--programs fib,factor] [--systems APRIL,Apr-lazy]
                 [--jobs N] [--no-cache] [--force]
    april speedup [--programs fib] [--system Apr-lazy] [--cpus 1 2 4]
                  [--jobs N] [--no-cache] [--force]
    april sweep SPEC.json [--jobs N] [--no-cache] [--force] [--out FILE]
    april figure5
    april serve [--socket PATH] [--tcp HOST:PORT] [--workers N]
                [--queue-limit N] [--rate R] [--burst N] [--timeout S]
                [--cache-dir DIR] [--no-cache] [--hot-entries N]
                [--drain-timeout S] [--metrics-out FILE]
                [--trace-ring N] [--slow-log FILE] [--slow-ms N]
                [--trace-perfetto FILE]
                # long-running sweep service: NDJSON job specs over a
                # unix socket, single-flight dedupe, shared result
                # cache, backpressure + rate limiting, graceful
                # SIGTERM drain, `metrics` op with p50/p90/p99,
                # per-request span tracing served by the `trace` op,
                # NDJSON slow-request log, Perfetto server timeline
    april loadgen [--socket PATH] [--tcp HOST:PORT] [--rate R]
                  [--requests N] [--connections N] [--hot-ratio F]
                  [--seed N] [--dedupe-burst N] [--json] [--out FILE]
                  # spray a hot/cold job mix at a running server and
                  # report achieved RPS, hit/dedupe ratios, latency
    april top [--socket PATH] [--tcp HOST:PORT] [--interval S]
              [--count N] [--once] [--plain]
              # live dashboard over `metrics` + `trace`: req/s,
              # hit/dedupe ratios, queue depth, p50/p99 by served
              # axis, slowest in-flight and completed requests

The grid commands (``table3``, ``speedup``, ``sweep``) run through the
:mod:`repro.exp` experiment engine: ``--jobs N`` fans cells out to N
worker processes, finished cells land in the content-addressed cache
under ``results/cache/`` (interrupted sweeps resume for free),
``--no-cache`` bypasses it, and ``--force`` re-executes and refreshes
cached cells.
"""

import argparse
import json
import sys

from repro.errors import HangDetected
from repro.harness.figure5 import render_report
from repro.harness.table3 import SYSTEMS, render_table3, run_table3
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.lang.run import run_mult
from repro.machine.config import MachineConfig
from repro.obs import Observation


def _build_config(args):
    config = MachineConfig(
        num_processors=args.processors,
        memory_mode="coherent" if args.coherent else "ideal",
    )
    if args.encore:
        from repro.baselines.encore import encore_config
        config = encore_config(args.processors)
    return config


def _build_observation(args, force=False):
    """An Observation when any observability flag asks for one."""
    profile = getattr(args, "profile", False)
    events = getattr(args, "events", None)
    timeline = getattr(args, "timeline", False)
    txn = getattr(args, "txn", None)
    histograms = getattr(args, "histograms", False)
    threads = (getattr(args, "threads", False)
               or getattr(args, "critical_path", False))
    if not (force or profile or events or timeline or txn or histograms
            or threads):
        return None
    return Observation(
        events=bool(events) or force,
        window=args.window,
        profile=profile or force,
        txn=bool(txn) or histograms or force,
        threads=threads,
    )


def _build_watchdog(args):
    """A Watchdog (with its flight recorder) when --watchdog asked."""
    if not getattr(args, "watchdog", False):
        return None
    from repro.obs.flight import Watchdog
    return Watchdog(interval=getattr(args, "watchdog_interval", 2048))


def _run_observed(args, force_obs=False):
    with open(args.program) as handle:
        source = handle.read()
    obs = _build_observation(args, force=force_obs)
    result = run_mult(source, mode=args.mode, args=tuple(args.args),
                      software_checks=args.encore,
                      config=_build_config(args), observe=obs,
                      watchdog=_build_watchdog(args))
    return result, obs


def _report_hang(exc, args):
    """Render a HangDetected post-mortem; exit code 3 distinguishes a
    detected hang from both success (0) and ordinary errors (1/2)."""
    print(exc.render())
    out = getattr(args, "postmortem", None)
    if out:
        try:
            with open(out, "w") as handle:
                json.dump(exc.postmortem, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as err:
            print("error: cannot write %s: %s" % (out, err.strerror),
                  file=sys.stderr)
            return 1
        print("wrote post-mortem JSON to %s" % out, file=sys.stderr)
    return 3


def _cmd_run(args):
    try:
        result, obs = _run_observed(args)
    except HangDetected as exc:
        return _report_hang(exc, args)

    if args.json:
        payload = {
            "result": result.value,
            "cycles": result.cycles,
            "output": result.output,
            "stats": result.stats.to_dict(),
        }
        if obs is not None:
            payload.update(obs.to_dict())
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in result.output:
            print(line)
        print("result:", result.value)
        print("cycles: %d   utilization: %.1f%%   futures: %d   switches: %d"
              % (result.cycles, 100 * result.stats.utilization,
                 result.stats.futures_created, result.stats.context_switches))
        if obs is not None and obs.profiler is not None:
            print()
            print(obs.profiler.report(top=args.top))
        if obs is not None and args.timeline and obs.sampler is not None:
            print()
            print(obs.sampler.render())

    return _write_trace(obs, args) or _write_txn(obs, args)


def _write_trace(obs, args):
    """Write the Perfetto trace if requested; clean error, not a traceback."""
    if obs is None or not args.events:
        return 0
    try:
        path = obs.write_perfetto(args.events)
    except OSError as exc:
        print("error: cannot write %s: %s" % (args.events, exc.strerror),
              file=sys.stderr)
        return 1
    print("wrote Perfetto trace to %s (open in ui.perfetto.dev)" % path,
          file=sys.stderr)
    return 0


def _write_txn(obs, args):
    """Write the coherence-transaction JSON if requested."""
    txn = getattr(args, "txn", None)
    if obs is None or not txn:
        return 0
    try:
        path = obs.write_txn(txn)
    except OSError as exc:
        print("error: cannot write %s: %s" % (txn, exc.strerror),
              file=sys.stderr)
        return 1
    summary = obs.txn.summary()
    print("wrote %d coherence transactions to %s"
          % (summary["recorded"], path), file=sys.stderr)
    return 0


def _cmd_explain(args):
    """Why is speedup sublinear: accounting tables + critical path."""
    from repro.obs import ConservationError

    with open(args.program) as handle:
        source = handle.read()
    obs = Observation(
        events=bool(args.events),
        window=args.window if args.events else 0,
        txn=bool(args.txn) or args.coherent,
        threads=True,
    )
    result = run_mult(source, mode=args.mode, args=tuple(args.args),
                      software_checks=args.encore,
                      config=_build_config(args), observe=obs)
    try:
        data = obs.explain(top=args.top, why_top=args.top)
        obs.lifetime.check()
    except ConservationError as exc:
        print("error: cycle conservation violated: %s" % exc,
              file=sys.stderr)
        return 1

    if args.json:
        data["result"] = result.value
        data["cycles"] = result.cycles
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(obs.explain_render(top=args.top))
    return _write_trace(obs, args) or _write_txn(obs, args)


def _cmd_report(args):
    result, obs = _run_observed(args, force_obs=True)
    report = obs.report(result=result, top=args.top)
    if args.histograms and "histograms" not in report:
        report["histograms"] = obs.hist.to_dict()
    if getattr(args, "critical_path", False):
        report["critical_path"] = obs.explain(
            top=args.top, why_top=args.top)["critical_path"]
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            print("error: cannot write %s: %s" % (args.out, exc.strerror),
                  file=sys.stderr)
            return 1
        print("wrote report to %s" % args.out, file=sys.stderr)
    else:
        print(text)
    return _write_trace(obs, args) or _write_txn(obs, args)


def _build_cache(args):
    """The result cache the sweep flags ask for (None = bypass)."""
    if getattr(args, "no_cache", False):
        return None
    from repro.exp.cache import default_cache
    return default_cache()


def _split_names(values):
    """Flatten ``--programs fib,queens factor`` style lists."""
    names = []
    for value in values or ():
        names.extend(part for part in value.split(",") if part)
    return names


def _print_sweep_trailer(summary, failures):
    """Summary + failed cells on stderr (stdout stays byte-stable)."""
    from repro.harness.reporting import sweep_summary_line
    print(sweep_summary_line(summary), file=sys.stderr)
    for outcome in failures:
        print("failed: %s: %s: %s"
              % (outcome.job.label, outcome.kind, outcome.message),
              file=sys.stderr)


def _cmd_bench(args):
    from repro.harness.bench import check_baseline, run_bench, write_bench
    payload = run_bench(quick=args.quick, pool_size=args.jobs,
                        fastpath=not args.no_fastpath,
                        jit=not args.no_jit)
    path = write_bench(payload, args.out)
    print("wrote benchmark results to %s" % path, file=sys.stderr)
    print("cycles/sec: %.0f   overhead: %.2fx   traced: %.2fx"
          % (payload["cycles_per_sec"], payload["overhead_ratio"],
             payload["traced_ratio"]), file=sys.stderr)
    if args.check:
        problems, notes = check_baseline(payload, args.check)
        for note in notes:
            print("note: %s" % note, file=sys.stderr)
        if problems:
            for problem in problems:
                print("FAIL: %s" % problem, file=sys.stderr)
            return 1
        print("baseline check passed", file=sys.stderr)
    return 0


def _cmd_monitor(args):
    """The interactive machine debugger (``april monitor``)."""
    from repro.lang.run import build_mult_machine
    from repro.obs.monitor import Monitor

    with open(args.program) as handle:
        source = handle.read()
    machine, compiled = build_mult_machine(
        source, mode=args.mode, software_checks=args.encore,
        config=_build_config(args))
    monitor = Monitor(machine, entry=compiled.entry_label("main"),
                      args=tuple(args.args), echo=bool(args.script),
                      max_cycles=args.max_cycles)
    if args.script:
        with open(args.script) as handle:
            lines = handle.read().splitlines()
        monitor.repl(lines)
    else:
        monitor.repl()
    return 0


def _cmd_asm(args):
    with open(args.program) as handle:
        program = assemble(handle.read())
    print(disassemble(program.words, base=program.base,
                      labels=program.labels))
    return 0


def _cmd_table3(args):
    from repro import workloads
    programs = _split_names(args.programs) or None
    systems = tuple(_split_names(args.systems)) or SYSTEMS
    for name in programs or ():
        if name not in workloads.BY_NAME:
            print("error: unknown program %r (have: %s)"
                  % (name, ", ".join(workloads.BY_NAME)), file=sys.stderr)
            return 2
    for system in systems:
        if system not in SYSTEMS:
            print("error: unknown system %r (have: %s)"
                  % (system, ", ".join(SYSTEMS)), file=sys.stderr)
            return 2
    result = run_table3(program_names=programs, systems=systems,
                        pool_size=args.jobs, cache=_build_cache(args),
                        force=args.force, timeout_s=args.timeout)
    print(render_table3(result))
    _print_sweep_trailer(result.sweep.timing_summary(), result.failures)
    return 1 if result.failures else 0


def _cmd_speedup(args):
    from repro.harness.speedup import render_speedup, run_speedup
    programs = _split_names(args.programs) or None
    curves, sweep = run_speedup(program_names=programs, system=args.system,
                                cpus=tuple(args.cpus), pool_size=args.jobs,
                                cache=_build_cache(args), force=args.force,
                                timeout_s=args.timeout)
    print(render_speedup(curves))
    _print_sweep_trailer(sweep.timing_summary(), sweep.failures)
    return 1 if sweep.failures else 0


def _cmd_sweep(args):
    from repro.errors import SweepSpecError
    from repro.exp.runner import run_jobs
    from repro.exp.spec import (
        expand_spec, load_spec, merged_output, render_output,
    )
    try:
        spec = load_spec(args.spec)
        jobs = expand_spec(spec)
    except SweepSpecError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    sweep = run_jobs(jobs, pool_size=args.jobs, cache=_build_cache(args),
                     force=args.force, timeout_s=args.timeout)
    text = render_output(merged_output(spec, sweep))
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            print("error: cannot write %s: %s" % (args.out, exc.strerror),
                  file=sys.stderr)
            return 1
        print("wrote sweep results to %s" % args.out, file=sys.stderr)
    else:
        sys.stdout.write(text)
    _print_sweep_trailer(sweep.timing_summary(), sweep.failures)
    return 1 if sweep.failures else 0


def _cmd_figure5(args):
    print(render_report())
    return 0


def _cmd_serve(args):
    """The long-running sweep service (``april serve``)."""
    import asyncio
    import signal

    from repro.errors import ServeError
    from repro.serve.server import build_server

    async def _main():
        try:
            server = build_server(args)
        except ServeError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        await server.start()
        where = []
        if args.socket:
            where.append("unix:%s" % args.socket)
        if args.tcp:
            where.append("tcp:%s" % args.tcp)
        print("april serve: listening on %s (%d workers, queue limit %d)"
              % (", ".join(where), args.workers, args.queue_limit),
              file=sys.stderr)

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("april serve: draining...", file=sys.stderr)
        leftover = await server.stop(drain_timeout_s=args.drain_timeout)
        snapshot = server.metrics_snapshot()
        if args.trace_perfetto:
            trace = server.trace_perfetto()
            if trace is None:
                print("note: --trace-perfetto ignored (tracing disabled)",
                      file=sys.stderr)
            else:
                try:
                    with open(args.trace_perfetto, "w") as handle:
                        json.dump(trace, handle, sort_keys=True)
                        handle.write("\n")
                except OSError as exc:
                    print("error: cannot write %s: %s"
                          % (args.trace_perfetto, exc.strerror),
                          file=sys.stderr)
                    return 1
                print("wrote server timeline to %s (open in "
                      "ui.perfetto.dev)" % args.trace_perfetto,
                      file=sys.stderr)
        if args.metrics_out:
            try:
                with open(args.metrics_out, "w") as handle:
                    json.dump(snapshot, handle, indent=2, sort_keys=True)
                    handle.write("\n")
            except OSError as exc:
                print("error: cannot write %s: %s"
                      % (args.metrics_out, exc.strerror), file=sys.stderr)
                return 1
            print("wrote final metrics to %s" % args.metrics_out,
                  file=sys.stderr)
        counters = snapshot["counters"]
        print("april serve: drained (%d abandoned): %d requests, "
              "%d executed, %d cache hits, %d deduped, %d failed"
              % (leftover, counters["requests"], counters["executed"],
                 counters["cache_hits"], counters["deduped"],
                 counters["failed"]), file=sys.stderr)
        return 0

    return asyncio.run(_main())


def _cmd_loadgen(args):
    """The traffic harness (``april loadgen``)."""
    import asyncio

    from repro.serve.loadgen import render_report as render_loadgen
    from repro.serve.loadgen import run_loadgen

    host = port = None
    socket_path = args.socket
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            print("error: --tcp wants HOST:PORT, got %r" % args.tcp,
                  file=sys.stderr)
            return 2
        socket_path = None

    try:
        report = asyncio.run(run_loadgen(
            socket_path=socket_path, host=host, port=port,
            rate=args.rate, requests=args.requests,
            connections=args.connections, hot_ratio=args.hot_ratio,
            seed=args.seed, nonce=args.nonce, program=args.program,
            burst=args.dedupe_burst))
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        print("error: cannot reach server: %s" % exc, file=sys.stderr)
        return 1

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            print("error: cannot write %s: %s" % (args.out, exc.strerror),
                  file=sys.stderr)
            return 1
        print("wrote loadgen report to %s" % args.out, file=sys.stderr)
    if args.json and not args.out:
        print(text)
    else:
        print(render_loadgen(report))
    return 0 if report["statuses"]["error"] == 0 else 1


def _cmd_top(args):
    """The live dashboard (``april top``)."""
    import asyncio

    from repro.serve.top import run_top

    host = port = None
    socket_path = args.socket
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            print("error: --tcp wants HOST:PORT, got %r" % args.tcp,
                  file=sys.stderr)
            return 2
        socket_path = None

    count = 1 if args.once else args.count
    plain = args.plain or args.once
    try:
        frames = asyncio.run(run_top(
            socket_path=socket_path, host=host, port=port,
            interval_s=args.interval, count=count, plain=plain))
    except KeyboardInterrupt:
        return 0
    return 0 if frames else 1


def _add_machine_options(cmd):
    cmd.add_argument("program")
    cmd.add_argument("-p", "--processors", type=int, default=1)
    cmd.add_argument("--mode", default="eager",
                     choices=("eager", "lazy", "sequential"))
    cmd.add_argument("--encore", action="store_true",
                     help="Encore Multimax baseline configuration")
    cmd.add_argument("--coherent", action="store_true",
                     help="full caches + directory + network")
    cmd.add_argument("--args", type=int, nargs="*", default=[],
                     help="fixnum arguments passed to (main ...)")
    cmd.add_argument("--events", metavar="FILE",
                     help="write a Perfetto/Chrome trace JSON of the run")
    cmd.add_argument("--txn", metavar="FILE",
                     help="write every coherence transaction (spans, "
                          "latency histograms, anomalies) as JSON")
    cmd.add_argument("--window", type=int, default=4096,
                     help="utilization sampler window in cycles")
    cmd.add_argument("--top", type=int, default=20,
                     help="profile entries to show/emit")


def _add_sweep_options(cmd):
    cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for the cell grid (default 1 "
                          "= run inline; results are byte-identical)")
    cmd.add_argument("--no-cache", action="store_true",
                     help="bypass the content-addressed result cache")
    cmd.add_argument("--force", action="store_true",
                     help="re-execute cells even when cached (and refresh "
                          "the cache)")
    cmd.add_argument("--timeout", type=int, metavar="SECONDS",
                     help="per-cell wall-clock limit (failed cell, "
                          "bounded retry, sweep continues)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="april",
        description="APRIL (ISCA 1990) reproduction: simulate Mul-T "
                    "programs on a coarse-grain multithreaded machine.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="compile and run a Mul-T program")
    _add_machine_options(run_cmd)
    run_cmd.add_argument("--json", action="store_true",
                         help="machine-readable result on stdout")
    run_cmd.add_argument("--profile", action="store_true",
                         help="hot-path profile with source attribution")
    run_cmd.add_argument("--timeline", action="store_true",
                         help="per-node utilization timeline")
    run_cmd.add_argument("--watchdog", action="store_true",
                         help="attach the hang watchdog + flight recorder: "
                              "stop deadlock/livelock with a post-mortem "
                              "(exit code 3) instead of burning cycles")
    run_cmd.add_argument("--watchdog-interval", type=int, default=2048,
                         metavar="N", help="cycles between watchdog checks "
                                           "(default 2048)")
    run_cmd.add_argument("--postmortem", metavar="FILE",
                         help="with --watchdog: also write the post-mortem "
                              "as JSON on a detected hang")
    run_cmd.set_defaults(func=_cmd_run)

    mon_cmd = sub.add_parser(
        "monitor", help="interactive machine debugger: step, breakpoints, "
                        "full/empty watchpoints, pokes, disassembly")
    mon_cmd.add_argument("program")
    mon_cmd.add_argument("-p", "--processors", type=int, default=1)
    mon_cmd.add_argument("--mode", default="eager",
                         choices=("eager", "lazy", "sequential"))
    mon_cmd.add_argument("--encore", action="store_true",
                         help="Encore Multimax baseline configuration")
    mon_cmd.add_argument("--coherent", action="store_true",
                         help="full caches + directory + network")
    mon_cmd.add_argument("--args", type=int, nargs="*", default=[],
                         help="fixnum arguments passed to (main ...)")
    mon_cmd.add_argument("--script", metavar="FILE",
                         help="run monitor commands from FILE (echoed; "
                              "deterministic transcript) instead of stdin")
    mon_cmd.add_argument("--max-cycles", type=int, default=200_000_000)
    mon_cmd.set_defaults(func=_cmd_monitor)

    explain_cmd = sub.add_parser(
        "explain", help="explain why speedup is sublinear: per-thread "
                        "cycle accounting + ranked critical-path report")
    _add_machine_options(explain_cmd)
    explain_cmd.add_argument("--json", action="store_true",
                             help="byte-stable JSON (thread accounting + "
                                  "critical path) instead of text")
    explain_cmd.set_defaults(func=_cmd_explain)

    report_cmd = sub.add_parser(
        "report", help="run a program and emit the full JSON machine report")
    _add_machine_options(report_cmd)
    report_cmd.add_argument("--out", metavar="FILE",
                            help="write the report here instead of stdout")
    report_cmd.add_argument("--histograms", action="store_true",
                            help="include the latency histogram section "
                                 "(p50/p90/p99 per kind/hops/node)")
    report_cmd.add_argument("--threads", action="store_true",
                            help="include the per-thread cycle accounting "
                                 "section (lifetime accountant)")
    report_cmd.add_argument("--critical-path", action="store_true",
                            help="include the causal critical-path section "
                                 "(implies --threads)")
    report_cmd.set_defaults(func=_cmd_report)

    bench_cmd = sub.add_parser(
        "bench", help="benchmark the simulator itself (BENCH_simulator.json)")
    bench_cmd.add_argument("--out", metavar="FILE",
                           default="BENCH_simulator.json",
                           help="output path (default BENCH_simulator.json)")
    bench_cmd.add_argument("--check", metavar="BASELINE",
                           help="compare against a baseline JSON and fail on "
                                ">25%% cycles/sec regression ('baseline' = "
                                "the committed benchmarks file)")
    bench_cmd.add_argument("--quick", action="store_true",
                           help="smaller workloads (for CI smoke / tests)")
    bench_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="run the suite sections in N worker "
                                "processes (each section still times "
                                "itself in its own process)")
    bench_cmd.add_argument("--no-cache", action="store_true",
                           help="accepted for uniformity; bench results "
                                "are never cached (they measure host "
                                "wall time)")
    bench_cmd.add_argument("--force", action="store_true",
                           help="accepted for uniformity; bench always "
                                "re-executes")
    bench_cmd.add_argument("--no-fastpath", action="store_true",
                           help="time the reference interpreter instead of "
                                "the translation-cache fast path (A/B "
                                "comparison; the committed baseline is "
                                "measured with the fast path on)")
    bench_cmd.add_argument("--no-jit", action="store_true",
                           help="keep the fast path but disable the "
                                "superblock JIT tier (A/B comparison; "
                                "the committed baseline is measured with "
                                "the JIT on)")
    bench_cmd.set_defaults(func=_cmd_bench)

    asm_cmd = sub.add_parser("asm", help="assemble and list APRIL assembly")
    asm_cmd.add_argument("program")
    asm_cmd.set_defaults(func=_cmd_asm)

    t3 = sub.add_parser("table3", help="regenerate Table 3")
    t3.add_argument("--programs", nargs="*", metavar="NAME[,NAME]",
                    help="only these programs (space- or comma-separated: "
                         "fib, factor, queens, speech)")
    t3.add_argument("--systems", nargs="*", metavar="SYS[,SYS]",
                    help="only these system rows (Encore, APRIL, Apr-lazy) "
                         "— with --programs, regenerates a single grid "
                         "cell without running the full table")
    _add_sweep_options(t3)
    t3.set_defaults(func=_cmd_table3)

    sp = sub.add_parser(
        "speedup", help="Section 7 speedup curves over the sequential "
                        "baseline")
    sp.add_argument("--programs", nargs="*", metavar="NAME[,NAME]",
                    help="workloads to sweep (default: all four)")
    sp.add_argument("--system", default="Apr-lazy",
                    choices=("Encore", "APRIL", "Apr-lazy"))
    sp.add_argument("--cpus", type=int, nargs="*", default=[1, 2, 4, 8, 16],
                    help="processor counts to sweep")
    _add_sweep_options(sp)
    sp.set_defaults(func=_cmd_speedup)

    sweep_cmd = sub.add_parser(
        "sweep", help="run a declarative experiment grid from a JSON spec")
    sweep_cmd.add_argument("spec", help="sweep spec file (see repro.exp.spec)")
    sweep_cmd.add_argument("--out", metavar="FILE",
                           help="write merged results here instead of stdout")
    _add_sweep_options(sweep_cmd)
    sweep_cmd.set_defaults(func=_cmd_sweep)

    f5 = sub.add_parser("figure5", help="regenerate Table 4 + Figure 5")
    f5.set_defaults(func=_cmd_figure5)

    serve_cmd = sub.add_parser(
        "serve", help="long-running sweep service: job specs over a unix "
                      "socket, single-flight dedupe, shared result cache, "
                      "backpressure, graceful drain")
    serve_cmd.add_argument("--socket", metavar="PATH", default="april.sock",
                           help="unix socket to listen on (default "
                                "april.sock)")
    serve_cmd.add_argument("--tcp", metavar="HOST:PORT",
                           help="also listen on TCP (e.g. 127.0.0.1:7010)")
    serve_cmd.add_argument("--workers", type=int, default=2, metavar="N",
                           help="persistent worker processes (default 2)")
    serve_cmd.add_argument("--queue-limit", type=int, default=64,
                           metavar="N",
                           help="max in-flight executions before new work "
                                "is fast-failed 'overloaded' (default 64; "
                                "followers of an open flight ride free)")
    serve_cmd.add_argument("--rate", type=float, default=0.0, metavar="R",
                           help="per-connection token-bucket limit in "
                                "requests/s (0 = unlimited)")
    serve_cmd.add_argument("--burst", type=float, default=None, metavar="N",
                           help="token-bucket burst size (default: rate)")
    serve_cmd.add_argument("--timeout", type=int, default=None,
                           metavar="SECONDS",
                           help="per-job wall-clock limit (typed 'timeout' "
                                "failure; enforced in the worker and at "
                                "the pool)")
    serve_cmd.add_argument("--cache-dir", metavar="DIR",
                           help="result cache root (default: the sweep "
                                "cache, results/cache or $REPRO_CACHE_DIR)")
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="serve without the on-disk result cache "
                                "(hot LRU and single-flight still apply)")
    serve_cmd.add_argument("--hot-entries", type=int, default=512,
                           metavar="N",
                           help="in-memory result LRU capacity (default "
                                "512)")
    serve_cmd.add_argument("--drain-timeout", type=float, default=10.0,
                           metavar="SECONDS",
                           help="max wait for in-flight jobs on SIGTERM "
                                "(default 10)")
    serve_cmd.add_argument("--metrics-out", metavar="FILE",
                           help="write the final metrics snapshot as JSON "
                                "on clean shutdown")
    serve_cmd.add_argument("--trace-ring", type=int, default=512,
                           metavar="N",
                           help="completed request traces kept after their "
                                "connections close (default 512; 0 turns "
                                "request tracing off entirely)")
    serve_cmd.add_argument("--slow-log", metavar="FILE",
                           help="append every request slower than --slow-ms "
                                "as one NDJSON trace line (flushed live)")
    serve_cmd.add_argument("--slow-ms", type=float, default=1000.0,
                           metavar="N",
                           help="slow-log threshold in milliseconds of "
                                "service latency (default 1000)")
    serve_cmd.add_argument("--trace-perfetto", metavar="FILE",
                           help="on drain, write every recorded request "
                                "trace as a Perfetto/Chrome timeline "
                                "(connection + worker tracks, dedupe "
                                "arrows)")
    serve_cmd.set_defaults(func=_cmd_serve)

    lg = sub.add_parser(
        "loadgen", help="spray a hot/cold job mix at a running april "
                        "serve and report RPS, hit/dedupe ratios, latency")
    lg.add_argument("--socket", metavar="PATH", default="april.sock",
                    help="server unix socket (default april.sock)")
    lg.add_argument("--tcp", metavar="HOST:PORT",
                    help="connect over TCP instead of the unix socket")
    lg.add_argument("--rate", type=float, default=500.0, metavar="R",
                    help="target aggregate request rate in requests/s "
                         "(0 = as fast as possible; default 500)")
    lg.add_argument("--requests", type=int, default=2000, metavar="N",
                    help="total requests to send (default 2000)")
    lg.add_argument("--connections", type=int, default=4, metavar="N",
                    help="concurrent client connections (default 4)")
    lg.add_argument("--hot-ratio", type=float, default=0.9, metavar="F",
                    help="fraction of requests drawn from the hot spec "
                         "set (default 0.9)")
    lg.add_argument("--seed", type=int, default=1234,
                    help="hot/cold mix RNG seed (default 1234)")
    lg.add_argument("--nonce", type=int, default=None, metavar="N",
                    help="cold-spec namespace (default: time-derived, so "
                         "every run's cold jobs are genuinely cold)")
    lg.add_argument("--program", default="fib",
                    help="workload the specs run (default fib)")
    lg.add_argument("--dedupe-burst", type=int, default=0, metavar="N",
                    help="after the main run, fire N identical never-seen "
                         "cold requests back-to-back and report the "
                         "single-flight scorecard")
    lg.add_argument("--json", action="store_true",
                    help="full JSON report on stdout")
    lg.add_argument("--out", metavar="FILE",
                    help="write the JSON report here")
    lg.set_defaults(func=_cmd_loadgen)

    top_cmd = sub.add_parser(
        "top", help="live dashboard for a running april serve: req/s, "
                    "ratios, queue depth, p50/p99 by served axis, "
                    "slowest in-flight and completed requests")
    top_cmd.add_argument("--socket", metavar="PATH", default="april.sock",
                         help="server unix socket (default april.sock)")
    top_cmd.add_argument("--tcp", metavar="HOST:PORT",
                         help="connect over TCP instead of the unix socket")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="seconds between polls (default 2)")
    top_cmd.add_argument("--count", type=int, default=None, metavar="N",
                         help="render N frames then exit (default: until "
                              "interrupted)")
    top_cmd.add_argument("--once", action="store_true",
                         help="one frame, no screen clearing (= --count 1 "
                              "--plain)")
    top_cmd.add_argument("--plain", action="store_true",
                         help="append frames instead of redrawing the "
                              "screen (for logs/pipes)")
    top_cmd.set_defaults(func=_cmd_top)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
