"""The ``april`` command-line interface.

Subcommands::

    april run PROGRAM.mult [-p CPUS] [--mode eager|lazy|sequential]
                           [--encore] [--coherent] [--args 10 ...]
    april asm PROGRAM.s          # assemble + list
    april table3 [--programs fib factor]
    april figure5
"""

import argparse
import sys

from repro.harness.figure5 import render_report
from repro.harness.table3 import render_table3, run_table3
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.lang.run import run_mult
from repro.machine.config import MachineConfig


def _cmd_run(args):
    with open(args.program) as handle:
        source = handle.read()
    config = MachineConfig(
        num_processors=args.processors,
        memory_mode="coherent" if args.coherent else "ideal",
    )
    if args.encore:
        from repro.baselines.encore import encore_config
        config = encore_config(args.processors)
    result = run_mult(source, mode=args.mode, args=tuple(args.args),
                      software_checks=args.encore, config=config)
    for line in result.output:
        print(line)
    print("result:", result.value)
    print("cycles: %d   utilization: %.1f%%   futures: %d   switches: %d"
          % (result.cycles, 100 * result.stats.utilization,
             result.stats.futures_created, result.stats.context_switches))
    return 0


def _cmd_asm(args):
    with open(args.program) as handle:
        program = assemble(handle.read())
    print(disassemble(program.words, base=program.base,
                      labels=program.labels))
    return 0


def _cmd_table3(args):
    rows = run_table3(program_names=args.programs or None)
    print(render_table3(rows))
    return 0


def _cmd_figure5(args):
    print(render_report())
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="april",
        description="APRIL (ISCA 1990) reproduction: simulate Mul-T "
                    "programs on a coarse-grain multithreaded machine.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="compile and run a Mul-T program")
    run_cmd.add_argument("program")
    run_cmd.add_argument("-p", "--processors", type=int, default=1)
    run_cmd.add_argument("--mode", default="eager",
                         choices=("eager", "lazy", "sequential"))
    run_cmd.add_argument("--encore", action="store_true",
                         help="Encore Multimax baseline configuration")
    run_cmd.add_argument("--coherent", action="store_true",
                         help="full caches + directory + network")
    run_cmd.add_argument("--args", type=int, nargs="*", default=[],
                         help="fixnum arguments passed to (main ...)")
    run_cmd.set_defaults(func=_cmd_run)

    asm_cmd = sub.add_parser("asm", help="assemble and list APRIL assembly")
    asm_cmd.add_argument("program")
    asm_cmd.set_defaults(func=_cmd_asm)

    t3 = sub.add_parser("table3", help="regenerate Table 3")
    t3.add_argument("--programs", nargs="*",
                    choices=("fib", "factor", "queens", "speech"))
    t3.set_defaults(func=_cmd_table3)

    f5 = sub.add_parser("figure5", help="regenerate Table 4 + Figure 5")
    f5.set_defaults(func=_cmd_figure5)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
