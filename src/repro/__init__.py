"""Reproduction of *APRIL: A Processor Architecture for Multiprocessing*
(Agarwal, Lim, Kranz & Kubiatowicz, ISCA 1990).

The package simulates the complete system the paper evaluates — the
APRIL processor, the ALEWIFE memory hierarchy and network, the Mul-T
compiler and run-time system, the Encore baseline, and the Section 8
analytical model.  The most common entry points are re-exported here::

    from repro import run_mult, MachineConfig

    result = run_mult(source, mode="lazy", processors=4, args=(10,))

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.lang.compiler import compile_source
from repro.lang.run import run_mult
from repro.machine.alewife import AlewifeMachine, run_program
from repro.machine.config import MachineConfig
from repro.model.params import ModelParams

__version__ = "1.0.0"

__all__ = [
    "AlewifeMachine",
    "MachineConfig",
    "ModelParams",
    "compile_source",
    "run_mult",
    "run_program",
    "__version__",
]
