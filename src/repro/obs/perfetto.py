"""Chrome/Perfetto trace export.

Converts an :class:`~repro.obs.events.EventBus` stream into the Chrome
Trace Event JSON format (the legacy format Perfetto still ingests):
open the written file in ``ui.perfetto.dev`` or ``chrome://tracing``.

Mapping:

* each ALEWIFE node is a *process* (``pid`` = node id);
* each hardware task frame is a *thread* (``tid`` = frame index), so
  the four-frame structure of the APRIL processor is visible directly;
* a thread residing in a frame (THREAD_LOAD .. THREAD_UNLOAD/EXIT) is a
  complete slice ("X") named after the virtual thread;
* traps, steals, and future events are instant events ("i");
* sampler windows become per-node "utilization" counter tracks ("C");
* coherence transactions (when a :class:`TransactionTracer` observed
  the run) are *async* events ("b"/"e", cat ``txn``) on the issuing
  node — the transaction envelope with its request/service/coherence/
  response phases nested inside — plus *flow* events ("s"/"t"/"f", cat
  ``txn-flow``) stitching the issue, every switch-spin re-trap, and the
  completion together, so a slow remote miss is clickable end-to-end;
* blocked-on-future waits (when a :class:`LifetimeAccountant` observed
  the run) are *flow* events ("s"/"f", cat ``block-flow``) from the
  resolver's frame at the resolve cycle to the waiter's frame at its
  reload — each wait is a clickable arrow in ui.perfetto.dev.

Simulated cycles are written one-to-one as trace microseconds.

:func:`server_perfetto_trace` reuses the same format for a different
timeline: the ``april serve`` request traces recorded by
:mod:`repro.serve.trace`.  There the mapping is

* process 1 (*connections*): one thread per client connection, each
  request an enclosing slice with its ladder spans (parse/admit/
  validate/hot/disk/flight or queue+execute/respond) nested inside;
* process 2 (*workers*): execute spans packed onto worker lanes by
  greedy interval assignment — the recorder stores no worker identity,
  so the lanes approximate pool concurrency (an execute span's end is
  marked when the leader coroutine resumes, which a saturated event
  loop delays past the worker's actual finish) — with the
  worker-reported compile/run/store sub-spans nested inside;
* flow arrows ("s"/"f", cat ``dedupe``) from the end of a leader's
  execute span to the end of each deduped follower's flight span —
  every dedupe is a clickable arrow from the work to its free riders.

Span offsets are real microseconds (monotonic clock), so the
``displayTimeUnit`` stays honest.
"""

from repro.obs.events import EventKind

_INSTANT_KINDS = {
    EventKind.TRAP_ENTER: "trap",
    EventKind.THREAD_STEAL: "steal",
    EventKind.FUTURE_CREATE: "future-create",
    EventKind.FUTURE_RESOLVE: "future-resolve",
    EventKind.REMOTE_MISS: "remote-miss",
}


def _metadata(pid, tid, name, kind):
    record = {"ph": "M", "pid": pid, "name": kind, "args": {"name": name}}
    if tid is not None:
        record["tid"] = tid
    return record


def _transaction_events(transactions, end_cycle):
    """Async + flow trace events for every finished transaction."""
    trace_events = []
    for record in transactions.finished:
        ident = "0x%x" % record.txn_id
        pid, tid = record.node, record.frame or 0
        end = record.ready if record.ready is not None else end_cycle
        args = {"block": "0x%x" % record.block, "home": record.home,
                "hops": record.hops, "retries": record.retries,
                "latency": record.latency}
        trace_events.append({
            "ph": "b", "cat": "txn", "id": ident, "pid": pid, "tid": tid,
            "ts": record.issue, "name": record.kind, "args": args,
        })
        for name, start, stop in record.phases:
            trace_events.append({"ph": "b", "cat": "txn", "id": ident,
                                 "pid": pid, "tid": tid, "ts": start,
                                 "name": name})
            trace_events.append({"ph": "e", "cat": "txn", "id": ident,
                                 "pid": pid, "tid": tid, "ts": stop,
                                 "name": name})
        trace_events.append({"ph": "e", "cat": "txn", "id": ident,
                             "pid": pid, "tid": tid, "ts": end,
                             "name": record.kind})
        trace_events.append({"ph": "s", "cat": "txn-flow", "id": ident,
                             "pid": pid, "tid": tid, "ts": record.issue,
                             "name": record.kind})
        for trap in record.traps:
            frame = trap.get("to_frame")
            trace_events.append({"ph": "t", "cat": "txn-flow", "id": ident,
                                 "pid": pid,
                                 "tid": frame if frame is not None else tid,
                                 "ts": trap["cycle"], "name": record.kind})
        trace_events.append({"ph": "f", "bp": "e", "cat": "txn-flow",
                             "id": ident, "pid": pid, "tid": tid, "ts": end,
                             "name": record.kind})
    return trace_events


def _lifetime_flows(lifetime):
    """Flow events for every blocked-on-future wait with a known waker.

    Each arrow starts where the producer resolved the future (its
    loaded episode at the wake cycle) and ends where the blocked
    consumer resumed (its next loaded episode).
    """

    def located(ledger, cycle):
        """The thread's last loaded episode at or before ``cycle``.

        A producer that resolves at its own exit has already left its
        frame when the wake lands, so "covering" is too strict — the
        arrow starts from wherever the producer last ran.
        """
        best = None
        for seg in ledger.segments:
            if seg.kind == "loaded" and seg.start <= cycle:
                best = seg
            elif seg.start > cycle:
                break
        return best

    trace_events = []
    dense = lifetime.dense_ids()
    serial = 0
    for tid in lifetime.order:
        ledger = lifetime.threads[tid]
        for index, seg in enumerate(ledger.segments):
            if seg.kind != "blocked" or seg.waker is None:
                continue
            waker = lifetime.threads.get(seg.waker)
            if waker is None:
                continue
            src = located(waker, seg.end)
            dst = next((s for s in ledger.segments[index + 1:]
                        if s.kind == "loaded"), None)
            if src is None or dst is None:
                continue
            serial += 1
            ident = "block-%d-%d" % (dense.get(tid, tid), serial)
            name = "future-wake"
            trace_events.append({
                "ph": "s", "cat": "block-flow", "id": ident,
                "pid": src.node, "tid": src.frame or 0, "ts": seg.end,
                "name": name,
                "args": {"waiter": dense.get(tid, tid),
                         "waker": dense.get(seg.waker, seg.waker),
                         "blocked_cycles": seg.length},
            })
            trace_events.append({
                "ph": "f", "bp": "e", "cat": "block-flow", "id": ident,
                "pid": dst.node, "tid": dst.frame or 0, "ts": dst.start,
                "name": name,
            })
    return trace_events


def perfetto_trace(bus, num_nodes, end_cycle, sampler=None,
                   transactions=None, lifetime=None):
    """Build the Chrome trace dict for an event stream.

    Args:
        bus: the :class:`EventBus` (its ring is consumed read-only).
        num_nodes: machine size, for the process metadata.
        end_cycle: run end; closes slices still open at the end.
        sampler: optional :class:`IntervalSampler` for counter tracks.
        transactions: optional :class:`TransactionTracer` whose finished
            records become async/flow events.
        lifetime: optional finalized :class:`LifetimeAccountant` whose
            blocked-on-future waits become flow arrows.
    """
    trace_events = []
    for node in range(num_nodes):
        trace_events.append(
            _metadata(node, None, "node %d" % node, "process_name"))

    open_slices = {}       # (node, frame) -> (start cycle, thread name)
    seen_frames = set()

    def close_slice(key, end):
        start, name = open_slices.pop(key)
        node, frame = key
        trace_events.append({
            "ph": "X", "pid": node, "tid": frame, "ts": start,
            "dur": max(end - start, 0), "cat": "thread", "name": name,
        })

    for event in bus:
        node = event.node
        frame = event.data.get("frame", 0)
        key = (node, frame)
        if key not in seen_frames and frame is not None:
            seen_frames.add(key)
            trace_events.append(
                _metadata(node, frame, "frame %d" % frame, "thread_name"))

        if event.kind is EventKind.THREAD_LOAD:
            if key in open_slices:           # defensive: reload over a slice
                close_slice(key, event.cycle)
            open_slices[key] = (event.cycle, event.data.get("thread",
                                                            "thread"))
        elif event.kind in (EventKind.THREAD_UNLOAD, EventKind.THREAD_EXIT):
            if key in open_slices:
                close_slice(key, event.cycle)
        elif event.kind in _INSTANT_KINDS:
            name = _INSTANT_KINDS[event.kind]
            if event.kind is EventKind.TRAP_ENTER:
                name = "trap:%s" % event.data.get("trap", "?")
            trace_events.append({
                "ph": "i", "pid": node, "tid": frame, "ts": event.cycle,
                "cat": "event", "name": name, "s": "t",
                "args": {k: v for k, v in event.data.items()
                         if k != "frame"},
            })

    # Threads still resident at run end: emit their slices with
    # dur = end_cycle - start (sorted keys keep the output byte-stable).
    for key in sorted(open_slices):
        close_slice(key, end_cycle)

    if transactions is not None:
        trace_events.extend(_transaction_events(transactions, end_cycle))

    if lifetime is not None:
        trace_events.extend(_lifetime_flows(lifetime))

    if sampler is not None:
        start = 0               # the flush window is narrower than `window`
        for end, deltas in sampler.windows:
            for node, row in enumerate(deltas):
                total = sum(row.values())
                trace_events.append({
                    "ph": "C", "pid": node, "ts": start,
                    "name": "utilization",
                    "args": {"useful": (100 * row["useful"] // total)
                             if total else 0},
                })
            start = end

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs (APRIL/ALEWIFE simulator)",
            "nodes": num_nodes,
            "end_cycle": end_cycle,
            "events_recorded": len(bus),
            "events_dropped": bus.dropped,
        },
    }


# -- server timelines ------------------------------------------------------

_CONN_PID = 1
_WORKER_PID = 2


def _pack_lanes(intervals):
    """Greedily assign ``(start, end, payload)`` intervals to the
    first free lane; returns ``(lane, payload)`` pairs.  Deterministic:
    intervals are processed sorted by ``(start, end)``."""
    lane_free_at = []
    assigned = []
    for start, end, payload in sorted(intervals,
                                      key=lambda item: item[:2]):
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start:
                lane_free_at[lane] = end
                break
        else:
            lane = len(lane_free_at)
            lane_free_at.append(end)
        assigned.append((lane, payload))
    return assigned


def server_perfetto_trace(traces):
    """Build the Chrome trace dict for ``april serve`` request traces.

    Args:
        traces: completed trace dicts (:meth:`RequestTrace.to_dict`
            shapes, as served by the ``trace`` op), any order.

    One slice lane per connection, execute spans re-packed onto worker
    lanes, and a flow arrow per dedupe from the leader's execute span
    to the follower's flight span.  Purely a function of its input —
    identical traces yield byte-identical JSON.
    """
    traces = sorted((trace for trace in traces
                     if not trace.get("inflight")),
                    key=lambda trace: trace["id"])
    trace_events = [
        _metadata(_CONN_PID, None, "connections", "process_name"),
        _metadata(_WORKER_PID, None, "workers", "process_name"),
    ]

    span_end = {}          # (trace id, span name) -> absolute end us
    executions = []        # (start, end, trace) for worker-lane packing
    for trace in traces:
        conn = trace["conn"]
        base = trace["start_us"]
        trace_events.append(_metadata(_CONN_PID, conn, "conn %d" % conn,
                                      "thread_name"))
        trace_events.append({
            "ph": "X", "pid": _CONN_PID, "tid": conn, "ts": base,
            "dur": trace.get("latency_us", 0), "cat": "request",
            "name": "req %s" % trace["id"],
            "args": {"trace": trace["id"],
                     "request_id": trace.get("request_id"),
                     "status": trace.get("status"),
                     "served": trace.get("served")},
        })
        for span in trace["spans"]:
            start = base + span["start_us"]
            trace_events.append({
                "ph": "X", "pid": _CONN_PID, "tid": conn, "ts": start,
                "dur": span["dur_us"], "cat": "span", "name": span["name"],
            })
            span_end[(trace["id"], span["name"])] = start + span["dur_us"]
            if span["name"] == "execute":
                executions.append((start, start + span["dur_us"], trace))

    seen_lanes = set()
    for lane, trace in _pack_lanes(executions):
        if lane not in seen_lanes:
            seen_lanes.add(lane)
            trace_events.append(_metadata(_WORKER_PID, lane,
                                          "worker lane %d" % lane,
                                          "thread_name"))
        base = trace["start_us"]
        span = next(s for s in trace["spans"] if s["name"] == "execute")
        start = base + span["start_us"]
        trace_events.append({
            "ph": "X", "pid": _WORKER_PID, "tid": lane, "ts": start,
            "dur": span["dur_us"], "cat": "execute",
            "name": "req %s" % trace["id"],
            "args": {"trace": trace["id"]},
        })
        # Worker-reported sub-spans (own clock): laid out sequentially
        # from the execute start, clipped to the execute span.
        cursor = start
        for child in trace.get("children", ()):
            if child["parent"] != "execute":
                continue
            duration = min(child["dur_us"],
                           start + span["dur_us"] - cursor)
            if duration < 0:
                break
            trace_events.append({
                "ph": "X", "pid": _WORKER_PID, "tid": lane, "ts": cursor,
                "dur": duration, "cat": "worker", "name": child["name"],
            })
            cursor += duration

    # Dedupe arrows: leader's execute -> follower's flight wait.
    for trace in traces:
        leader_id = trace.get("link")
        if leader_id is None:
            continue
        follower_end = span_end.get((trace["id"], "flight"))
        leader_end = span_end.get((leader_id, "execute"))
        if follower_end is None or leader_end is None:
            continue
        leader_conn = next(t["conn"] for t in traces
                           if t["id"] == leader_id)
        ident = "dedupe-%s" % trace["id"]
        trace_events.append({
            "ph": "s", "cat": "dedupe", "id": ident, "pid": _CONN_PID,
            "tid": leader_conn, "ts": leader_end, "name": "dedupe",
            "args": {"leader": leader_id, "follower": trace["id"]},
        })
        trace_events.append({
            "ph": "f", "bp": "e", "cat": "dedupe", "id": ident,
            "pid": _CONN_PID, "tid": trace["conn"], "ts": follower_end,
            "name": "dedupe",
        })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.serve (april serve request traces)",
            "requests": len(traces),
        },
    }
