"""Observability: the telemetry spine of the simulator.

The simulator's components carry *dormant* instrumentation hooks — a
single ``events is not None`` test on each hot path — that wake up when
an :class:`Observation` is attached to a machine.  Three consumers are
built in:

* the :class:`~repro.obs.events.EventBus` — a bounded ring of typed,
  structured events (context switches, traps, remote misses, directory
  transactions, network messages, future and thread lifecycle);
* the :class:`~repro.obs.sampler.IntervalSampler` — per-node
  utilization timelines bucketing the Figure-5 cycle categories
  (useful/trap/switch/spin/stall/idle) per N-cycle window;
* the :class:`~repro.obs.profiler.HotPathProfiler` — a flat
  PC -> cycle-cost profile, folded through the assembler/Mul-T source
  map to source lines;
* the :class:`~repro.obs.txn.TransactionTracer` — causal spans for
  every coherence transaction (miss, upgrade, full/empty fault,
  write-back) with streaming log2 latency histograms
  (:mod:`repro.obs.hist`) by kind, hop distance, and node;
* the :class:`~repro.obs.lifetime.LifetimeAccountant` — per-virtual-
  thread cycle attribution with an exact conservation invariant, the
  substrate of the :mod:`repro.obs.critpath` causal critical-path
  analyzer (``april explain``: *why* is speedup sublinear);
* the :class:`~repro.obs.flight.FlightRecorder` and
  :class:`~repro.obs.flight.Watchdog` — an always-on bounded ring of
  coarse events per node plus a hang detector (deadlock + trap-storm
  livelock) that stops the run with a post-mortem: wait-for graph over
  future cells, last events, registers, and disassembly at each
  blocked pc (``april run prog.mult --watchdog``);
* the :class:`~repro.obs.monitor.Monitor` — the interactive machine
  debugger behind ``april monitor``: breakpoints, full/empty
  watchpoints, stepping, and state poking over a resumable stepper.

The event stream exports to Chrome/Perfetto trace JSON
(:mod:`repro.obs.perfetto`; open the file in ``ui.perfetto.dev``), and
:mod:`repro.obs.report` renders the whole machine — ``MachineStats``
plus every per-component counter — as machine-readable JSON.

Typical use::

    from repro.lang.run import run_mult
    from repro.obs import Observation

    obs = Observation(profile=True)
    result = run_mult(source, processors=4, args=(10,), observe=obs)
    print(obs.profiler.report(top=10))
    obs.write_perfetto("out.json")

From the shell: ``april run prog.mult --profile --events out.json
--timeline`` and ``april report prog.mult``.
"""

from repro.obs.critpath import CriticalPath
from repro.obs.events import Event, EventBus, EventKind, Subscription
from repro.obs.flight import FlightRecorder, Watchdog, render_postmortem
from repro.obs.hist import LatencyHistograms, Log2Histogram
from repro.obs.lifetime import ConservationError, LifetimeAccountant
from repro.obs.monitor import Monitor
from repro.obs.perfetto import perfetto_trace
from repro.obs.profiler import HotPathProfiler
from repro.obs.report import machine_report
from repro.obs.sampler import IntervalSampler
from repro.obs.session import Observation
from repro.obs.txn import TransactionTracer, TxnRecord

__all__ = [
    "ConservationError",
    "CriticalPath",
    "Event",
    "EventBus",
    "EventKind",
    "FlightRecorder",
    "HotPathProfiler",
    "IntervalSampler",
    "LatencyHistograms",
    "LifetimeAccountant",
    "Log2Histogram",
    "Monitor",
    "Observation",
    "Subscription",
    "TransactionTracer",
    "TxnRecord",
    "Watchdog",
    "machine_report",
    "perfetto_trace",
    "render_postmortem",
]
