"""Per-virtual-thread cycle accounting with exact conservation.

The paper's Figure 5 decomposes *processor* time; this module does the
same lift for *threads*: every cycle of every virtual thread's life is
attributed to exactly one bucket, so "why is speedup sublinear" becomes
a table instead of a guess.  Two exact integer ledgers are kept:

**Node-time ledger** (conserved machine-wide).  A dormant hook in
:meth:`repro.core.processor.Processor.charge` — the only place a local
clock ever advances — attributes every charged cycle to the thread in
the active task frame (or to an *owner* pushed around charges that run
with an empty frame: thread load/unload, lazy-steal setup, the resolve
a thread performs after its own retirement).  Cycles charged with no
thread in context are per-node overhead (idle polling, IPI delivery at
idle).  The invariant is exact, by construction::

    sum(per-thread on-cpu) + sum(per-node overhead) + sum(end skew)
        == machine.time * num_nodes

where ``end skew`` is each processor's distance from the final
``machine.time`` (the run ends when the root thread exits; other clocks
stop a few cycles short).  No float ever enters the ledger and there is
no "other" bucket.

**Per-thread wall ledger**.  The event stream (spawn / load / unload /
exit / wake) partitions each thread's life ``[spawn, end]`` into
contiguous segments: ``queue`` (ready, never run or re-queued),
``loaded`` (resident in a task frame), ``blocked`` (on a future's
waiter list).  Loaded segments subdivide into the on-cpu categories
charged during the episode plus ``loaded_wait`` (resident but a sibling
frame had the processor).  The per-thread invariant is also exact::

    queue_wait + runnable_unloaded + blocked_future + loaded
        == end_cycle - spawn_cycle

Event timestamps come from *different* local clocks, so a thread's
events can arrive with slightly decreasing cycles (a resolver whose
clock trails the blocker's).  Timestamps are clamped monotonically
per thread; the total clamped slack is reported as ``clock_slip`` so
the approximation is visible, and it never breaks either invariant.

Everything exported is byte-stable: tids are renumbered densely in
first-spawn order and thread names are rewritten to match, so two runs
of the same program produce identical JSON even though the process-wide
tid counter differs.
"""

import re

#: Processor charge category -> on-cpu accounting class.
ONCPU_CLASS = {
    "useful": "running",
    "trap": "trap",
    "switch": "switch_spin",
    "spin": "switch_spin",
    "stall": "blocked_memory",
    "idle": "idle",
}

#: On-cpu classes in fixed report order.
ONCPU_KEYS = ("running", "trap", "switch_spin", "blocked_memory", "idle")

#: Wall-clock wait classes in fixed report order.
WAIT_KEYS = ("queue_wait", "runnable_unloaded", "blocked_future",
             "loaded_wait")

_THREAD_NAME = re.compile(r"thread-(\d+)")


class ConservationError(Exception):
    """The lifetime ledger failed an exact conservation check."""


class Segment:
    """One contiguous piece of a thread's life."""

    __slots__ = ("kind", "start", "end", "node", "frame", "cause",
                 "waker", "pc", "cell", "prev_free", "oncpu")

    def __init__(self, kind, start, end, node=None, frame=None, cause=None,
                 waker=None, pc=None, cell=None, prev_free=None, oncpu=None):
        self.kind = kind          # "queue" | "ready" | "loaded" | "blocked"
        self.start = start
        self.end = end
        self.node = node
        self.frame = frame
        self.cause = cause        # ("spawn", parent) | ("wake", waker) | ...
        self.waker = waker        # tid that resolved the future (blocked)
        self.pc = pc              # touch pc that blocked the thread
        self.cell = cell          # future cell address (blocked)
        self.prev_free = prev_free  # (cycle, tid) that freed the frame
        self.oncpu = oncpu        # {class: cycles} charged in the episode

    @property
    def length(self):
        return self.end - self.start


class ThreadLedger:
    """Both ledgers' per-thread state."""

    __slots__ = ("tid", "name", "parent", "home", "spawn_cycle", "end_cycle",
                 "done", "oncpu", "waits", "segments", "block_sites",
                 "_state", "_clock", "_episode_base", "clock_slip", "steals")

    def __init__(self, tid, name=None, parent=None, home=None, spawn_cycle=0):
        self.tid = tid
        self.name = name or ("thread-%d" % tid)
        self.parent = parent
        self.home = home
        self.spawn_cycle = spawn_cycle
        self.end_cycle = None
        self.done = False
        self.oncpu = {}           # node-time ledger: {class: cycles}
        self.waits = {}           # wall ledger: {wait class: cycles}
        self.segments = []
        self.block_sites = {}     # pc -> blocked cycles
        #: Open state: ("queue"/"ready", since, cause) or
        #: ("loaded", since, node, frame) or ("blocked", since, cell, pc).
        self._state = ("queue", spawn_cycle, ("spawn", parent))
        self._clock = spawn_cycle
        self._episode_base = None
        self.clock_slip = 0
        self.steals = 0

    def timestamp(self, cycle):
        """Clamp an event cycle monotonically for this thread."""
        if cycle < self._clock:
            self.clock_slip += self._clock - cycle
            return self._clock
        self._clock = cycle
        return cycle

    def add_oncpu(self, category, cycles):
        key = ONCPU_CLASS.get(category, category)
        self.oncpu[key] = self.oncpu.get(key, 0) + cycles

    def wall_total(self):
        return sum(seg.length for seg in self.segments)


class LifetimeAccountant:
    """The per-thread lifetime accountant (see module docstring).

    Wire it through :class:`repro.obs.session.Observation` with
    ``threads=True``; it subscribes to the event bus synchronously (so
    ring capacity never truncates its view) and hooks processor charge
    via the dormant ``cpu.lifetime`` slot.
    """

    def __init__(self):
        self.threads = {}         # raw tid -> ThreadLedger
        self.order = []           # raw tids in first-seen order
        self.node_attr = {}       # node -> cycles attributed on that node
        self.node_overhead = {}   # node -> {category: cycles} (no thread)
        self.node_skew = {}       # node -> machine.time - cpu.cycles
        self.last_exit = None     # (cycle, raw tid) of the latest THREAD_EXIT
        self.end_cycle = None
        self.nodes = None
        self._owner = {}          # node -> [tid] override stack
        self._frame_free = {}     # (node, frame) -> (cycle, tid)
        self._finalized = False

    # -- wiring ----------------------------------------------------------

    def subscribe(self, bus):
        """Attach the event-stream half to a bus (synchronous)."""
        from repro.obs.events import EventKind
        bus.subscribe(self._on_spawn, EventKind.THREAD_SPAWN)
        bus.subscribe(self._on_load, EventKind.THREAD_LOAD)
        bus.subscribe(self._on_unload, EventKind.THREAD_UNLOAD)
        bus.subscribe(self._on_exit, EventKind.THREAD_EXIT)
        bus.subscribe(self._on_wake, EventKind.THREAD_WAKE)
        bus.subscribe(self._on_steal, EventKind.THREAD_STEAL)

    # -- node-time ledger (charge hook) ----------------------------------

    def push_owner(self, cpu, tid):
        """Attribute subsequent charges on this node to ``tid``."""
        self._owner.setdefault(cpu.node_id, []).append(tid)

    def pop_owner(self, cpu):
        self._owner[cpu.node_id].pop()

    def on_charge(self, cpu, cycles, category):
        """The :meth:`Processor.charge` hook — every cycle lands here."""
        if not cycles:
            return
        node = cpu.node_id
        self.node_attr[node] = self.node_attr.get(node, 0) + cycles
        stack = self._owner.get(node)
        if stack:
            tid = stack[-1]
        else:
            thread = cpu.frames[cpu.fp].thread
            tid = thread.tid if thread is not None else None
        if tid is None:
            bucket = self.node_overhead.setdefault(node, {})
            bucket[category] = bucket.get(category, 0) + cycles
            return
        self._ledger(tid).add_oncpu(category, cycles)

    # -- wall ledger (event stream) --------------------------------------

    def _ledger(self, tid, cycle=0, name=None, parent=None, home=None):
        ledger = self.threads.get(tid)
        if ledger is None:
            ledger = ThreadLedger(tid, name=name, parent=parent, home=home,
                                  spawn_cycle=cycle)
            self.threads[tid] = ledger
            self.order.append(tid)
        return ledger

    def _on_spawn(self, event):
        data = event.data
        self._ledger(data["tid"], cycle=event.cycle,
                     name=data.get("thread"), parent=data.get("parent"),
                     home=data.get("home"))

    def _close_wait(self, ledger, t, prev_free=None):
        """Close the open queue/ready/blocked state at ``t``."""
        kind, since = ledger._state[0], ledger._state[1]
        if kind in ("queue", "ready"):
            seg = Segment(kind, since, t, cause=ledger._state[2],
                          prev_free=prev_free)
            bucket = "queue_wait" if kind == "queue" else "runnable_unloaded"
        else:                     # blocked
            _, _, cell, pc = ledger._state
            seg = Segment("blocked", since, t, cell=cell, pc=pc)
            bucket = "blocked_future"
            if pc is not None and t > since:
                ledger.block_sites[pc] = (
                    ledger.block_sites.get(pc, 0) + (t - since))
        ledger.segments.append(seg)
        ledger.waits[bucket] = ledger.waits.get(bucket, 0) + seg.length
        return seg

    def _close_episode(self, ledger, t):
        """Close the open loaded episode at ``t``."""
        _, since, node, frame = ledger._state
        base = ledger._episode_base or {}
        delta = {}
        for key, value in ledger.oncpu.items():
            diff = value - base.get(key, 0)
            if diff:
                delta[key] = diff
        spent = sum(delta.values())
        if t < since + spent:
            # Charges overflow the clamped wall window (cross-clock
            # skew): stretch the episode so loaded_wait stays >= 0.
            ledger.clock_slip += since + spent - t
            t = since + spent
            ledger._clock = t
        seg = Segment("loaded", since, t, node=node, frame=frame,
                      oncpu=delta)
        ledger.segments.append(seg)
        ledger.waits["loaded_wait"] = (
            ledger.waits.get("loaded_wait", 0) + seg.length - spent)
        ledger._episode_base = None
        return seg, t

    def _on_load(self, event):
        data = event.data
        ledger = self._ledger(data["tid"], cycle=event.cycle,
                              name=data.get("thread"))
        t = ledger.timestamp(event.cycle)
        key = (event.node, data.get("frame"))
        self._close_wait(ledger, t, prev_free=self._frame_free.get(key))
        ledger._state = ("loaded", t, event.node, data.get("frame"))
        ledger._episode_base = dict(ledger.oncpu)

    def _on_unload(self, event):
        data = event.data
        ledger = self._ledger(data["tid"], cycle=event.cycle)
        t = ledger.timestamp(event.cycle)
        if ledger._state[0] == "loaded":
            _, t = self._close_episode(ledger, t)
        else:                     # defensive: unload without a load seen
            self._close_wait(ledger, t)
        self._frame_free[(event.node, data.get("frame"))] = (t, ledger.tid)
        if data.get("state") == "blocked":
            ledger._state = ("blocked", t, data.get("cell"), data.get("pc"))
        else:
            ledger._state = ("ready", t, ("yield", None))

    def _on_exit(self, event):
        data = event.data
        ledger = self._ledger(data["tid"], cycle=event.cycle)
        t = ledger.timestamp(event.cycle)
        if ledger._state[0] == "loaded":
            _, t = self._close_episode(ledger, t)
        else:                     # defensive: exit without a residency
            self._close_wait(ledger, t)
        self._frame_free[(event.node, data.get("frame"))] = (t, ledger.tid)
        ledger.end_cycle = t
        ledger.done = True
        ledger._state = None
        self.last_exit = (t, ledger.tid)

    def _on_wake(self, event):
        data = event.data
        ledger = self._ledger(data["tid"], cycle=event.cycle)
        if ledger._state is None or ledger._state[0] != "blocked":
            return                # defensive: wake of a non-blocked thread
        t = ledger.timestamp(event.cycle)
        seg = self._close_wait(ledger, t)
        seg.waker = data.get("waker")
        ledger._state = ("ready", t, ("wake", data.get("waker")))

    def _on_steal(self, event):
        ledger = self.threads.get(event.data.get("tid"))
        if ledger is not None:
            ledger.steals += 1

    # -- finalize + conservation -----------------------------------------

    def finalize(self, machine):
        """Close every open state at run end; idempotent."""
        if self._finalized:
            return self
        self._finalized = True
        self.end_cycle = machine.time
        self.nodes = len(machine.cpus)
        for cpu in machine.cpus:
            self.node_skew[cpu.node_id] = machine.time - cpu.cycles
            self.node_attr.setdefault(cpu.node_id, 0)
        for tid in self.order:
            ledger = self.threads[tid]
            if ledger._state is None:
                continue
            t = max(machine.time, ledger._clock)
            if ledger._state[0] == "loaded":
                _, t = self._close_episode(ledger, t)
            else:
                self._close_wait(ledger, t)
            ledger.end_cycle = t
            ledger._state = None
        return self

    def conservation(self):
        """Both exact invariants as a JSON-ready dict."""
        if not self._finalized:
            raise ConservationError("finalize(machine) must run first")
        thread_cycles = sum(sum(l.oncpu.values())
                            for l in self.threads.values())
        overhead = sum(sum(b.values())
                       for b in self.node_overhead.values())
        skew = sum(self.node_skew.values())
        attributed = thread_cycles + overhead + skew
        expected = self.end_cycle * self.nodes
        node_ok = all(
            self.node_attr.get(node, 0) + self.node_skew[node]
            == self.end_cycle for node in self.node_skew)
        wall_bad = []
        slip = 0
        for tid in self.order:
            ledger = self.threads[tid]
            slip += ledger.clock_slip
            span = (ledger.end_cycle or ledger.spawn_cycle) - ledger.spawn_cycle
            if ledger.wall_total() != span:
                wall_bad.append(tid)
        return {
            "machine_cycles": self.end_cycle,
            "nodes": self.nodes,
            "cycles_x_nodes": expected,
            "attributed": attributed,
            "thread_cycles": thread_cycles,
            "node_overhead": overhead,
            "end_skew": skew,
            "exact": attributed == expected and node_ok and not wall_bad,
            "clock_slip": slip,
        }

    def check(self):
        """Raise :class:`ConservationError` unless both ledgers balance."""
        data = self.conservation()
        if not data["exact"]:
            raise ConservationError(
                "lifetime ledger out of balance: attributed %d != %d "
                "(machine %d x %d nodes)"
                % (data["attributed"], data["cycles_x_nodes"],
                   data["machine_cycles"], data["nodes"]))
        return data

    # -- byte-stable export ----------------------------------------------

    def dense_ids(self):
        """Raw tid -> dense id in first-spawn order (run-stable)."""
        return {tid: index for index, tid in enumerate(self.order)}

    def _norm_name(self, name, dense):
        return _THREAD_NAME.sub(
            lambda m: "thread-%d" % dense.get(int(m.group(1)),
                                              int(m.group(1))), name)

    def to_dict(self, source_map=None, top=None):
        """JSON-ready accounting tables (run-stable byte-for-byte)."""
        dense = self.dense_ids()
        rows = []
        for tid in self.order:
            ledger = self.threads[tid]
            sites = []
            for pc, cycles in sorted(ledger.block_sites.items(),
                                     key=lambda kv: (-kv[1], kv[0])):
                site = {"pc": pc, "cycles": cycles}
                if source_map is not None and pc in source_map:
                    line, text = source_map[pc]
                    site["line"] = line
                    site["text"] = text
                sites.append(site)
            rows.append({
                "tid": dense[tid],
                "name": self._norm_name(ledger.name, dense),
                "parent": (dense.get(ledger.parent)
                           if ledger.parent is not None else None),
                "home": ledger.home,
                "spawn": ledger.spawn_cycle,
                "end": ledger.end_cycle,
                "done": ledger.done,
                "episodes": sum(1 for s in ledger.segments
                                if s.kind == "loaded"),
                "steals": ledger.steals,
                "oncpu": {k: ledger.oncpu.get(k, 0) for k in ONCPU_KEYS
                          if ledger.oncpu.get(k, 0)},
                "waits": {k: ledger.waits.get(k, 0) for k in WAIT_KEYS
                          if ledger.waits.get(k, 0)},
                "block_sites": sites,
            })
        totals_on = {}
        totals_wait = {}
        for ledger in self.threads.values():
            for key, value in ledger.oncpu.items():
                totals_on[key] = totals_on.get(key, 0) + value
            for key, value in ledger.waits.items():
                totals_wait[key] = totals_wait.get(key, 0) + value
        if top is not None and len(rows) > top:
            keep = sorted(rows, key=lambda r: -(sum(r["oncpu"].values())
                                                + sum(r["waits"].values())))
            kept = {row["tid"] for row in keep[:top]}
            rows = [row for row in rows if row["tid"] in kept]
        return {
            "conservation": self.conservation(),
            "node_overhead": {
                str(node): dict(sorted(
                    list(self.node_overhead.get(node, {}).items())
                    + [("end_skew", self.node_skew[node])]))
                for node in sorted(self.node_skew)},
            "totals": {
                "oncpu": {k: totals_on.get(k, 0) for k in ONCPU_KEYS
                          if totals_on.get(k, 0)},
                "waits": {k: totals_wait.get(k, 0) for k in WAIT_KEYS
                          if totals_wait.get(k, 0)},
            },
            "threads": rows,
        }

    def render(self, source_map=None, top=12):
        """Human-readable per-thread table."""
        data = self.to_dict(source_map=source_map)
        cons = data["conservation"]
        lines = [
            "per-thread cycle accounting (%d threads, %d nodes, %d cycles)"
            % (len(self.order), cons["nodes"], cons["machine_cycles"]),
            "conservation: %s (%d attributed == %d x %d + skew %d)"
            % ("exact" if cons["exact"] else "BROKEN",
               cons["attributed"], cons["machine_cycles"], cons["nodes"],
               cons["end_skew"]),
            "",
            "%-5s %-18s %8s %8s %8s %8s %8s %8s %8s" % (
                "tid", "name", "run", "trap", "switch", "memstall",
                "queue", "blocked", "loadwait"),
        ]
        rows = sorted(
            data["threads"],
            key=lambda r: -(sum(r["oncpu"].values())
                            + sum(r["waits"].values())))
        for row in rows[:top]:
            on, wait = row["oncpu"], row["waits"]
            lines.append("%-5d %-18s %8d %8d %8d %8d %8d %8d %8d" % (
                row["tid"], row["name"][:18], on.get("running", 0),
                on.get("trap", 0), on.get("switch_spin", 0),
                on.get("blocked_memory", 0),
                wait.get("queue_wait", 0)
                + wait.get("runnable_unloaded", 0),
                wait.get("blocked_future", 0), wait.get("loaded_wait", 0)))
        if len(rows) > top:
            lines.append("... %d more threads" % (len(rows) - top))
        return "\n".join(lines)
