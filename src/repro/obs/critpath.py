"""Causal critical-path analysis over the lifetime ledgers.

The question Table 3 leaves open is *why* speedup is sublinear.  This
module answers it by walking the causal DAG the
:class:`~repro.obs.lifetime.LifetimeAccountant` recorded:

* **spawn edges** — a thread's first cycle depends on its parent at the
  spawn cycle;
* **future edges** — a blocked consumer's resume depends on the
  producer thread at the resolve cycle (the ``THREAD_WAKE`` waker);
* **scheduler load edges** — a queued thread's load depends on the
  thread that freed the task frame it was loaded into (full/empty
  producer→consumer waits surface here too: a full/empty yield re-queues
  the consumer, whose reload then depends on a frame freed by another
  thread).

Starting from the thread exit that ended the run, a backward
*last-arrival* walk tiles the interval ``[0, T_end]`` with segments of
whichever thread the binding dependency runs through: at a blocked
segment it jumps into the resolver; at a queue segment whose frame
freed *after* the thread became ready it jumps into the frame's
previous occupant; otherwise it consumes the segment and keeps walking
the same thread.  The result is one contiguous chain whose length is
the run's makespan — by construction ``<= machine.time`` and (for any
run that ends with the root exit) far above ``machine.time / nodes``.

Two exact decompositions of the same path are reported:

* **what** — the covering segment's activity (running, trap,
  switch-spin, memory stall, loaded-wait, queue-wait, ...): what the
  machine was doing along the path;
* **why** — while the walk is *inside* a future edge (covering time the
  downstream consumer spent blocked), cycles are attributed to the
  consumer's touch site.  "41% of critical path is blocked-on-future at
  line 7" means: 41% of the makespan was spent computing values some
  path-side consumer was blocked on at that line.

Both decompositions tile the path exactly (integer pro-rata split with
largest-remainder rounding inside loaded episodes).
"""

from bisect import bisect_left

#: Path "what" classes in fixed report order.
WHAT_KEYS = ("running", "trap", "switch_spin", "blocked_memory",
             "loaded_wait", "queue_wait", "runnable_unloaded",
             "blocked_future", "idle", "skew")

_WAIT_WHAT = {"queue": "queue_wait", "ready": "runnable_unloaded",
              "blocked": "blocked_future"}

#: Walk-step budget: far above any real chain, guards malformed data.
MAX_STEPS = 2_000_000


class PathStep:
    """One consumed interval of the critical path."""

    __slots__ = ("start", "end", "tid", "what", "site")

    def __init__(self, start, end, tid, what, site):
        self.start = start
        self.end = end
        self.tid = tid
        self.what = what          # {class: cycles} tiling end - start
        self.site = site          # blocking touch pc in effect, or None


class CriticalPath:
    """The computed path plus its two decompositions."""

    def __init__(self, accountant, anchor_tid, anchor_cycle, steps,
                 what_totals, why_totals, truncated):
        self.accountant = accountant
        self.anchor_tid = anchor_tid
        self.anchor_cycle = anchor_cycle
        self.steps = steps        # chronological PathSteps
        self.what = what_totals   # {class: cycles}
        self.why = why_totals     # {pc or None: cycles}
        self.truncated = truncated

    @property
    def length(self):
        return sum(sum(step.what.values()) for step in self.steps)

    def ranked_why(self, source_map=None, top=None):
        """The "why not linear" ranking, largest cause first."""
        length = self.length or 1
        entries = []
        for pc, cycles in self.why.items():
            entry = {"cycles": cycles,
                     "share": round(cycles / length, 4)}
            if pc is None:
                entry["cause"] = "critical-chain-compute"
            else:
                entry["cause"] = "blocked-on-future"
                entry["pc"] = pc
                if source_map is not None and pc in source_map:
                    line, text = source_map[pc]
                    entry["line"] = line
                    entry["text"] = text
            entries.append(entry)
        entries.sort(key=lambda e: (-e["cycles"], e.get("pc", -1)))
        return entries[:top] if top is not None else entries

    def to_dict(self, source_map=None, top=None):
        dense = self.accountant.dense_ids()
        return {
            "anchor": {"tid": dense.get(self.anchor_tid, self.anchor_tid),
                       "cycle": self.anchor_cycle},
            "length": self.length,
            "machine_cycles": self.accountant.end_cycle,
            "nodes": self.accountant.nodes,
            "share_of_run": round(
                self.length / self.accountant.end_cycle, 4)
            if self.accountant.end_cycle else 0.0,
            "steps": len(self.steps),
            "truncated": self.truncated,
            "what": {k: self.what.get(k, 0) for k in WHAT_KEYS
                     if self.what.get(k, 0)},
            "why": self.ranked_why(source_map=source_map, top=top),
        }

    def dominant_blocker(self, source_map=None):
        """The largest blocked-on-future cause, or None when the chain
        is compute-bound."""
        for entry in self.ranked_why(source_map=source_map):
            if entry["cause"] == "blocked-on-future":
                return entry
        return None

    def render(self, source_map=None, top=8):
        """The ranked "why not linear" report as text."""
        data = self.to_dict(source_map=source_map, top=top)
        lines = [
            "critical path: %d cycles (%d%% of the %d-cycle run on %d "
            "nodes)%s" % (
                data["length"], round(100 * data["share_of_run"]),
                data["machine_cycles"], data["nodes"],
                "  [truncated]" if data["truncated"] else ""),
            "",
            "why not linear (share of critical path):",
        ]
        for entry in data["why"]:
            label = entry["cause"]
            if "line" in entry:
                label = "blocked-on-future at line %d: %s" % (
                    entry["line"], entry["text"])
            elif "pc" in entry:
                label = "blocked-on-future at pc=%#x" % entry["pc"]
            lines.append("  %5.1f%%  %10d cyc  %s"
                         % (100 * entry["share"], entry["cycles"], label))
        lines.append("")
        lines.append("what the path was doing:")
        length = data["length"] or 1
        for key in WHAT_KEYS:
            cycles = data["what"].get(key, 0)
            if cycles:
                lines.append("  %5.1f%%  %10d cyc  %s"
                             % (100.0 * cycles / length, cycles, key))
        return "\n".join(lines)


def _split_loaded(segment, span):
    """Integer pro-rata split of ``span`` path cycles across an episode's
    activity mix (largest-remainder rounding; exact tiling)."""
    total = segment.length
    mix = dict(segment.oncpu or {})
    spent = sum(mix.values())
    if total > spent:
        mix["loaded_wait"] = total - spent
    if not mix or total <= 0:
        return {"loaded_wait": span}
    if span == total:
        return mix
    shares = {}
    remainders = []
    allocated = 0
    for key in sorted(mix):
        exact = mix[key] * span
        shares[key] = exact // total
        allocated += shares[key]
        remainders.append((-(exact % total), key))
    remainders.sort()
    for _, key in remainders[: span - allocated]:
        shares[key] += 1
    return {k: v for k, v in shares.items() if v}


def analyze(accountant, source_map=None):
    """Walk the causal DAG backward from the run-ending exit.

    The accountant must be finalized.  Returns a :class:`CriticalPath`.
    """
    threads = accountant.threads
    if accountant.last_exit is not None:
        anchor_cycle, anchor_tid = accountant.last_exit
    elif accountant.order:
        anchor_tid = max(
            accountant.order,
            key=lambda tid: threads[tid].end_cycle or 0)
        anchor_cycle = threads[anchor_tid].end_cycle or 0
    else:
        return CriticalPath(accountant, None, 0, [], {}, {}, False)
    anchor_cycle = min(anchor_cycle, accountant.end_cycle or anchor_cycle)

    starts = {tid: [seg.start for seg in ledger.segments]
              for tid, ledger in threads.items()}

    steps = []
    what_totals = {}
    why_totals = {}
    wait_stack = []               # [(pc, floor)] of open future edges
    jumped = set()                # (tid, cycle) future-edge jumps taken
    tid, t = anchor_tid, anchor_cycle
    truncated = False

    def consume(a, b, owner, mix):
        site = wait_stack[-1][0] if wait_stack else None
        steps.append(PathStep(a, b, owner, mix, site))
        for key, value in mix.items():
            what_totals[key] = what_totals.get(key, 0) + value
        why_totals[site] = why_totals.get(site, 0) + (b - a)

    guard = 0
    while t > 0:
        guard += 1
        if guard > MAX_STEPS:
            truncated = True
            break
        while wait_stack and wait_stack[-1][1] >= t:
            wait_stack.pop()
        ledger = threads.get(tid)
        if ledger is None:
            truncated = True
            break
        segs = ledger.segments
        index = bisect_left(starts[tid], t) - 1
        if index < 0:
            # Before the thread's first segment: follow the spawn edge.
            parent = ledger.parent
            if parent is None or parent not in threads or parent == tid:
                break
            t = min(t, ledger.spawn_cycle)
            tid = parent
            continue
        seg = segs[index]
        if seg.end < t:
            # Cross-clock skew gap between threads; keep the tiling
            # honest by booking the hole explicitly.
            consume(seg.end, t, tid, {"skew": t - seg.end})
            t = seg.end
            continue
        if seg.kind == "blocked":
            waker = seg.waker
            if (waker is not None and waker != tid and waker in threads
                    and seg.start < t and (waker, t) not in jumped):
                # Future edge: the wait is covered by the producer chain.
                jumped.add((waker, t))
                wait_stack.append((seg.pc, seg.start))
                tid = waker
                continue
            consume(seg.start, t, tid, {"blocked_future": t - seg.start})
            t = seg.start
            continue
        if seg.kind in ("queue", "ready"):
            prev = seg.prev_free
            if (prev is not None and prev[1] is not None
                    and prev[1] != tid and prev[1] in threads
                    and seg.start < prev[0] < t):
                # Frame-limited wait: the load depended on the previous
                # occupant freeing the frame, not on our readiness.
                consume(prev[0], t, tid,
                        {_WAIT_WHAT[seg.kind]: t - prev[0]})
                t, tid = prev
                continue
            consume(seg.start, t, tid, {_WAIT_WHAT[seg.kind]: t - seg.start})
            t = seg.start
            continue
        # Loaded episode: split the covered span across its activity mix.
        span = t - seg.start
        consume(seg.start, t, tid, _split_loaded(seg, span))
        t = seg.start

    steps.reverse()
    return CriticalPath(accountant, anchor_tid, anchor_cycle, steps,
                        what_totals, why_totals, truncated)


def summarize(accountant, source_map=None, top=3):
    """Compact per-cell summary for the experiment engine.

    Small and JSON-ready: cached sweep cells carry this so
    ``april speedup`` can print the dominant blocker per (program,
    nodes) cell without re-running anything.
    """
    path = analyze(accountant, source_map=source_map)
    cons = accountant.conservation()
    dominant = path.dominant_blocker(source_map=source_map)
    return {
        "length": path.length,
        "share_of_run": round(path.length / cons["machine_cycles"], 4)
        if cons["machine_cycles"] else 0.0,
        "conservation_exact": cons["exact"],
        "what": {k: path.what.get(k, 0) for k in WHAT_KEYS
                 if path.what.get(k, 0)},
        "why": path.ranked_why(source_map=source_map, top=top),
        "dominant": dominant,
    }
