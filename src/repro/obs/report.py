"""Machine-readable run reports.

One JSON-ready dict for a whole machine: the ``MachineStats`` roll-up
plus every per-component counter (caches, controllers, directories,
network, scheduler, futures) — what ``april report`` and ``april run
--json`` emit, and what benchmarks/CI consume instead of parsing the
human ``render()`` text.
"""

from repro.runtime.sync import SyncAllocator


def component_counters(machine):
    """Per-component counter snapshot of a machine (JSON-ready)."""
    runtime = machine.runtime
    queues = [queue.counters() for queue in runtime.lazy_queues]
    sync = getattr(runtime, "sync", None)
    data = {
        "scheduler": runtime.scheduler.counters(),
        "futures": runtime.futures.counters(),
        "lazy": {
            "pushed": runtime.lazy_pushed,
            "stolen": runtime.lazy_stolen,
            "discards": sum(q["discards"] for q in queues),
            "peak_depth": max((q["peak_depth"] for q in queues), default=0),
            "live": sum(q["live"] for q in queues),
            "queues": queues,
        },
        "sync": (sync.counters() if sync is not None
                 else SyncAllocator.empty_counters()),
        # Per-CPU translation-cache tiers (predecode entries, fused
        # superblocks, JIT code cache): sizes, evictions,
        # invalidations, compiles — the observability surface for the
        # bounded caches and the self-modifying-code machinery.
        "translation": [cpu.translation_counters() for cpu in machine.cpus],
    }
    fabric = machine.fabric
    if fabric is not None:
        data["caches"] = [c.stats.to_dict() for c in fabric.caches]
        data["controllers"] = [c.stats.to_dict() for c in fabric.controllers]
        data["directories"] = [d.counters() for d in fabric.directories]
        data["network"] = fabric.network.stats.to_dict()
    return data


def machine_report(machine, result=None, observation=None, top=40):
    """The full report dict for a finished (or running) machine.

    Args:
        machine: the :class:`AlewifeMachine`.
        result: optional :class:`MachineResult` (adds value/output).
        observation: optional :class:`Observation` (adds event counts,
            timeline, and profile sections).
        top: profile entries to include.
    """
    config = machine.config
    report = {
        "config": {
            "num_processors": config.num_processors,
            "num_task_frames": config.num_task_frames,
            "memory_mode": config.memory_mode,
            "lazy_futures": config.lazy_futures,
            "placement": config.placement,
        },
        "stats": machine.stats().to_dict(),
        "components": component_counters(machine),
    }
    if result is not None:
        report["result"] = {
            "value": result.value,
            "cycles": result.cycles,
            "output": result.output,
        }
    if observation is not None:
        report.update(observation.to_dict(top=top))
    # Even without an Observation object, a machine may carry an attached
    # bus/sampler: surface drop counts and the window config so consumers
    # can detect truncated event streams instead of silently
    # under-attributing.
    bus = getattr(machine, "events", None)
    if bus is not None and "events" not in report:
        report["events"] = {
            "emitted": bus.emitted,
            "recorded": len(bus),
            "dropped": bus.dropped,
            "capacity": bus.capacity,
            "counts": bus.counts(),
        }
    sampler = getattr(machine, "sampler", None)
    if sampler is not None and "timeline" not in report:
        report["timeline"] = {"window": sampler.window,
                              "windows": len(sampler.windows)}
    return report
