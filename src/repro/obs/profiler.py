"""The hot-path profiler: where do the cycles actually go?

Hooks every processor's per-instruction ``profile_hook`` (a dormant
slot checked once per instruction, exactly like the tracer's) and
charges, to each PC, the *full* cycle cost of the instruction fetched
there — ALU cycle, memory stalls, and any trap/handler cycles it
provoked — measured as the processor-clock delta to the next fetch on
the same processor.  That attribution convention makes synchronization
costs land on the touching instruction, which is what you want when
hunting the paper's future-touch and switch-spin overheads.

The flat PC profile folds through the program's source map (assembler
line or Mul-T source line) so ``report()`` reads like a profiler, not a
disassembly listing.
"""


class ProfileEntry:
    """Aggregated cost of one PC (or one source line)."""

    __slots__ = ("key", "count", "cycles", "source")

    def __init__(self, key, count, cycles, source):
        self.key = key
        self.count = count
        self.cycles = cycles
        self.source = source

    def to_dict(self):
        record = {"count": self.count, "cycles": self.cycles}
        if isinstance(self.key, int):
            record["pc"] = self.key
        if self.source is not None:
            record["line"] = self.source[0]
            record["text"] = self.source[1]
        return record


class HotPathProfiler:
    """Flat profile of PC -> (execution count, cycle cost)."""

    def __init__(self):
        self._count = {}
        self._cost = {}
        self._state = {}          # node id -> [last pc, cycles at last pc]
        self._source_map = {}
        self.total_cycles = 0

    def attach(self, machine):
        """Install the per-instruction hook on every processor."""
        self._source_map = machine.program.source_map
        for cpu in machine.cpus:
            self._state[cpu.node_id] = [-1, 0]
            cpu.profile_hook = self._hook

    def detach(self, machine):
        for cpu in machine.cpus:
            # ``==``, not ``is``: each ``self._hook`` access builds a
            # fresh bound method; they compare equal, never identical.
            if cpu.profile_hook == self._hook:
                cpu.profile_hook = None

    def _hook(self, cpu, pc, instr):
        state = self._state[cpu.node_id]
        last_pc = state[0]
        if last_pc >= 0:
            cost = cpu.cycles - state[1]
            self._cost[last_pc] = self._cost.get(last_pc, 0) + cost
            self.total_cycles += cost
        self._count[pc] = self._count.get(pc, 0) + 1
        state[0] = pc
        state[1] = cpu.cycles

    # -- reports -----------------------------------------------------------

    def flat(self):
        """Per-PC entries, hottest first."""
        entries = [
            ProfileEntry(pc, count, self._cost.get(pc, 0),
                         self._source_map.get(pc))
            for pc, count in self._count.items()
        ]
        entries.sort(key=lambda e: (-e.cycles, e.key))
        return entries

    def by_line(self):
        """Entries folded to source lines (unmapped PCs fold together)."""
        folded = {}
        for entry in self.flat():
            key = entry.source if entry.source is not None else ("?", "?")
            if key in folded:
                folded[key].count += entry.count
                folded[key].cycles += entry.cycles
            else:
                source = entry.source
                folded[key] = ProfileEntry(
                    source[0] if source else -1, entry.count, entry.cycles,
                    source)
        entries = list(folded.values())
        entries.sort(key=lambda e: (-e.cycles, e.key))
        return entries

    def report(self, top=20, lines=True):
        """A human-readable profile table."""
        entries = self.by_line() if lines else self.flat()
        total = self.total_cycles or 1
        header = "source line" if lines else "pc"
        out = ["hot paths (%d instructions profiled, %d cycles)"
               % (sum(self._count.values()), self.total_cycles),
               "  %%cyc       cycles        count  %s" % header]
        for entry in entries[:top]:
            if lines:
                if entry.source is not None:
                    where = "line %4d: %s" % entry.source
                else:
                    where = "(no source map)"
            else:
                where = "%#07x" % entry.key
                if entry.source is not None:
                    where += "  ; line %d: %s" % entry.source
            out.append("%6.2f %12d %12d  %s" % (
                100.0 * entry.cycles / total, entry.cycles,
                entry.count, where))
        return "\n".join(out)

    def to_dict(self, top=None):
        flat = self.flat()
        lines = self.by_line()
        if top is not None:
            flat, lines = flat[:top], lines[:top]
        return {
            "total_cycles": self.total_cycles,
            "instructions": sum(self._count.values()),
            "flat": [entry.to_dict() for entry in flat],
            "by_line": [entry.to_dict() for entry in lines],
        }
