"""The hot-path profiler: where do the cycles actually go?

Hooks every processor's per-instruction ``profile_hook`` (a dormant
slot checked once per instruction, exactly like the tracer's) and
charges, to each PC, the *full* cycle cost of the instruction fetched
there — ALU cycle, memory stalls, and any trap/handler cycles it
provoked — measured as the processor-clock delta to the next fetch on
the same processor.  That attribution convention makes synchronization
costs land on the touching instruction, which is what you want when
hunting the paper's future-touch and switch-spin overheads.

The flat PC profile folds through the program's source map (assembler
line or Mul-T source line) so ``report()`` reads like a profiler, not a
disassembly listing.
"""


class ProfileEntry:
    """Aggregated cost of one PC (or one source line)."""

    __slots__ = ("key", "count", "cycles", "source")

    def __init__(self, key, count, cycles, source):
        self.key = key
        self.count = count
        self.cycles = cycles
        self.source = source

    def to_dict(self):
        record = {"count": self.count, "cycles": self.cycles}
        if isinstance(self.key, int):
            record["pc"] = self.key
        if self.source is not None:
            record["line"] = self.source[0]
            record["text"] = self.source[1]
        return record


class HotPathProfiler:
    """Flat profile of PC -> (execution count, cycle cost)."""

    def __init__(self):
        self._records = {}        # pc -> [count, cycles]
        self._state = {}          # node id -> [last record, cycles then]
        self._hooks = {}          # node id -> installed hook closure
        self._source_map = {}

    @property
    def total_cycles(self):
        """All cycles attributed so far (exactly the sum of the per-PC
        costs — the hook maintains no separate counter)."""
        return sum(record[1] for record in self._records.values())

    def attach(self, machine):
        """Install the per-instruction hook on every processor."""
        self._source_map = machine.program.source_map
        for cpu in machine.cpus:
            state = self._state[cpu.node_id] = [None, 0]
            hook = self._hooks[cpu.node_id] = self._make_hook(state)
            cpu.profile_hook = hook

    def detach(self, machine):
        for cpu in machine.cpus:
            if cpu.profile_hook is self._hooks.get(cpu.node_id):
                cpu.profile_hook = None

    def _make_hook(self, state):
        """Build one processor's hook closure.

        The per-CPU ``state`` list and the shared records dict are
        captured as closure cells, and ``state`` remembers the *record
        list* of the previous pc (not the pc itself), so the hook —
        which runs once per instruction — pays a single dict lookup
        per call on hot paths.
        """
        records = self._records

        def hook(cpu, pc, instr):
            cycles = cpu.cycles
            last = state[0]
            if last is not None:
                last[1] += cycles - state[1]
            try:
                record = records[pc]
            except KeyError:
                record = records[pc] = [0, 0]
            record[0] += 1
            state[0] = record
            state[1] = cycles

        return hook

    # -- reports -----------------------------------------------------------

    def flat(self):
        """Per-PC entries, hottest first."""
        entries = [
            ProfileEntry(pc, count, cycles, self._source_map.get(pc))
            for pc, (count, cycles) in self._records.items()
        ]
        entries.sort(key=lambda e: (-e.cycles, e.key))
        return entries

    def by_line(self):
        """Entries folded to source lines (unmapped PCs fold together)."""
        folded = {}
        for entry in self.flat():
            key = entry.source if entry.source is not None else ("?", "?")
            if key in folded:
                folded[key].count += entry.count
                folded[key].cycles += entry.cycles
            else:
                source = entry.source
                folded[key] = ProfileEntry(
                    source[0] if source else -1, entry.count, entry.cycles,
                    source)
        entries = list(folded.values())
        entries.sort(key=lambda e: (-e.cycles, e.key))
        return entries

    def report(self, top=20, lines=True):
        """A human-readable profile table."""
        entries = self.by_line() if lines else self.flat()
        total = self.total_cycles or 1
        header = "source line" if lines else "pc"
        out = ["hot paths (%d instructions profiled, %d cycles)"
               % (sum(r[0] for r in self._records.values()),
                  self.total_cycles),
               "  %%cyc       cycles        count  %s" % header]
        for entry in entries[:top]:
            if lines:
                if entry.source is not None:
                    where = "line %4d: %s" % entry.source
                else:
                    where = "(no source map)"
            else:
                where = "%#07x" % entry.key
                if entry.source is not None:
                    where += "  ; line %d: %s" % entry.source
            out.append("%6.2f %12d %12d  %s" % (
                100.0 * entry.cycles / total, entry.cycles,
                entry.count, where))
        return "\n".join(out)

    def to_dict(self, top=None):
        flat = self.flat()
        lines = self.by_line()
        if top is not None:
            flat, lines = flat[:top], lines[:top]
        return {
            "total_cycles": self.total_cycles,
            "instructions": sum(r[0] for r in self._records.values()),
            "flat": [entry.to_dict() for entry in flat],
            "by_line": [entry.to_dict() for entry in lines],
        }
