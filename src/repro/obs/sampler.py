"""Interval metrics: per-node utilization timelines.

End-of-run counters say *how many* cycles went to each Figure-5
category (useful / trap / switch / spin / stall / idle); the sampler
says *when*.  The machine's event loop calls :meth:`sample` whenever
simulated time crosses an ``window``-cycle boundary (one comparison per
loop iteration when attached; nothing when not), and the sampler
records the per-processor counter deltas since the previous boundary.

The result is a utilization timeline per node — the same decomposition
the paper's Figure 5 plots machine-wide, resolved over time — exported
as dicts (:meth:`to_dict`), Perfetto counter tracks (see
:mod:`repro.obs.perfetto`), or a terminal heat strip (:meth:`render`).
"""

#: Glyphs for 0-100% utilization in eighths, for :meth:`render`.
_SHADES = " .:-=+*#%@"

_CATEGORIES = None


def _category_names():
    """The processor's cycle-category names, imported lazily.

    ``repro.core.processor`` imports :mod:`repro.obs.events` for its
    trap-event hooks, so a module-level import here would be circular.
    """
    global _CATEGORIES
    if _CATEGORIES is None:
        from repro.core.processor import CATEGORIES
        _CATEGORIES = CATEGORIES
    return _CATEGORIES


class IntervalSampler:
    """Buckets per-processor cycle categories per N-cycle window."""

    def __init__(self, window=4096):
        if window <= 0:
            raise ValueError("sampler window must be positive")
        self.window = window
        self.next_sample_at = window
        self.windows = []               # [(end_cycle, [per-node deltas])]
        self._cpus = None
        self._last = None               # per-cpu previous counter values

    def attach(self, cpus):
        """Start sampling a machine's processors (counters as of now)."""
        self._cpus = list(cpus)
        self._last = [self._snapshot(cpu) for cpu in self._cpus]

    @staticmethod
    def _snapshot(cpu):
        stats = cpu.stats
        return [getattr(stats, name) for name in _category_names()]

    def sample(self, now, cpus=None):
        """Close the current window at ``now`` and start the next."""
        cpus = self._cpus if cpus is None else cpus
        names = _category_names()
        if self._last is None:
            self.attach(cpus)
            # Attached mid-run: counters to date form the first window.
            self._last = [[0] * len(names) for _ in cpus]
        deltas = []
        for index, cpu in enumerate(cpus):
            current = self._snapshot(cpu)
            previous = self._last[index]
            deltas.append({
                name: current[i] - previous[i]
                for i, name in enumerate(names)
            })
            self._last[index] = current
        self.windows.append((now, deltas))
        self.next_sample_at = (now // self.window + 1) * self.window

    def finish(self, now):
        """Flush the final partial window (run ended mid-window)."""
        if self._cpus is None:
            return
        pending = any(
            self._snapshot(cpu) != self._last[i]
            for i, cpu in enumerate(self._cpus)
        )
        if pending:
            self.sample(now)

    # -- queries -----------------------------------------------------------

    def __len__(self):
        return len(self.windows)

    def utilization_series(self, node=None):
        """Per-window useful-cycle fraction for one node (or machine-wide)."""
        series = []
        for _end, deltas in self.windows:
            rows = deltas if node is None else [deltas[node]]
            useful = sum(row["useful"] for row in rows)
            total = sum(sum(row.values()) for row in rows)
            series.append(useful / total if total else 0.0)
        return series

    def to_dict(self):
        return {
            "window": self.window,
            "categories": list(_category_names()),
            "windows": [
                {"end_cycle": end, "nodes": deltas}
                for end, deltas in self.windows
            ],
        }

    def render(self, max_windows=64):
        """A terminal heat strip: one row per node, one glyph per window."""
        if not self.windows:
            return "(no samples)"
        windows = self.windows[-max_windows:]
        num_nodes = len(windows[0][1])
        lines = ["utilization timeline (window=%d cycles, %s..%s)" % (
            self.window,
            "%d" % (windows[0][0] - self.window), "%d" % windows[-1][0])]
        for node in range(num_nodes):
            glyphs = []
            for _end, deltas in windows:
                row = deltas[node]
                total = sum(row.values())
                fraction = row["useful"] / total if total else 0.0
                glyphs.append(_SHADES[min(int(fraction * (len(_SHADES) - 1)
                                              + 0.5), len(_SHADES) - 1)])
            lines.append("node %2d |%s|" % (node, "".join(glyphs)))
        lines.append("        (%r = idle ... %r = fully useful)"
                     % (_SHADES[0], _SHADES[-1]))
        return "\n".join(lines)
