"""The :class:`Observation` session: wire consumers into a machine.

One object gathers the event bus, the interval sampler, the hot-path
profiler, and the coherence-transaction tracer, and knows how to thread
them through every instrumented component of an
:class:`AlewifeMachine`.  Components whose ``events``/``txn`` slots stay
``None`` keep their no-op fast path; attaching is what turns the
dormant hooks on.
"""

import json

from repro.obs.events import EventBus
from repro.obs.perfetto import perfetto_trace
from repro.obs.profiler import HotPathProfiler
from repro.obs.report import machine_report
from repro.obs.sampler import IntervalSampler
from repro.obs.txn import TransactionTracer


class Observation:
    """Observability configuration + attached consumers for one run.

    Args:
        events: record the structured event stream.
        capacity: event ring size (None = unbounded).
        window: sampler window in cycles; 0/None disables the sampler.
        profile: enable the per-instruction hot-path profiler.
        txn: enable the coherence-transaction tracer (+ histograms).
        txn_capacity: finished-transaction ring size (None = unbounded).
    """

    def __init__(self, events=True, capacity=1_000_000, window=4096,
                 profile=False, txn=False, txn_capacity=200_000):
        self.bus = EventBus(capacity) if events else None
        self.sampler = IntervalSampler(window) if window else None
        self.profiler = HotPathProfiler() if profile else None
        self.txn = TransactionTracer(txn_capacity) if txn else None
        self.machine = None

    @property
    def hist(self):
        """The transaction-latency histograms (None without ``txn``)."""
        return self.txn.histograms if self.txn is not None else None

    # -- wiring ------------------------------------------------------------

    def attach(self, machine):
        """Install every enabled consumer on a machine (before ``run``)."""
        self.machine = machine
        if self.sampler is not None:
            self.sampler.attach(machine.cpus)
            machine.sampler = self.sampler
        if self.profiler is not None:
            self.profiler.attach(machine)
        bus = self.bus
        if bus is not None:
            machine.events = bus
            runtime = machine.runtime
            runtime.events = bus
            runtime.scheduler.events = bus
            runtime.futures.events = bus
            for cpu in machine.cpus:
                cpu.events = bus
            fabric = machine.fabric
            if fabric is not None:
                fabric.network.events = bus
                for cache in fabric.caches:
                    cache.events = bus
                for controller in fabric.controllers:
                    controller.events = bus
                for directory in fabric.directories:
                    directory.events = bus
        tracer = self.txn
        if tracer is not None:
            for cpu in machine.cpus:
                cpu.txn = tracer
            fabric = machine.fabric
            if fabric is not None:
                fabric.network.txn = tracer
                for component in (fabric.caches + fabric.controllers
                                  + fabric.directories):
                    component.txn = tracer

    def detach(self):
        """Remove every hook installed by :meth:`attach`."""
        machine = self.machine
        if machine is None:
            return
        machine.sampler = None
        machine.events = None
        runtime = machine.runtime
        runtime.events = None
        runtime.scheduler.events = None
        runtime.futures.events = None
        for cpu in machine.cpus:
            cpu.events = None
            cpu.txn = None
        if self.profiler is not None:
            self.profiler.detach(machine)
        fabric = machine.fabric
        if fabric is not None:
            fabric.network.events = None
            fabric.network.txn = None
            for component in (fabric.caches + fabric.controllers
                              + fabric.directories):
                component.events = None
                component.txn = None

    # -- exports -----------------------------------------------------------

    def perfetto(self):
        """The Chrome/Perfetto trace dict for the observed run."""
        if self.bus is None:
            raise ValueError("Observation was built with events=False")
        machine = self.machine
        return perfetto_trace(self.bus, len(machine.cpus), machine.time,
                              sampler=self.sampler, transactions=self.txn)

    def write_perfetto(self, path):
        """Write the Perfetto trace JSON; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.perfetto(), handle)
        return path

    def write_txn(self, path):
        """Write the transaction trace JSON; returns the path."""
        if self.txn is None:
            raise ValueError("Observation was built with txn=False")
        return self.txn.write(path)

    def report(self, result=None, top=40):
        """Full machine report dict (stats + components + observations)."""
        return machine_report(self.machine, result=result, observation=self,
                              top=top)

    def to_dict(self, top=40):
        """The observation sections of the report."""
        data = {}
        if self.bus is not None:
            data["events"] = {
                "emitted": self.bus.emitted,
                "recorded": len(self.bus),
                "dropped": self.bus.dropped,
                "counts": self.bus.counts(),
            }
        if self.sampler is not None:
            data["timeline"] = self.sampler.to_dict()
        if self.profiler is not None:
            data["profile"] = self.profiler.to_dict(top=top)
        if self.txn is not None:
            data["transactions"] = self.txn.summary()
            data["histograms"] = self.txn.histograms.to_dict()
        return data


def for_job(config):
    """The :class:`Observation` a sweep worker attaches for one job.

    Workers (see :mod:`repro.exp.runner`) capture each job's machine
    report; on a coherent-mode config they additionally trace
    transactions so the cached result carries the latency-histogram
    summary.  Ideal-mode runs return ``None`` — the plain
    ``machine_report`` already covers everything observable there, and
    skipping the Observation keeps every dormant fast path.
    """
    if getattr(config, "memory_mode", "ideal") != "coherent":
        return None
    return Observation(events=False, window=0, profile=False, txn=True)
