"""The :class:`Observation` session: wire consumers into a machine.

One object gathers the event bus, the interval sampler, the hot-path
profiler, and the coherence-transaction tracer, and knows how to thread
them through every instrumented component of an
:class:`AlewifeMachine`.  Components whose ``events``/``txn`` slots stay
``None`` keep their no-op fast path; attaching is what turns the
dormant hooks on.
"""

import json

from repro.obs.critpath import analyze as _critpath_analyze
from repro.obs.critpath import summarize as _critpath_summarize
from repro.obs.events import EventBus
from repro.obs.lifetime import LifetimeAccountant
from repro.obs.perfetto import perfetto_trace
from repro.obs.profiler import HotPathProfiler
from repro.obs.report import machine_report
from repro.obs.sampler import IntervalSampler
from repro.obs.txn import TransactionTracer


class Observation:
    """Observability configuration + attached consumers for one run.

    Args:
        events: record the structured event stream.
        capacity: event ring size (None = unbounded).
        window: sampler window in cycles; 0/None disables the sampler.
        profile: enable the per-instruction hot-path profiler.
        txn: enable the coherence-transaction tracer (+ histograms).
        txn_capacity: finished-transaction ring size (None = unbounded).
        threads: enable the per-thread lifetime accountant (and the
            critical-path analyzer on top of it).  Forces an event bus —
            the accountant subscribes synchronously, so ring capacity
            never truncates its view.
    """

    def __init__(self, events=True, capacity=1_000_000, window=4096,
                 profile=False, txn=False, txn_capacity=200_000,
                 threads=False):
        self.bus = EventBus(capacity) if (events or threads) else None
        self.sampler = IntervalSampler(window) if window else None
        self.profiler = HotPathProfiler() if profile else None
        self.txn = TransactionTracer(txn_capacity) if txn else None
        self.lifetime = LifetimeAccountant() if threads else None
        self.machine = None

    @property
    def hist(self):
        """The transaction-latency histograms (None without ``txn``)."""
        return self.txn.histograms if self.txn is not None else None

    # -- wiring ------------------------------------------------------------

    def attach(self, machine):
        """Install every enabled consumer on a machine (before ``run``)."""
        self.machine = machine
        if self.sampler is not None:
            self.sampler.attach(machine.cpus)
            machine.sampler = self.sampler
        if self.profiler is not None:
            self.profiler.attach(machine)
        bus = self.bus
        if bus is not None:
            machine.events = bus
            runtime = machine.runtime
            runtime.events = bus
            runtime.scheduler.events = bus
            runtime.futures.events = bus
            for cpu in machine.cpus:
                cpu.events = bus
            fabric = machine.fabric
            if fabric is not None:
                fabric.network.events = bus
                for cache in fabric.caches:
                    cache.events = bus
                for controller in fabric.controllers:
                    controller.events = bus
                for directory in fabric.directories:
                    directory.events = bus
        lifetime = self.lifetime
        if lifetime is not None:
            lifetime.subscribe(bus)
            machine.runtime.lifetime = lifetime
            machine.runtime.scheduler.lifetime = lifetime
            for cpu in machine.cpus:
                cpu.lifetime = lifetime
        tracer = self.txn
        if tracer is not None:
            for cpu in machine.cpus:
                cpu.txn = tracer
            fabric = machine.fabric
            if fabric is not None:
                fabric.network.txn = tracer
                for component in (fabric.caches + fabric.controllers
                                  + fabric.directories):
                    component.txn = tracer

    def detach(self):
        """Remove every hook installed by :meth:`attach`."""
        machine = self.machine
        if machine is None:
            return
        machine.sampler = None
        machine.events = None
        runtime = machine.runtime
        runtime.events = None
        runtime.scheduler.events = None
        runtime.futures.events = None
        runtime.lifetime = None
        runtime.scheduler.lifetime = None
        for cpu in machine.cpus:
            cpu.events = None
            cpu.txn = None
            cpu.lifetime = None
        if self.profiler is not None:
            self.profiler.detach(machine)
        fabric = machine.fabric
        if fabric is not None:
            fabric.network.events = None
            fabric.network.txn = None
            for component in (fabric.caches + fabric.controllers
                              + fabric.directories):
                component.events = None
                component.txn = None

    # -- exports -----------------------------------------------------------

    def perfetto(self):
        """The Chrome/Perfetto trace dict for the observed run."""
        if self.bus is None:
            raise ValueError("Observation was built with events=False")
        machine = self.machine
        lifetime = self._finalized_lifetime()
        return perfetto_trace(self.bus, len(machine.cpus), machine.time,
                              sampler=self.sampler, transactions=self.txn,
                              lifetime=lifetime)

    def write_perfetto(self, path):
        """Write the Perfetto trace JSON; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.perfetto(), handle)
        return path

    def write_txn(self, path):
        """Write the transaction trace JSON; returns the path."""
        if self.txn is None:
            raise ValueError("Observation was built with txn=False")
        return self.txn.write(path)

    def report(self, result=None, top=40):
        """Full machine report dict (stats + components + observations)."""
        return machine_report(self.machine, result=result, observation=self,
                              top=top)

    # -- lifetime accounting / critical path -------------------------------

    def _source_map(self):
        machine = self.machine
        if machine is None:
            return None
        return getattr(machine.program, "source_map", None)

    def _finalized_lifetime(self):
        """The accountant, finalized against the machine (or None)."""
        if self.lifetime is None or self.machine is None:
            return self.lifetime
        return self.lifetime.finalize(self.machine)

    def thread_accounting(self, top=None):
        """The per-thread cycle tables (see :mod:`repro.obs.lifetime`)."""
        lifetime = self._finalized_lifetime()
        if lifetime is None:
            raise ValueError("Observation was built with threads=False")
        return lifetime.to_dict(source_map=self._source_map(), top=top)

    def critical_path(self):
        """The :class:`~repro.obs.critpath.CriticalPath` of the run."""
        lifetime = self._finalized_lifetime()
        if lifetime is None:
            raise ValueError("Observation was built with threads=False")
        return _critpath_analyze(lifetime, source_map=self._source_map())

    def critpath_summary(self, top=3):
        """Compact per-cell summary for the experiment engine."""
        lifetime = self._finalized_lifetime()
        if lifetime is None:
            return None
        return _critpath_summarize(lifetime, source_map=self._source_map(),
                                   top=top)

    def explain_render(self, top=12):
        """Human-readable ``april explain`` report (accounting + path)."""
        source_map = self._source_map()
        lifetime = self._finalized_lifetime()
        if lifetime is None:
            raise ValueError("Observation was built with threads=False")
        path = _critpath_analyze(lifetime, source_map=source_map)
        return "%s\n\n%s" % (lifetime.render(source_map=source_map, top=top),
                             path.render(source_map=source_map, top=top))

    def explain(self, top=None, why_top=None):
        """The full ``april explain`` payload: accounting + critical path.

        Byte-stable across identical runs (dense tids, no wall-clock).
        """
        source_map = self._source_map()
        lifetime = self._finalized_lifetime()
        if lifetime is None:
            raise ValueError("Observation was built with threads=False")
        path = _critpath_analyze(lifetime, source_map=source_map)
        return {
            "threads": lifetime.to_dict(source_map=source_map, top=top),
            "critical_path": path.to_dict(source_map=source_map,
                                          top=why_top),
        }

    def to_dict(self, top=40):
        """The observation sections of the report."""
        data = {}
        if self.bus is not None:
            data["events"] = {
                "emitted": self.bus.emitted,
                "recorded": len(self.bus),
                "dropped": self.bus.dropped,
                "capacity": self.bus.capacity,
                "counts": self.bus.counts(),
            }
        if self.sampler is not None:
            data["timeline"] = self.sampler.to_dict()
        if self.profiler is not None:
            data["profile"] = self.profiler.to_dict(top=top)
        if self.txn is not None:
            data["transactions"] = self.txn.summary()
            data["histograms"] = self.txn.histograms.to_dict()
        if self.lifetime is not None and self.machine is not None:
            data["threads"] = self.thread_accounting(top=top)
        return data


def for_job(config):
    """The :class:`Observation` a sweep worker attaches for one job.

    Workers (see :mod:`repro.exp.runner`) capture each job's machine
    report; on a coherent-mode config they additionally trace
    transactions so the cached result carries the latency-histogram
    summary, and on any multiprocessor cell they run the lifetime
    accountant so the cached result carries a critical-path summary
    (``april speedup`` prints the dominant blocker per cell from it).
    Sequential ideal-mode runs return ``None`` — the plain
    ``machine_report`` already covers everything observable there, and
    skipping the Observation keeps every dormant fast path.
    """
    coherent = getattr(config, "memory_mode", "ideal") == "coherent"
    parallel = getattr(config, "num_processors", 1) > 1
    if not coherent and not parallel:
        return None
    return Observation(events=False, capacity=4096, window=0, profile=False,
                       txn=coherent, threads=parallel)
