"""Streaming latency histograms with fixed log2 buckets.

A :class:`Log2Histogram` is O(1) memory: a fixed array of power-of-two
buckets (bucket ``i`` holds values whose bit length is ``i``, i.e. the
range ``[2^(i-1), 2^i)``; bucket 0 holds exactly 0).  Recording is one
``bit_length`` plus three adds, so the histograms can sit on the
transaction-completion path of a fully traced run without changing its
complexity.

Percentiles are bucket-resolved: ``percentile(p)`` returns the upper
bound of the bucket containing the p-th ranked value (clamped to the
observed maximum), which is exact to within the 2x bucket width — the
resolution the SPARC-T3-style latency-distribution analyses use.

:class:`LatencyHistograms` keys one histogram per transaction kind, per
hop distance to home, and per issuing node — the three axes the paper's
latency-tolerance argument turns on.
"""

#: Fixed bucket count: values up to 2^33-1 cycles (beyond any run).
NUM_BUCKETS = 34


class Log2Histogram:
    """One streaming histogram over non-negative integer samples."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        self.counts = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0
        self.min = None
        self.max = 0

    def record(self, value):
        """Add one sample (negative values clamp to 0)."""
        if value < 0:
            value = 0
        index = value.bit_length()
        if index >= NUM_BUCKETS:
            index = NUM_BUCKETS - 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    def merge(self, other):
        """Fold ``other``'s samples into this histogram, exactly.

        Bucket counts, totals, and extrema add/extremize, so the merged
        histogram is indistinguishable from one that recorded the
        concatenated sample streams — percentiles included.  That is
        what lets per-worker and per-connection histograms aggregate
        into a ``/metrics`` rollup with no approximation beyond the
        bucket width both sides already share.  Returns ``self``.
        """
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def __iadd__(self, other):
        return self.merge(other)

    def __add__(self, other):
        merged = Log2Histogram()
        merged.merge(self)
        merged.merge(other)
        return merged

    @staticmethod
    def bucket_bounds(index):
        """Inclusive ``(low, high)`` value range of a bucket."""
        if index == 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, p):
        """Upper bound of the bucket holding the p-th ranked sample.

        ``p`` must lie in ``(0, 100]`` (a 0th percentile has no ranked
        sample to name); anything else raises :class:`ValueError`.
        Returns ``None`` for an empty histogram — an explicit "no data"
        rather than a fake 0-cycle latency.
        """
        if not 0 < p <= 100:
            raise ValueError(
                "percentile p must be in (0, 100], got %r" % (p,))
        if not self.count:
            return None
        rank = max(1, -(-self.count * p // 100))   # ceil without floats
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return min(self.bucket_bounds(index)[1], self.max)
        return self.max

    def to_dict(self):
        """JSON-ready summary: count, sum, mean, extrema, percentiles,
        and the non-empty buckets labelled by their value range."""
        buckets = {}
        for index, bucket_count in enumerate(self.counts):
            if bucket_count:
                low, high = self.bucket_bounds(index)
                buckets["%d-%d" % (low, high)] = bucket_count
        return {
            "count": self.count,
            "sum": self.total,
            "mean": round(self.mean, 2),
            "min": self.min if self.min is not None else 0,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": buckets,
        }


class LatencyHistograms:
    """Transaction-latency histograms keyed by kind, hop distance, node."""

    def __init__(self):
        self.by_kind = {}
        self.by_hops = {}
        self.by_node = {}

    def observe(self, kind, latency, hops, node):
        """Record one completed transaction's latency on all three axes."""
        for table, key in ((self.by_kind, kind),
                           (self.by_hops, hops),
                           (self.by_node, node)):
            hist = table.get(key)
            if hist is None:
                hist = table[key] = Log2Histogram()
            hist.record(latency)

    def to_dict(self):
        return {
            "kinds": {str(k): h.to_dict() for k, h in self.by_kind.items()},
            "hops": {str(k): h.to_dict() for k, h in self.by_hops.items()},
            "nodes": {str(k): h.to_dict() for k, h in self.by_node.items()},
        }
