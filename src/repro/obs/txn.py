"""Coherence-transaction tracing: causal spans for every memory transaction.

The aggregate counters of PR 1 say *how many* remote misses happened;
this module says what each one *did*.  The cache controller begins a
:class:`TxnRecord` at transaction issue (cache miss, write upgrade,
full/empty fault); while it walks the protocol legs the instrumented
network, directory, and caches report each leg into the active record
(request to home, directory service, per-victim invalidation round
trips, owner fetch, response, write-back).  The controller then commits
the record with the computed completion time and the tracer keeps it
pending until the data is actually consumed, linking every switch-spin
re-trap (and the trap handler's context switch) to the transaction that
caused it.

Every hook site in the simulator stays dormant behind one
``txn is not None`` attribute test, exactly like the PR-1 ``events``
hooks, so untraced runs pay one pointer comparison per site.

Phases tile the transaction exactly: ``request`` (issue to home
arrival), ``service`` (directory/memory), ``coherence`` (the max of the
parallel invalidation/owner-fetch round trips, when any), ``response``
(grant back to the requester) — so the sum of phase durations equals
the controller's computed completion latency, which the tests assert.

Completed records feed :class:`~repro.obs.hist.LatencyHistograms`
(latency by kind, by hop distance to home, by node) and a bounded ring
(oldest dropped first, counted).  Exports: JSON (``april run --txn``),
report sections (``april report --histograms``), and Perfetto
async/flow events (see :mod:`repro.obs.perfetto`).

Thread ids in exports are renumbered densely by first appearance, so
two identical runs in one process (which share the module-global tid
counter) produce byte-identical transaction JSON.
"""

import json
from collections import deque

from repro.obs.hist import LatencyHistograms

#: Trap kinds a transaction can provoke (the MEXC path + full/empty).
MEMORY_TRAP_KINDS = ("CACHE_MISS", "EMPTY_LOAD", "FULL_STORE")


class TxnRecord:
    """One coherence transaction: identity, phases, legs, traps."""

    __slots__ = ("txn_id", "kind", "node", "block", "home", "write",
                 "upgrade", "remote", "issue", "ready", "filled", "thread",
                 "pc", "frame", "phases", "legs", "traps", "hops", "retries",
                 "open")

    def __init__(self, txn_id, node, block, home, write, now):
        self.txn_id = txn_id
        self.kind = None
        self.node = node
        self.block = block
        self.home = home
        self.write = write
        self.upgrade = False
        self.remote = False
        self.issue = now
        self.ready = None
        self.filled = None
        self.thread = None
        self.pc = None
        self.frame = 0
        self.phases = []          # (name, start, end), tiling issue..ready
        self.legs = []            # component-reported sub-events
        self.traps = []           # switch-spin re-traps linked to this txn
        self.hops = 0             # request-leg hop distance to home
        self.retries = 0
        self.open = True

    @property
    def latency(self):
        return None if self.ready is None else self.ready - self.issue

    def to_dict(self):
        return {
            "id": self.txn_id,
            "kind": self.kind,
            "node": self.node,
            "block": self.block,
            "home": self.home,
            "write": self.write,
            "remote": self.remote,
            "issue": self.issue,
            "ready": self.ready,
            "filled": self.filled,
            "latency": self.latency,
            "thread": self.thread,
            "pc": self.pc,
            "frame": self.frame,
            "hops": self.hops,
            "retries": self.retries,
            "phases": [{"name": name, "start": start, "end": end}
                       for name, start, end in self.phases],
            "legs": list(self.legs),
            "traps": list(self.traps),
        }

    def __repr__(self):
        return "TxnRecord(%d, %s, block=%#x, issue=%d, ready=%s)" % (
            self.txn_id, self.kind, self.block, self.issue, self.ready)


class TransactionTracer:
    """Span store + online reductions for coherence transactions.

    Args:
        capacity: finished-record ring size; oldest dropped (and
            counted) past it.  ``None`` keeps everything.  Histograms
            and kind counts see every transaction regardless.
    """

    def __init__(self, capacity=200_000):
        self.finished = deque(maxlen=capacity)
        self.dropped = 0
        self.emitted = 0
        self.by_kind = {}
        self.histograms = LatencyHistograms()
        self._next_id = 1
        self._active = None       # record being walked by the controller
        self._pending = {}        # (node, block) -> TxnRecord
        self._fe = {}             # (node, address) -> full/empty TxnRecord
        self._last_trap = {}      # node -> trap dict awaiting its action

    @property
    def capacity(self):
        return self.finished.maxlen

    # -- controller hooks --------------------------------------------------

    def begin(self, node, block, home, write, now, cpu=None, upgrade=False,
              kind=None):
        """A controller starts walking a transaction's protocol legs."""
        record = TxnRecord(self._next_id, node, block, home, write, now)
        self._next_id += 1
        record.upgrade = upgrade
        record.kind = kind
        self._attribute(record, cpu)
        self._active = record
        return record

    def commit(self, completion, local, kind=None):
        """The walk finished; the completion time is known.

        Remote transactions stay pending (the processor switch-spins
        back for the data); write-backs and explicit-kind transactions
        finish immediately.
        """
        record = self._active
        if record is None:
            return None
        self._active = None
        record.ready = completion
        record.remote = not local
        for leg in record.legs:
            if leg.get("type") == "net":
                record.hops = leg["hops"]
                break
        if record.kind is None:
            if kind is not None:
                record.kind = kind
            elif record.upgrade:
                record.kind = "upgrade"
            else:
                record.kind = (("remote_" if record.remote else "local_")
                               + ("write" if record.write else "read"))
        if record.kind == "writeback":
            record.filled = completion
            self._finalize(record)
        else:
            self._pending[(record.node, record.block)] = record
        return record

    def complete(self, node, block, now):
        """The requesting node consumed the data: close the record."""
        record = self._pending.pop((node, block), None)
        if record is None:
            return
        record.filled = now
        self._finalize(record)

    def trap_retry(self, node, block, now, cpu=None):
        """The controller trapped the processor on a pending transaction."""
        record = self._pending.get((node, block))
        if record is None:
            return
        trap = self._trap_dict(now, cpu)
        record.traps.append(trap)
        record.retries += 1
        self._last_trap[node] = trap

    def fe_fault(self, node, address, trap_kind, now, cpu=None):
        """A full/empty mismatch trapped the processor at ``address``."""
        key = (node, address)
        record = self._fe.get(key)
        if record is None:
            record = TxnRecord(self._next_id, node, address, None, False, now)
            self._next_id += 1
            record.kind = "full_empty"
            record.write = trap_kind == "FULL_STORE"
            record.legs.append({"type": "fe", "trap": trap_kind})
            self._attribute(record, cpu)
            self._fe[key] = record
        trap = self._trap_dict(now, cpu)
        record.traps.append(trap)
        record.retries += 1
        self._last_trap[node] = trap

    def fe_sync(self, node, address, now):
        """A previously-faulting full/empty access finally succeeded."""
        record = self._fe.pop((node, address), None)
        if record is None:
            return
        record.ready = now
        record.filled = now
        self._finalize(record)

    def mark_phases(self, issue, arrive, service_done, coherence_done, done):
        """The controller reports the sequential phase boundaries."""
        record = self._active
        if record is None:
            return
        record.phases = [("request", issue, arrive),
                         ("service", arrive, service_done)]
        if coherence_done > service_done:
            record.phases.append(("coherence", service_done, coherence_done))
        record.phases.append(("response", coherence_done, done))

    # -- component hooks (network / directory / cache) ---------------------

    def net_leg(self, src, dst, flits, hops, start, end, contention):
        record = self._active
        if record is None:
            return
        record.legs.append({"type": "net", "src": src, "dst": dst,
                            "flits": flits, "hops": hops, "start": start,
                            "end": end, "contention": contention})

    def dir_leg(self, home, block, op, state, invalidations, now):
        record = self._active
        if record is None:
            return
        record.legs.append({"type": "dir", "home": home, "op": op,
                            "state": state, "invalidations": invalidations,
                            "at": now})

    def inv_leg(self, node, block, state, now):
        record = self._active
        if record is None:
            return
        record.legs.append({"type": "invalidate", "node": node,
                            "state": state, "at": now})

    # -- processor hook ----------------------------------------------------

    def trap_action(self, node, trap_kind, action, cycle, to_frame):
        """The trap the controller predicted was taken; link its outcome
        (the context switch / yield the handler chose) back to the
        transaction's trap record."""
        if trap_kind not in MEMORY_TRAP_KINDS:
            return
        trap = self._last_trap.pop(node, None)
        if trap is None:
            return
        trap["trap"] = trap_kind
        trap["action"] = action
        trap["to_frame"] = to_frame
        trap["taken_at"] = cycle

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _attribute(record, cpu):
        if cpu is None:
            return
        frame = cpu.frame
        record.frame = frame.index
        record.pc = frame.pc
        thread = getattr(frame, "thread", None)
        if thread is not None:
            record.thread = thread.tid

    @staticmethod
    def _trap_dict(now, cpu):
        trap = {"cycle": now, "thread": None, "pc": None}
        if cpu is not None:
            frame = cpu.frame
            trap["pc"] = frame.pc
            thread = getattr(frame, "thread", None)
            if thread is not None:
                trap["thread"] = thread.tid
        return trap

    def _finalize(self, record):
        record.open = False
        self.emitted += 1
        self.by_kind[record.kind] = self.by_kind.get(record.kind, 0) + 1
        ring = self.finished
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(record)
        self.histograms.observe(record.kind, record.latency or 0,
                                record.hops, record.node)

    # -- queries / exports -------------------------------------------------

    def open_records(self):
        """Transactions still in flight, in issue order."""
        records = list(self._pending.values()) + list(self._fe.values())
        if self._active is not None:
            records.append(self._active)
        return sorted(records, key=lambda r: r.txn_id)

    def anomalies(self, spin_storm=8, hot_line=4):
        """Flag switch-spin storms and invalidation hot lines.

        A *storm* is one thread re-trapping on one transaction at least
        ``spin_storm`` times (latency the context-switch mechanism is
        failing to hide); a *hot line* is a block accumulating at least
        ``hot_line`` invalidations across transactions (write sharing
        that keeps yanking the line between caches).
        """
        storms = []
        hot = {}
        for record in list(self.finished) + self.open_records():
            per_thread = {}
            for trap in record.traps:
                tid = trap["thread"]
                per_thread[tid] = per_thread.get(tid, 0) + 1
            if per_thread:
                tid, count = max(per_thread.items(), key=lambda kv: kv[1])
                if count >= spin_storm:
                    storms.append({"txn": record.txn_id, "kind": record.kind,
                                   "block": record.block, "thread": tid,
                                   "retraps": count})
            for leg in record.legs:
                if leg["type"] == "invalidate":
                    hot[record.block] = hot.get(record.block, 0) + 1
        hot_lines = [{"block": block, "invalidations": count}
                     for block, count in sorted(hot.items())
                     if count >= hot_line]
        return {
            "spin_storm_threshold": spin_storm,
            "hot_line_threshold": hot_line,
            "switch_spin_storms": storms,
            "invalidation_hot_lines": hot_lines,
        }

    def summary(self):
        """The compact section for ``machine_report()``."""
        return {
            "emitted": self.emitted,
            "recorded": len(self.finished),
            "dropped": self.dropped,
            "open": len(self._pending) + len(self._fe),
            "by_kind": dict(self.by_kind),
            "anomalies": self.anomalies(),
        }

    def to_payload(self):
        """The full JSON-ready document (thread ids normalized)."""
        payload = {
            "transactions": [r.to_dict() for r in self.finished],
            "open": [r.to_dict() for r in self.open_records()],
            "emitted": self.emitted,
            "dropped": self.dropped,
            "by_kind": dict(self.by_kind),
            "histograms": self.histograms.to_dict(),
            "anomalies": self.anomalies(),
        }
        _normalize_threads(payload)
        return payload

    def to_json(self):
        """Deterministic serialization: identical runs give identical
        bytes (per-tracer ids, normalized tids, sorted keys)."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    def write(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
        return path


def _normalize_threads(payload):
    """Renumber thread ids densely by first appearance, in place.

    Virtual-thread ids come from a process-global counter, so two runs
    in one process see different raw tids; the export must not.
    """
    mapping = {}

    def remap(tid):
        if tid is None:
            return None
        if tid not in mapping:
            mapping[tid] = len(mapping)
        return mapping[tid]

    for record in payload["transactions"] + payload["open"]:
        record["thread"] = remap(record["thread"])
        for trap in record["traps"]:
            trap["thread"] = remap(trap["thread"])
    for storm in payload["anomalies"]["switch_spin_storms"]:
        storm["thread"] = remap(storm["thread"])
