"""Flight recorder + hang watchdog: always-on black-box observability.

Two coupled consumers designed to be cheap enough to leave attached on
every run:

* :class:`FlightRecorder` — a bounded per-node ring of the *coarse*
  event kinds (traps, context switches, scheduling, futures, network
  deliveries, memory-transaction completions — never per-instruction),
  subscribed through an :class:`~repro.obs.events.EventBus` marked
  ``coarse=True`` so the PR 5 superblock fast loops stay eligible:
  every one of those emission sites fires outside fused superblocks and
  with identical cycle stamps on the fast and reference paths (the
  lockstep harness pins this).

* :class:`Watchdog` — every ``interval`` cycles it inspects the
  run-time system directly (no per-event cost): *deadlock* is every
  thread blocked on an unresolved future with nothing loaded, ready, or
  stealable; *livelock* is a spin storm — full/empty and unresolved-
  touch traps re-entering at a high rate across consecutive windows
  with zero future resolutions, zero thread exits, and almost no useful
  cycles retiring.  Either way the run stops with a typed
  :class:`~repro.errors.HangDetected` carrying a post-mortem: the
  wait-for graph over future cells (cycles named), each node's last
  events, registers/PSR, and disassembly around every blocked pc.

Thread ids in everything exported here are *dense* (renumbered in spawn
order, names rewritten to match) because raw tids come from a process-
global counter — the same byte-stability discipline as
:mod:`repro.obs.lifetime`.
"""

import re

from collections import deque

from repro.errors import HangDetected
from repro.isa import registers, tags
from repro.isa.disassembler import disassemble_around
from repro.obs.events import EventBus, EventKind
from repro.runtime.thread import ThreadState

#: The event kinds the flight recorder keeps (everything the simulator
#: emits is coarse-grained; listed explicitly so a future fine-grained
#: kind cannot silently join the rings).
COARSE_KINDS = (
    EventKind.TRAP_ENTER,
    EventKind.TRAP_EXIT,
    EventKind.CONTEXT_SWITCH,
    EventKind.REMOTE_MISS,
    EventKind.NET_SEND,
    EventKind.NET_DELIVER,
    EventKind.FUTURE_CREATE,
    EventKind.FUTURE_TOUCH,
    EventKind.FUTURE_RESOLVE,
    EventKind.THREAD_SPAWN,
    EventKind.THREAD_LOAD,
    EventKind.THREAD_UNLOAD,
    EventKind.THREAD_STEAL,
    EventKind.THREAD_EXIT,
    EventKind.THREAD_WAKE,
)

#: Event payload keys holding raw thread ids (densified on export).
_TID_KEYS = ("tid", "waker", "parent", "victim_tid")

_THREAD_NAME = re.compile(r"thread-(\d+)")


def dense_tids(runtime):
    """Map raw tid -> dense tid (1-based, spawn order).

    ``runtime.threads`` is append-only in spawn order, so the dense
    numbering is stable for a given program run regardless of how many
    machines the hosting process created before this one.
    """
    return {thread.tid: index
            for index, thread in enumerate(runtime.threads, 1)}


def display_name(name, tid_map):
    """Rewrite every ``thread-<raw>`` in a thread name to its dense tid."""
    return _THREAD_NAME.sub(
        lambda m: "thread-%d" % tid_map.get(int(m.group(1)),
                                            int(m.group(1))), name)


class FlightRecorder:
    """Last-N coarse events per node, always-on black box.

    Args:
        per_node: ring capacity per node.

    If the machine already has an event bus (a full
    :class:`~repro.obs.session.Observation` is attached), the recorder
    simply subscribes to it; otherwise it installs its own
    ``coarse=True`` bus on every emitting component, which — by the
    dormant-hook contract extension in
    :meth:`AlewifeMachine._hooks_dormant` — keeps the superblock fast
    loops eligible.
    """

    def __init__(self, per_node=64):
        self.per_node = per_node
        self.rings = {}           # node -> deque of Event
        self.machine = None
        self._subscriptions = []
        self._installed = False   # we own machine.events

    # -- wiring ------------------------------------------------------------

    def attach(self, machine):
        """Subscribe to the machine's bus, installing one if absent."""
        self.machine = machine
        bus = machine.events
        if bus is None:
            bus = EventBus(capacity=self.per_node * len(machine.cpus),
                           coarse=True)
            self._install_bus(machine, bus)
            self._installed = True
        for kind in COARSE_KINDS:
            self._subscriptions.append(bus.subscribe(self._record, kind))
        return self

    def detach(self):
        """Cancel subscriptions; remove the bus if we installed it."""
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions = []
        machine = self.machine
        if machine is not None and self._installed:
            self._install_bus(machine, None)
            self._installed = False
        self.machine = None

    @staticmethod
    def _install_bus(machine, bus):
        """Point every emitting component's ``events`` slot at ``bus``."""
        machine.events = bus
        runtime = machine.runtime
        runtime.events = bus
        runtime.scheduler.events = bus
        runtime.futures.events = bus
        for cpu in machine.cpus:
            cpu.events = bus
        fabric = machine.fabric
        if fabric is not None:
            fabric.network.events = bus
            for component in (fabric.caches + fabric.controllers
                              + fabric.directories):
                component.events = bus

    def _record(self, event):
        ring = self.rings.get(event.node)
        if ring is None:
            ring = self.rings[event.node] = deque(maxlen=self.per_node)
        ring.append(event)

    # -- export ------------------------------------------------------------

    def tail(self, node, tid_map=None):
        """The node's last events as JSON-ready dicts, dense tids."""
        ring = self.rings.get(node)
        if not ring:
            return []
        tid_map = tid_map or {}
        out = []
        for event in ring:
            record = event.to_dict()
            for key in _TID_KEYS:
                raw = record.get(key)
                if raw in tid_map:
                    record[key] = tid_map[raw]
            name = record.get("thread")
            if name is not None:
                record["thread"] = display_name(name, tid_map)
            out.append(record)
        return out


class Watchdog:
    """Periodic hang detector; raises :class:`HangDetected` with a
    post-mortem instead of letting a hung run burn ``--max-cycles``.

    Args:
        interval: cycles between checks (every machine loop polls
            ``next_check_at``).
        strikes: consecutive spin-storm windows before declaring
            livelock (one window proves nothing: startup and steal
            phases legitimately spin).
        flight: a :class:`FlightRecorder` to couple (one is built when
            omitted).
        per_node: ring capacity for the built-in recorder.

    Deliberately parameterized at the constructor — not through
    :class:`~repro.machine.config.MachineConfig` — so experiment cache
    fingerprints are unaffected (the ``fastpath`` precedent).
    """

    def __init__(self, interval=2048, strikes=3, flight=None, per_node=64):
        self.interval = interval
        self.strikes = strikes
        self.flight = flight if flight is not None else FlightRecorder(
            per_node=per_node)
        self.machine = None
        self.next_check_at = interval
        self._streak = 0
        self._last = None

    # -- wiring ------------------------------------------------------------

    def attach(self, machine):
        """Couple the flight recorder and register on the machine."""
        self.flight.attach(machine)
        self.machine = machine
        machine.watchdog = self
        self.next_check_at = self.interval
        self._streak = 0
        self._last = None
        return self

    def detach(self):
        self.flight.detach()
        machine = self.machine
        if machine is not None and machine.watchdog is self:
            machine.watchdog = None
        self.machine = None

    # -- detection ---------------------------------------------------------

    def check(self, now):
        """One periodic inspection; raises :class:`HangDetected` on a hang."""
        self.next_check_at = now + self.interval
        machine = self.machine
        runtime = machine.runtime
        if runtime.done:
            return
        if self._all_blocked(runtime):
            raise self.hang(
                "deadlock", now,
                "every thread is blocked on an unresolved future")
        snapshot = self._snapshot(machine, now)
        last, self._last = self._last, snapshot
        if last is None:
            return
        window = snapshot["now"] - last["now"]
        if window <= 0:
            return
        spins = snapshot["spins"] - last["spins"]
        resolves = snapshot["resolved"] - last["resolved"]
        exits = snapshot["done"] - last["done"]
        useful = snapshot["useful"] - last["useful"]
        # A spin storm re-enters synchronization traps at a high rate
        # while nothing resolves, nothing exits, and almost no useful
        # cycles retire — sustained over `strikes` consecutive windows.
        storming = (spins >= max(4, window // 256)
                    and resolves == 0 and exits == 0
                    and useful * 16 <= window)
        if storming:
            self._streak += 1
            if self._streak >= self.strikes:
                raise self.hang(
                    "livelock", now,
                    "spin storm: %d full/empty+touch traps in the last %d "
                    "cycles with no future resolved and no thread exiting"
                    % (spins, window))
        else:
            self._streak = 0

    def on_deadlock(self, now, exc):
        """Convert the run-time system's idle-streak deadlock abort
        (:class:`~repro.errors.DeadlockError`) into the typed result."""
        return self.hang("deadlock", now, str(exc))

    def hang(self, kind, now, reason):
        """Build the typed :class:`HangDetected` with a full post-mortem."""
        machine = self.machine
        machine.time = max([machine.time] + [c.cycles for c in machine.cpus])
        postmortem = build_postmortem(machine, kind, machine.time, reason,
                                      flight=self.flight)
        return HangDetected(kind, machine.time, reason, postmortem)

    # -- probes ------------------------------------------------------------

    @staticmethod
    def _all_blocked(runtime):
        if any(runtime.has_work(cpu) for cpu in runtime.cpus):
            return False
        if runtime.scheduler.ready_count():
            return False
        if any(len(q) for q in runtime.lazy_queues):
            return False
        return runtime.futures.waiting_count() > 0

    @staticmethod
    def _snapshot(machine, now):
        from repro.core.traps import TrapKind
        spins = 0
        useful = 0
        for cpu in machine.cpus:
            counts = cpu.stats.trap_counts
            spins += (counts.get(TrapKind.EMPTY_LOAD, 0)
                      + counts.get(TrapKind.FULL_STORE, 0))
            useful += cpu.stats.useful
        runtime = machine.runtime
        spins += runtime.futures.touches_unresolved
        done = sum(1 for t in runtime.threads if t.state is ThreadState.DONE)
        return {"now": now, "spins": spins, "useful": useful,
                "resolved": runtime.futures.resolved, "done": done}


# -- post-mortem -----------------------------------------------------------


def build_postmortem(machine, kind, cycle, reason, flight=None):
    """Assemble the JSON-ready post-mortem dict for a hung machine."""
    runtime = machine.runtime
    tid_map = dense_tids(runtime)
    threads = []
    producers = {}     # future cell byte address -> producing thread
    for thread in runtime.threads:
        if thread.future is not None and thread.state is not ThreadState.DONE:
            producers[tags.pointer_address(thread.future)] = thread
        entry = {
            "tid": tid_map[thread.tid],
            "name": display_name(thread.name, tid_map),
            "state": thread.state.value,
            "home": thread.home_node,
        }
        if thread.blocked_on is not None:
            entry["blocked_cell"] = "%#x" % tags.pointer_address(
                thread.blocked_on)
        if thread.block_pc is not None:
            entry["block_pc"] = "%#x" % thread.block_pc
        if thread.spin_count:
            entry["spin_count"] = thread.spin_count
        threads.append(entry)

    edges, cycles = _wait_for(runtime, producers, tid_map)
    nodes = _node_sections(machine, flight, tid_map)
    disas = _blocked_disassembly(machine, producers, tid_map)
    return {
        "kind": kind,
        "cycle": cycle,
        "reason": reason,
        "threads": threads,
        "wait_for": {"edges": edges, "cycles": cycles},
        "nodes": nodes,
        "disassembly": disas,
    }


def _wait_for(runtime, producers, tid_map):
    """Edges waiter -> producer over future cells, plus named cycles."""
    edges = []
    successor = {}     # waiter raw tid -> producer raw tid
    names = {t.tid: display_name(t.name, tid_map) for t in runtime.threads}
    for thread in runtime.threads:
        if thread.state is not ThreadState.BLOCKED or thread.blocked_on is None:
            continue
        cell = tags.pointer_address(thread.blocked_on)
        producer = producers.get(cell)
        edge = {
            "waiter": names[thread.tid],
            "cell": "%#x" % cell,
            "owner": names[producer.tid] if producer is not None else None,
        }
        if thread.block_pc is not None:
            edge["pc"] = "%#x" % thread.block_pc
        edges.append(edge)
        if producer is not None:
            successor[thread.tid] = producer.tid

    cycles = []
    seen_cycles = set()
    for start in successor:
        path = []
        index = {}
        tid = start
        while tid in successor and tid not in index:
            index[tid] = len(path)
            path.append(tid)
            tid = successor[tid]
        if tid in index:
            loop = path[index[tid]:]
            # Canonicalize: rotate the smallest dense tid to the front
            # so each cycle is reported once.
            pivot = min(range(len(loop)), key=lambda i: tid_map[loop[i]])
            loop = loop[pivot:] + loop[:pivot]
            key = tuple(loop)
            if key not in seen_cycles:
                seen_cycles.add(key)
                cycles.append([names[t] for t in loop])
    return edges, cycles


def _node_sections(machine, flight, tid_map):
    sections = []
    for cpu in machine.cpus:
        frames = []
        for frame in cpu.frames:
            thread = frame.thread
            entry = {
                "index": frame.index,
                "active": frame.index == cpu.fp,
                "pc": "%#x" % frame.pc,
                "npc": "%#x" % frame.npc,
            }
            if thread is not None:
                entry["tid"] = tid_map.get(thread.tid, thread.tid)
                entry["thread"] = display_name(thread.name, tid_map)
            frames.append(entry)
        active = cpu.frames[cpu.fp]
        regs = {}
        for number in range(1, registers.NUM_FRAME_REGISTERS):
            value = active.regs[number]
            if value:
                regs[registers.register_name(number)] = "%#x" % value
        psr = active.psr
        section = {
            "node": cpu.node_id,
            "cycles": cpu.cycles,
            "halted": cpu.halted,
            "fp": cpu.fp,
            "psr": _psr_text(psr, tid_map),
            "frames": frames,
            "registers": regs,
        }
        if flight is not None:
            section["last_events"] = flight.tail(cpu.node_id, tid_map)
        sections.append(section)
    return sections


def _psr_text(psr, tid_map):
    """The PSR repr with its tid field densified."""
    flags = "".join(
        name if flag else name.lower()
        for name, flag in (
            ("N", psr.n), ("Z", psr.z), ("V", psr.v), ("C", psr.c),
            ("F", psr.fe), ("E", psr.traps_enabled),
        )
    )
    return "PSR(%s tid=%d)" % (flags, tid_map.get(psr.tid, psr.tid))


def _blocked_disassembly(machine, producers, tid_map):
    """Listings around every blocked pc and every loaded frame's pc."""
    labels = getattr(machine.program, "labels", None)
    read_word = machine.memory.read_word
    listings = []
    emitted = set()

    def add(where, pc):
        if pc is None or (where, pc) in emitted:
            return
        emitted.add((where, pc))
        listings.append({
            "where": where,
            "pc": "%#x" % pc,
            "listing": disassemble_around(read_word, pc, labels=labels),
        })

    for thread in machine.runtime.threads:
        if thread.state is ThreadState.BLOCKED:
            add("thread %s blocked" % display_name(thread.name, tid_map),
                thread.block_pc)
    for cpu in machine.cpus:
        for frame in cpu.frames:
            if frame.thread is not None:
                add("node %d frame %d (%s)"
                    % (cpu.node_id, frame.index,
                       display_name(frame.thread.name, tid_map)),
                    frame.pc)
    return listings


def render_postmortem(postmortem):
    """Human-readable post-mortem report (stable text, no wall-clock)."""
    lines = []
    out = lines.append
    out("== HANG DETECTED: %s at cycle %d =="
        % (postmortem.get("kind", "?"), postmortem.get("cycle", 0)))
    out("reason: %s" % postmortem.get("reason", ""))
    cycles = postmortem.get("wait_for", {}).get("cycles", [])
    for loop in cycles:
        out("wait-for cycle: %s" % " -> ".join(loop + [loop[0]]))
    if not cycles:
        out("wait-for cycle: none found")
    edges = postmortem.get("wait_for", {}).get("edges", [])
    if edges:
        out("")
        out("wait-for edges:")
        for edge in edges:
            out("  %s waits on cell %s held by %s%s"
                % (edge["waiter"], edge["cell"], edge["owner"] or "<nobody>",
                   " (blocked at %s)" % edge["pc"] if "pc" in edge else ""))
    threads = postmortem.get("threads", [])
    if threads:
        out("")
        out("threads:")
        out("  %4s  %-20s %-8s %4s  %s" % ("tid", "name", "state", "home",
                                           "blocked"))
        for t in threads:
            blocked = ""
            if "blocked_cell" in t:
                blocked = "cell %s" % t["blocked_cell"]
                if "block_pc" in t:
                    blocked += " pc %s" % t["block_pc"]
            out("  %4d  %-20s %-8s %4d  %s"
                % (t["tid"], t["name"], t["state"], t["home"], blocked))
    for node in postmortem.get("nodes", []):
        out("")
        out("node %d: cycle %d fp=%d %s%s"
            % (node["node"], node["cycles"], node["fp"], node["psr"],
               " HALTED" if node["halted"] else ""))
        for frame in node["frames"]:
            owner = frame.get("thread", "<free>")
            out("  frame %d%s pc=%s npc=%s %s"
                % (frame["index"], "*" if frame["active"] else " ",
                   frame["pc"], frame["npc"], owner))
        events = node.get("last_events", [])
        if events:
            out("  last events:")
            for record in events[-8:]:
                extras = " ".join(
                    "%s=%s" % (k, v) for k, v in sorted(record.items())
                    if k not in ("kind", "cycle", "node"))
                out("    [%10d] %s %s"
                    % (record["cycle"], record["kind"], extras))
    for section in postmortem.get("disassembly", []):
        out("")
        out("disassembly: %s at %s" % (section["where"], section["pc"]))
        for line in section["listing"].splitlines():
            out("  " + line)
    return "\n".join(lines)
