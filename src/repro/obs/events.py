"""The structured event bus.

Components never construct events when nobody listens: every
instrumentation site is guarded by a single ``events is not None``
attribute test (the component's ``events`` slot is ``None`` until an
:class:`~repro.obs.session.Observation` wires a bus in), so the
disabled path costs one pointer comparison.

Events are *typed* (:class:`EventKind`) and *structured* (a payload
dict of plain ints/strings), timestamped in simulated cycles and tagged
with the originating node.  The bus keeps a bounded ring of records —
oldest dropped first — and offers synchronous subscriptions for
consumers that must see every event regardless of ring capacity (the
Perfetto exporter uses the ring; online reductions subscribe).
"""

import enum
from collections import deque


class EventKind(enum.Enum):
    """Every event type the simulator can emit."""

    # Members are singletons and compare by identity, so the identity
    # hash is correct — and it is C-speed, unlike Enum's default
    # Python-level ``__hash__``, which shows up in profiles because the
    # bus keys its per-kind dicts by member on every emit.
    __hash__ = object.__hash__

    # Processor / trap machinery.
    TRAP_ENTER = "trap_enter"
    TRAP_EXIT = "trap_exit"
    CONTEXT_SWITCH = "context_switch"
    # Memory system.
    REMOTE_MISS = "remote_miss"
    CACHE_EVICT = "cache_evict"
    CACHE_INVALIDATE = "cache_invalidate"
    DIRECTORY_READ = "directory_read"
    DIRECTORY_WRITE = "directory_write"
    # Network.
    NET_SEND = "net_send"
    NET_DELIVER = "net_deliver"
    # Futures.
    FUTURE_CREATE = "future_create"
    FUTURE_TOUCH = "future_touch"
    FUTURE_RESOLVE = "future_resolve"
    # Thread lifecycle / scheduling.
    THREAD_SPAWN = "thread_spawn"
    THREAD_LOAD = "thread_load"
    THREAD_UNLOAD = "thread_unload"
    THREAD_STEAL = "thread_steal"
    THREAD_EXIT = "thread_exit"
    THREAD_WAKE = "thread_wake"


class Event:
    """One emitted event: kind, cycle timestamp, node, payload."""

    __slots__ = ("kind", "cycle", "node", "data")

    def __init__(self, kind, cycle, node, data):
        self.kind = kind
        self.cycle = cycle
        self.node = node
        self.data = data

    def to_dict(self):
        record = {"kind": self.kind.value, "cycle": self.cycle,
                  "node": self.node}
        record.update(self.data)
        return record

    def __repr__(self):
        extras = " ".join("%s=%r" % kv for kv in sorted(self.data.items()))
        return "[%10d] n%s %s %s" % (
            self.cycle, self.node, self.kind.value, extras)


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`.

    Calling :meth:`cancel` detaches the callback (idempotent), so
    monitor/flight-recorder hooks never leak across runs.  Also usable
    as a context manager: the subscription lives for the ``with`` body.
    """

    __slots__ = ("_bus", "_callback", "_kind", "active")

    def __init__(self, bus, callback, kind):
        self._bus = bus
        self._callback = callback
        self._kind = kind
        self.active = True

    def cancel(self):
        """Detach the callback from the bus (safe to call twice)."""
        if not self.active:
            return
        self.active = False
        if self._kind is None:
            self._bus._subscribers.remove(self._callback)
        else:
            callbacks = self._bus._kind_subscribers.get(self._kind)
            if callbacks is not None:
                callbacks.remove(self._callback)
                if not callbacks:
                    del self._bus._kind_subscribers[self._kind]

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.cancel()
        return False


class EventBus:
    """Bounded ring of :class:`Event` records plus live subscribers.

    Args:
        capacity: ring size; oldest records are dropped past it.
            ``None`` keeps everything (tests, short runs).
        coarse: declares that every consumer of this bus only needs the
            coarse event grain (traps, context switches, scheduling,
            futures, memory transactions — never per-instruction
            observations).  All :class:`EventKind` emission sites *are*
            coarse-grained and superblock fusion does not change their
            cycle stamps, so the machine keeps its fast loops when the
            only attached bus is a coarse one (the flight recorder's);
            the default ``False`` preserves the conservative contract
            that any attached bus pins the per-instruction reference
            loop.
    """

    def __init__(self, capacity=1_000_000, coarse=False):
        self.records = deque(maxlen=capacity)
        self.coarse = coarse
        self.emitted = 0
        self._dropped = 0
        self._counts = {}
        self._subscribers = []          # called for every event
        self._kind_subscribers = {}     # EventKind -> [callables]

    @property
    def capacity(self):
        return self.records.maxlen

    @property
    def dropped(self):
        """Events pushed out of the ring by capacity.

        Counted explicitly at each overflowing append — not derived
        from ``emitted - len(records)``, which silently drifts if the
        ring is ever consumed or resized out-of-band.
        """
        return self._dropped

    def emit(self, kind, cycle, node, **data):
        """Record an event and notify subscribers."""
        event = Event(kind, cycle, node, data)
        records = self.records
        # ``len == None`` is False, so an unbounded ring skips the
        # dropped-counter bump without a separate maxlen test.
        if len(records) == records.maxlen:
            self._dropped += 1
        records.append(event)
        self.emitted += 1
        counts = self._counts
        counts[kind] = counts.get(kind, 0) + 1
        for callback in self._subscribers:
            callback(event)
        subscribers = self._kind_subscribers.get(kind)
        if subscribers is not None:
            for callback in subscribers:
                callback(event)

    def subscribe(self, callback, kind=None):
        """Call ``callback(event)`` on every event (or one kind only).

        Returns a :class:`Subscription`; call its :meth:`~Subscription.
        cancel` (or use it as a context manager) to detach the callback.
        If the same callback is subscribed twice, each cancel removes
        one registration.
        """
        if kind is None:
            self._subscribers.append(callback)
        else:
            self._kind_subscribers.setdefault(kind, []).append(callback)
        return Subscription(self, callback, kind)

    # -- queries -----------------------------------------------------------

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def select(self, *kinds):
        """Recorded events of the given kinds, in emission order."""
        wanted = set(kinds)
        return [e for e in self.records if e.kind in wanted]

    def counts(self):
        """Mapping of kind name to number of events emitted (ever)."""
        return {kind.value: count for kind, count in self._counts.items()}

    def to_dicts(self):
        """The ring contents as JSON-ready dicts."""
        return [event.to_dict() for event in self.records]
