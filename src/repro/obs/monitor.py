"""The interactive machine monitor behind ``april monitor``.

A debugger REPL driving one :class:`~repro.machine.alewife.AlewifeMachine`
through the resumable :class:`~repro.machine.alewife.MachineStepper`:
single-step, step-over, run-until-cycle, pc breakpoints, watchpoints on
memory words *and their full/empty bits*, register/memory/PSR/task-frame
inspection and poking, a virtual-thread table, and disassembly around
any pc — the monitor-OS workflow of the related 8-bit-emulator repo,
grown onto APRIL's multithreaded hardware.

Scriptable: feed :meth:`Monitor.repl` an iterable of command lines
(``april monitor --script FILE``) and every command is echoed with its
output, producing a deterministic transcript — thread ids are shown
*dense* (spawn order), so the transcript is byte-identical across runs
even though raw tids come from a process-global counter.

Commands (see ``help``)::

    step [N]            next            run [until CYCLE]
    break ADDR|LABEL    watch ADDR|LABEL    delete ID    bp
    regs [NODE]  psr [NODE]  frames [NODE]  threads  where
    mem ADDR [N]        disas [ADDR] [N]
    poke reg NAME VAL | poke mem ADDR VAL | poke fe ADDR full|empty
    node N              quit
"""

import sys

from repro.errors import ReproError, SimulationError
from repro.isa import registers
from repro.isa.disassembler import disassemble_around, disassemble_word
from repro.isa.encoding import decode
from repro.isa.instructions import Opcode
from repro.obs.flight import dense_tids, display_name
from repro.runtime.thread import ThreadState

_HELP = """\
commands:
  step [N]              execute N instructions (any node); alias: s
  next                  step over a call on the focused node; alias: n
  run [until CYCLE]     run to breakpoint/watchpoint/end; alias: c
  break ADDR|LABEL      set a pc breakpoint; alias: b
  watch ADDR|LABEL      watch a memory word + its full/empty bit
  bp                    list breakpoints and watchpoints
  delete ID             remove a breakpoint/watchpoint
  where                 one-line position summary per node
  regs [NODE]           active-frame + global registers
  psr [NODE]            processor state register
  frames [NODE]         hardware task frames
  threads               virtual thread table (dense tids)
  mem ADDR [N]          dump N words with full/empty state
  disas [ADDR] [N]      disassemble around an address (default: pc)
  poke reg NAME VALUE   write a register on the focused node
  poke mem ADDR VALUE   write a memory word
  poke fe ADDR full|empty   set a word's full/empty bit
  poke psr VALUE        write the focused node's active PSR
  node N                focus a node (default 0)
  quit                  leave the monitor; alias: q"""


class Monitor:
    """One interactive/scripted debugging session over a machine.

    Args:
        machine: a fresh :class:`AlewifeMachine` (not yet run).
        entry: program entry label (already compiler-resolved).
        args: tagged/int arguments for the entry thread.
        out: output stream (default stdout).
        echo: echo each command with the prompt before its output —
            set for script mode so transcripts read like a session.
        max_cycles: stepper cycle budget.
    """

    PROMPT = "(april) "

    def __init__(self, machine, entry="main", args=(), out=None,
                 echo=False, max_cycles=200_000_000):
        self.machine = machine
        self.out = out if out is not None else sys.stdout
        self.echo = echo
        self.stepper = machine.stepper(entry=entry, args=args,
                                       max_cycles=max_cycles)
        self.node = 0
        self.breakpoints = {}      # id -> address
        self.watchpoints = {}      # id -> address
        self._next_id = 1
        self._watch_state = {}     # address -> (value, full)
        self._watch_access = {}    # address -> "n0 pc 0x... store"
        self.finished = False
        self._quit = False
        for cpu in machine.cpus:
            cpu.watch_hook = self._on_access

    # -- plumbing ----------------------------------------------------------

    def _print(self, text=""):
        self.out.write(text + "\n")

    def _cpu(self, token=None):
        node = self.node if token is None else int(token, 0)
        if not 0 <= node < len(self.machine.cpus):
            raise ValueError("no node %d (have 0..%d)"
                             % (node, len(self.machine.cpus) - 1))
        return self.machine.cpus[node]

    def _labels(self):
        return getattr(self.machine.program, "labels", {}) or {}

    def _resolve(self, token):
        """An address from a label name or a 0x/decimal literal."""
        labels = self._labels()
        if token in labels:
            return labels[token]
        try:
            return int(token, 0)
        except ValueError:
            raise ValueError("not a label or address: %r" % token)

    def _tid_map(self):
        return dense_tids(self.machine.runtime)

    def _on_access(self, cpu, pc, address, is_load, outcome):
        if address in self._watch_state:
            self._watch_access[address] = "node %d pc %#x %s" % (
                cpu.node_id, pc, "load" if is_load else "store")

    # -- the REPL ----------------------------------------------------------

    def repl(self, lines=None):
        """Run the session; ``lines`` is an iterable of commands (script
        mode) or None for interactive stdin."""
        machine = self.machine
        self._print("april monitor: %d node(s), %d program words — "
                    "type 'help' for commands"
                    % (len(machine.cpus), len(machine.program.words)))
        if lines is None:
            self._interactive()
        else:
            for raw in lines:
                line = raw.strip()
                if self.echo:
                    self._print(self.PROMPT + line)
                if not line or line.startswith("#"):
                    continue
                self.dispatch(line)
                if self._quit:
                    break

    def _interactive(self):
        while not self._quit:
            try:
                line = input(self.PROMPT)
            except EOFError:
                self._print()
                return
            line = line.strip()
            if not line:
                continue
            self.dispatch(line)

    def dispatch(self, line):
        """Execute one command line."""
        parts = line.split()
        command, argv = parts[0], parts[1:]
        handler = _COMMANDS.get(command)
        if handler is None:
            self._print("error: unknown command %r (try 'help')" % command)
            return
        try:
            handler(self, argv)
        except (ValueError, IndexError) as exc:
            self._print("error: %s" % exc)
        except SimulationError as exc:
            self.finished = True
            self._print("simulation stopped: %s" % exc)
        except ReproError as exc:
            self._print("error: %s" % exc)

    # -- position reporting ------------------------------------------------

    def _instruction_at(self, pc):
        try:
            return disassemble_word(self.machine.memory.read_word(pc))
        except ReproError:
            return "<unmapped>"

    def _where_line(self, cpu):
        frame = cpu.frames[cpu.fp]
        thread = frame.thread
        if thread is None:
            return ("node %d  cycle %d  <idle>%s"
                    % (cpu.node_id, cpu.cycles,
                       "  HALTED" if cpu.halted else ""))
        tid_map = self._tid_map()
        return ("node %d  cycle %d  frame %d  %s  pc %#06x: %s"
                % (cpu.node_id, cpu.cycles, cpu.fp,
                   display_name(thread.name, tid_map), frame.pc,
                   self._instruction_at(frame.pc)))

    def _report_finish(self):
        self.finished = True
        result = self.stepper.result()
        for line in result.output:
            self._print(line)
        self._print("program finished: result %r after %d cycles"
                    % (result.value, result.cycles))

    # -- watchpoints -------------------------------------------------------

    def _poll_watchpoints(self):
        """Report every watched word whose value or f/e bit changed."""
        memory = self.machine.memory
        hits = []
        for wid in sorted(self.watchpoints):
            address = self.watchpoints[wid]
            now = (memory.read_word(address), memory.is_full(address))
            old = self._watch_state.get(address)
            if now != old:
                self._watch_state[address] = now
                access = self._watch_access.pop(address, None)
                hits.append(
                    "watchpoint %d at %#x: %#010x/%s -> %#010x/%s%s"
                    % (wid, address, old[0], "full" if old[1] else "empty",
                       now[0], "full" if now[1] else "empty",
                       "  (%s)" % access if access else ""))
        for hit in hits:
            self._print(hit)
        return bool(hits)

    def _refresh_watch(self, address):
        if address in self._watch_state:
            memory = self.machine.memory
            self._watch_state[address] = (memory.read_word(address),
                                          memory.is_full(address))

    # -- stepping commands -------------------------------------------------

    def _advance(self, guard=None):
        """One stepper iteration + bookkeeping; returns the StepInfo."""
        info = self.stepper.step_machine(guard=guard)
        if info is None:
            self._report_finish()
        return info

    def cmd_step(self, argv):
        count = int(argv[0], 0) if argv else 1
        if count < 1:
            raise ValueError("step count must be >= 1")
        if self.finished:
            self._print("program already finished")
            return
        executed = 0
        while executed < count:
            info = self._advance()
            if info is None:
                return
            if info.executed:
                executed += 1
                cpu = self.machine.cpus[info.node]
                self._print("[%d] n%d %#06x: %s"
                            % (cpu.cycles, info.node, info.pc,
                               self._instruction_at(info.pc)))
            self._poll_watchpoints()

    def cmd_next(self, argv):
        """Step over: a call on the focused node runs to its return."""
        if self.finished:
            self._print("program already finished")
            return
        cpu = self._cpu()
        frame = cpu.frames[cpu.fp]
        over = None
        if frame.thread is not None:
            pc = frame.pc
            try:
                instr = decode(self.machine.memory.read_word(pc))
            except ReproError:
                instr = None
            if instr is not None and instr.op in (Opcode.CALL, Opcode.JMPL):
                over = pc + 8
        if over is None:
            # Nothing to step over: behave like `step` restricted to
            # the focused node.
            while True:
                info = self._advance()
                if info is None:
                    return
                self._poll_watchpoints()
                if info.executed and info.node == cpu.node_id:
                    break
            self._print(self._where_line(cpu))
            return

    # A guarded run until the focused node is back at the return pc.
        node = cpu.node_id

        def guard(candidate):
            return (candidate.node_id == node
                    and candidate.frames[candidate.fp].pc == over)

        self._run_loop(guard_extra=guard, first_unguarded=True)

    def cmd_run(self, argv):
        until = None
        if argv:
            if len(argv) != 2 or argv[0] != "until":
                raise ValueError("usage: run [until CYCLE]")
            until = int(argv[1], 0)
        if self.finished:
            self._print("program already finished")
            return
        self._run_loop(until=until, first_unguarded=True)

    def _bp_hit(self, cpu):
        pc = cpu.frames[cpu.fp].pc
        for bid in sorted(self.breakpoints):
            if self.breakpoints[bid] == pc:
                return bid
        return None

    def _run_loop(self, until=None, guard_extra=None, first_unguarded=False):
        """The shared continue loop: stop on breakpoint, watchpoint,
        guard, cycle bound, or program end.

        ``first_unguarded`` executes the current instruction before
        re-arming breakpoints, so ``run`` after a breakpoint stop makes
        progress instead of re-stopping in place.
        """
        bp_guard = (lambda cpu: self._bp_hit(cpu) is not None
                    or (guard_extra is not None and guard_extra(cpu)))
        first = first_unguarded
        while True:
            info = self._advance(guard=None if first else bp_guard)
            first = False
            if info is None:
                return
            if info.stopped:
                cpu = self.machine.cpus[info.node]
                bid = self._bp_hit(cpu)
                if bid is not None:
                    self._print("breakpoint %d at %#06x" % (bid, info.pc))
                self._print(self._where_line(cpu))
                return
            if self._poll_watchpoints():
                self._print(self._where_line(self.machine.cpus[info.node]))
                return
            if until is not None and self.machine.time >= until:
                self._print("stopped at cycle bound %d (machine time %d)"
                            % (until, self.machine.time))
                return

    # -- breakpoints / watchpoints ----------------------------------------

    def cmd_break(self, argv):
        address = self._resolve(argv[0])
        bid = self._next_id
        self._next_id += 1
        self.breakpoints[bid] = address
        self._print("breakpoint %d at %#06x: %s"
                    % (bid, address, self._instruction_at(address)))

    def cmd_watch(self, argv):
        address = self._resolve(argv[0])
        if address % 4:
            raise ValueError("watch address must be word-aligned")
        wid = self._next_id
        self._next_id += 1
        self.watchpoints[wid] = address
        memory = self.machine.memory
        state = (memory.read_word(address), memory.is_full(address))
        self._watch_state[address] = state
        self._print("watchpoint %d at %#06x: %#010x/%s"
                    % (wid, address, state[0],
                       "full" if state[1] else "empty"))

    def cmd_bp(self, argv):
        for bid in sorted(self.breakpoints):
            address = self.breakpoints[bid]
            self._print("breakpoint %d at %#06x: %s"
                        % (bid, address, self._instruction_at(address)))
        for wid in sorted(self.watchpoints):
            address = self.watchpoints[wid]
            value, full = self._watch_state[address]
            self._print("watchpoint %d at %#06x: %#010x/%s"
                        % (wid, address, value,
                           "full" if full else "empty"))
        if not self.breakpoints and not self.watchpoints:
            self._print("no breakpoints or watchpoints")

    def cmd_delete(self, argv):
        which = int(argv[0], 0)
        if which in self.breakpoints:
            del self.breakpoints[which]
            self._print("deleted breakpoint %d" % which)
        elif which in self.watchpoints:
            address = self.watchpoints.pop(which)
            if address not in self.watchpoints.values():
                self._watch_state.pop(address, None)
            self._print("deleted watchpoint %d" % which)
        else:
            raise ValueError("no breakpoint/watchpoint %d" % which)

    # -- inspection --------------------------------------------------------

    def cmd_where(self, argv):
        for cpu in self.machine.cpus:
            self._print(self._where_line(cpu))

    def cmd_regs(self, argv):
        cpu = self._cpu(argv[0] if argv else None)
        frame = cpu.frames[cpu.fp]
        shown = False
        for number in range(1, registers.NUM_FRAME_REGISTERS):
            value = frame.regs[number]
            if value:
                self._print("  %-4s = %#010x"
                            % (registers.register_name(number), value))
                shown = True
        for index in range(registers.NUM_GLOBAL_REGISTERS):
            value = cpu.globals[index]
            if value:
                self._print("  %-4s = %#010x"
                            % (registers.register_name(
                                registers.GLOBAL_BASE + index), value))
                shown = True
        if not shown:
            self._print("  (all registers zero)")

    def cmd_psr(self, argv):
        from repro.obs.flight import _psr_text
        cpu = self._cpu(argv[0] if argv else None)
        self._print("  " + _psr_text(cpu.frames[cpu.fp].psr,
                                     self._tid_map()))

    def cmd_frames(self, argv):
        cpu = self._cpu(argv[0] if argv else None)
        tid_map = self._tid_map()
        for frame in cpu.frames:
            owner = "<free>"
            if frame.thread is not None:
                owner = "%s (%s)" % (
                    display_name(frame.thread.name, tid_map),
                    frame.thread.state.value)
            self._print("  frame %d%s pc=%#06x npc=%#06x  %s"
                        % (frame.index,
                           "*" if frame.index == cpu.fp else " ",
                           frame.pc, frame.npc, owner))

    def cmd_threads(self, argv):
        runtime = self.machine.runtime
        tid_map = self._tid_map()
        loaded_at = {}
        for cpu in self.machine.cpus:
            for frame in cpu.frames:
                if frame.thread is not None:
                    loaded_at[frame.thread.tid] = (cpu.node_id, frame.index)
        self._print("  %4s  %-20s %-8s %4s  %s"
                    % ("tid", "name", "state", "home", "where"))
        for thread in runtime.threads:
            if thread.state is ThreadState.LOADED:
                node, frame = loaded_at.get(thread.tid, (None, None))
                where = ("node %d frame %d" % (node, frame)
                         if node is not None else "loaded")
            elif thread.state is ThreadState.BLOCKED:
                from repro.isa import tags
                where = "cell %#x" % tags.pointer_address(thread.blocked_on)
                if thread.block_pc is not None:
                    where += " pc %#x" % thread.block_pc
            elif thread.state is ThreadState.READY:
                where = "ready queue n%d" % thread.home_node
            else:
                where = "done"
            self._print("  %4d  %-20s %-8s %4d  %s"
                        % (tid_map[thread.tid],
                           display_name(thread.name, tid_map),
                           thread.state.value, thread.home_node, where))

    def cmd_mem(self, argv):
        address = self._resolve(argv[0])
        count = int(argv[1], 0) if len(argv) > 1 else 8
        memory = self.machine.memory
        for offset in range(count):
            word_address = address + 4 * offset
            self._print("  %#06x  %#010x  %s"
                        % (word_address, memory.read_word(word_address),
                           "full" if memory.is_full(word_address)
                           else "empty"))

    def cmd_disas(self, argv):
        if argv:
            pc = self._resolve(argv[0])
            window = int(argv[1], 0) if len(argv) > 1 else 4
        else:
            cpu = self._cpu()
            pc = cpu.frames[cpu.fp].pc
            window = 4
        listing = disassemble_around(self.machine.memory.read_word, pc,
                                     before=window, after=window,
                                     labels=self._labels())
        for line in listing.splitlines():
            self._print("  " + line)

    # -- mutation ----------------------------------------------------------

    def cmd_poke(self, argv):
        if not argv:
            raise ValueError("usage: poke reg|mem|fe|psr ...")
        what = argv[0]
        if what == "reg":
            number = registers.register_number(argv[1])
            value = int(argv[2], 0)
            self._cpu().write_reg(number, value)
            self._print("  %s = %#010x" % (argv[1], value))
        elif what == "mem":
            address = self._resolve(argv[1])
            value = int(argv[2], 0)
            self.machine.memory.write_word(address, value)
            self._refresh_watch(address)
            self._print("  [%#06x] = %#010x" % (address, value))
        elif what == "fe":
            address = self._resolve(argv[1])
            state = argv[2]
            if state not in ("full", "empty"):
                raise ValueError("poke fe takes 'full' or 'empty'")
            self.machine.memory.set_full(address, state == "full")
            self._refresh_watch(address)
            self._print("  [%#06x] marked %s" % (address, state))
        elif what == "psr":
            value = int(argv[1], 0)
            self._cpu().frames[self._cpu().fp].psr.value = value
            self._print("  psr = %#010x" % value)
        else:
            raise ValueError("usage: poke reg|mem|fe|psr ...")

    def cmd_node(self, argv):
        cpu = self._cpu(argv[0])
        self.node = cpu.node_id
        self._print("focused node %d" % self.node)

    def cmd_help(self, argv):
        self._print(_HELP)

    def cmd_quit(self, argv):
        self._quit = True


_COMMANDS = {
    "help": Monitor.cmd_help,
    "step": Monitor.cmd_step, "s": Monitor.cmd_step,
    "next": Monitor.cmd_next, "n": Monitor.cmd_next,
    "run": Monitor.cmd_run, "c": Monitor.cmd_run,
    "continue": Monitor.cmd_run,
    "break": Monitor.cmd_break, "b": Monitor.cmd_break,
    "watch": Monitor.cmd_watch,
    "bp": Monitor.cmd_bp,
    "delete": Monitor.cmd_delete,
    "where": Monitor.cmd_where,
    "regs": Monitor.cmd_regs,
    "psr": Monitor.cmd_psr,
    "frames": Monitor.cmd_frames,
    "threads": Monitor.cmd_threads,
    "mem": Monitor.cmd_mem,
    "disas": Monitor.cmd_disas,
    "poke": Monitor.cmd_poke,
    "node": Monitor.cmd_node,
    "quit": Monitor.cmd_quit, "q": Monitor.cmd_quit,
}
