"""Directory-based cache coherence (paper Section 2, reference [5]).

"Cache coherence is maintained using a directory-based protocol over a
low-dimension direct network.  The directory is distributed with the
processing nodes."

Each block's *home* node (address-interleaved) keeps a directory entry:
uncached, shared-by-a-set-of-readers, or modified-by-one-owner — the
full-map Chaiken-style directory.  The protocol enforces strong
coherence (Section 2.1): a write invalidates every cached copy and
collects acknowledgments before the writer proceeds; a read of a
modified block first retrieves/downgrades the owner's copy.

The directory records state transitions and returns the *message plan*
(who must be invalidated / fetched from) to the controller, which
charges the network for each leg.
"""

import enum

from repro.errors import SimulationError
from repro.obs.events import EventKind


class DirState(enum.Enum):
    UNCACHED = "uncached"
    SHARED = "shared"
    MODIFIED = "modified"


class DirectoryEntry:
    __slots__ = ("state", "sharers", "owner")

    def __init__(self):
        self.state = DirState.UNCACHED
        self.sharers = set()
        self.owner = None


class Directory:
    """The directory slice owned by one home node."""

    def __init__(self, node_id):
        self.node_id = node_id
        self._entries = {}       # block address -> DirectoryEntry
        self.read_requests = 0
        self.write_requests = 0
        self.invalidations_sent = 0
        self.owner_fetches = 0
        #: Optional event bus (see :mod:`repro.obs`); None = no-op hooks.
        self.events = None
        #: Optional transaction tracer (see :mod:`repro.obs.txn`).
        self.txn = None

    def counters(self):
        """Counter snapshot for reports."""
        return {
            "read_requests": self.read_requests,
            "write_requests": self.write_requests,
            "invalidations_sent": self.invalidations_sent,
            "owner_fetches": self.owner_fetches,
            "entries": len(self._entries),
        }

    def entry(self, block):
        item = self._entries.get(block)
        if item is None:
            item = DirectoryEntry()
            self._entries[block] = item
        return item

    def handle_read(self, block, requester, now=0):
        """A read request arrives; returns ``(fetch_from_owner,)``.

        ``fetch_from_owner`` is the previous owner's node id when the
        block was modified elsewhere (the home must retrieve the copy
        and downgrade the owner), else None.  The requester ends up a
        sharer.
        """
        self.read_requests += 1
        item = self.entry(block)
        if self.events is not None:
            self.events.emit(
                EventKind.DIRECTORY_READ, now, self.node_id,
                block=block, requester=requester, state=item.state.value)
        if self.txn is not None:
            self.txn.dir_leg(self.node_id, block, "read", item.state.value,
                             0, now)
        fetch_from = None
        if item.state is DirState.MODIFIED and item.owner != requester:
            fetch_from = item.owner
            item.sharers = {item.owner, requester}
            item.owner = None
            item.state = DirState.SHARED
            self.owner_fetches += 1
        else:
            if item.state is DirState.MODIFIED:
                # Owner re-reading its own block.
                item.sharers = {requester}
                item.owner = None
            item.sharers.add(requester)
            item.state = DirState.SHARED
        return fetch_from

    def handle_write(self, block, requester, now=0):
        """A write request arrives; returns ``(invalidees, fetch_from)``.

        ``invalidees`` is the set of nodes whose copies must be
        invalidated and acknowledged before the grant; ``fetch_from``
        the previous modified owner (if some *other* node owned it).
        The requester becomes the exclusive owner.
        """
        self.write_requests += 1
        item = self.entry(block)
        invalidees = set()
        fetch_from = None
        if item.state is DirState.MODIFIED:
            if item.owner != requester:
                fetch_from = item.owner
                invalidees = {item.owner}
                self.owner_fetches += 1
        elif item.state is DirState.SHARED:
            invalidees = item.sharers - {requester}
        self.invalidations_sent += len(invalidees)
        if self.events is not None:
            self.events.emit(
                EventKind.DIRECTORY_WRITE, now, self.node_id,
                block=block, requester=requester,
                invalidations=len(invalidees))
        if self.txn is not None:
            self.txn.dir_leg(self.node_id, block, "write", item.state.value,
                             len(invalidees), now)
        item.state = DirState.MODIFIED
        item.owner = requester
        item.sharers = set()
        return invalidees, fetch_from

    def handle_eviction(self, block, node, was_modified):
        """A cache notified the home that it dropped the block."""
        item = self._entries.get(block)
        if item is None:
            return
        if item.state is DirState.MODIFIED and item.owner == node:
            item.state = DirState.UNCACHED
            item.owner = None
        elif item.state is DirState.SHARED:
            item.sharers.discard(node)
            if not item.sharers:
                item.state = DirState.UNCACHED
        elif was_modified:
            raise SimulationError(
                "modified eviction of block %#x from non-owner %d"
                % (block, node))

    def check_invariants(self, caches):
        """Verify the single-writer / matching-state invariants against
        the actual cache contents (used by tests)."""
        from repro.mem.cache import LineState
        for block, item in self._entries.items():
            holders = {
                node: cache.contents().get(block)
                for node, cache in enumerate(caches)
                if cache.contents().get(block) is not None
            }
            modified = [n for n, s in holders.items()
                        if s is LineState.MODIFIED]
            if len(modified) > 1:
                raise SimulationError(
                    "block %#x modified in several caches: %s"
                    % (block, modified))
            if item.state is DirState.MODIFIED:
                if modified and modified != [item.owner]:
                    raise SimulationError(
                        "block %#x owner mismatch: dir=%s caches=%s"
                        % (block, item.owner, modified))
            if item.state is DirState.SHARED and modified:
                raise SimulationError(
                    "block %#x shared in directory but modified in cache %d"
                    % (block, modified[0]))
