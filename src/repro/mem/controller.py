"""The cache/directory controller (paper Sections 2.1 and 5).

One per node.  It answers the processor's memory port, maintains strong
coherence through the home directories, and decides — per access flavor
— whether to **hold** the processor (local misses, wait-flavors) or to
**trap** it (remote misses, full/empty mismatches), the MHOLD/MEXC
split of Section 5.

Transaction timing is computed at issue: the controller walks the
protocol legs (request to home, owner fetch, invalidation round trips,
response) over the contention-modeling network and obtains the
completion time; a trapped processor that switch-spins back before then
simply traps again — exactly the paper's switch-spinning behavior.
Directory state is updated at issue, which serializes protocol races at
transaction granularity (the simulation event loop already serializes
the issuing processors); see DESIGN.md.

Values live in shared memory (see :mod:`repro.mem.cache`); full/empty
semantics are applied at the memory on every completed access, so
synchronization behavior is identical to the ideal-mode port.
"""

from repro.core.memport import MemOutcome, MemoryPort
from repro.core.traps import TrapKind
from repro.errors import SimulationError
from repro.mem.cache import LineState
from repro.obs.events import EventKind

#: Memory-mapped I/O register offsets (LDIO/STIO space).
IO_BASE = 0xFFFF0000
IO_FENCE = IO_BASE + 0x00        # read: outstanding write-backs
IO_NODE_ID = IO_BASE + 0x04      # read: this node's id
IO_IPI_TARGET = IO_BASE + 0x08   # write: target node for the next IPI
IO_IPI_SEND = IO_BASE + 0x0C     # write: send IPI with this payload
IO_BT_SRC = IO_BASE + 0x10       # write: block-transfer source
IO_BT_DST = IO_BASE + 0x14       # write: block-transfer destination
IO_BT_GO = IO_BASE + 0x18        # write: length in words; starts copy

#: Message sizes in flits (header ~2, block data = words + header).
REQUEST_FLITS = 2
ACK_FLITS = 2


class ControllerStats:
    def __init__(self):
        self.local_misses = 0
        self.remote_misses = 0
        self.write_upgrades = 0
        self.holds = 0
        self.traps = 0
        self.block_transfers = 0
        self.ipis_sent = 0

    def to_dict(self):
        return {
            "local_misses": self.local_misses,
            "remote_misses": self.remote_misses,
            "write_upgrades": self.write_upgrades,
            "holds": self.holds,
            "traps": self.traps,
            "block_transfers": self.block_transfers,
            "ipis_sent": self.ipis_sent,
        }


class CacheController(MemoryPort):
    """One node's cache + directory controller."""

    def __init__(self, node_id, memory, cache, system):
        self.node_id = node_id
        self.memory = memory
        self.cache = cache
        self.system = system          # CoherentMemorySystem (peers, net)
        self.pending = {}             # block -> completion time
        self.stats = ControllerStats()
        #: Optional event bus (see :mod:`repro.obs`); None = no-op hooks.
        self.events = None
        #: Optional transaction tracer (see :mod:`repro.obs.txn`).
        self.txn = None
        self._fence_acks = []         # (ack time, context id)
        self._ipi_target = 0
        self._bt_src = 0
        self._bt_dst = 0

    # -- address geometry ---------------------------------------------------

    def _block(self, address):
        return self.cache.block_address(address)

    def _home(self, block):
        return self.system.home_of(block)

    def _data_flits(self):
        return 1 + self.cache.block_bytes // 4

    def _now(self, context):
        return context.cycles if context is not None else 0

    # -- MemoryPort interface -------------------------------------------------

    def fetch(self, address):
        # Perfect instruction cache (see DESIGN.md).
        return self.memory.read_word(address)

    def load(self, address, flavor, context=None):
        outcome = self._access(address, context, is_write=False,
                               wait=flavor.wait_on_miss or flavor.raw)
        if outcome is not None:
            return outcome
        value, was_full, trap_kind = self.memory.sync_load(address, flavor)
        if trap_kind is not None:
            if self.txn is not None:
                self.txn.fe_fault(self.node_id, address, trap_kind.name,
                                  self._now(context), cpu=context)
            return MemOutcome.trap(trap_kind, cycles=1, fe_full=was_full)
        if self.txn is not None:
            self.txn.fe_sync(self.node_id, address, self._now(context))
        return MemOutcome.hit(value=value, cycles=self._last_cycles,
                              fe_full=was_full)

    def store(self, address, value, flavor, context=None):
        outcome = self._access(address, context, is_write=True,
                               wait=flavor.wait_on_miss or flavor.raw)
        if outcome is not None:
            return outcome
        was_full, trap_kind = self.memory.sync_store(address, value, flavor)
        if trap_kind is not None:
            if self.txn is not None:
                self.txn.fe_fault(self.node_id, address, trap_kind.name,
                                  self._now(context), cpu=context)
            return MemOutcome.trap(trap_kind, cycles=1, fe_full=was_full)
        if self.txn is not None:
            self.txn.fe_sync(self.node_id, address, self._now(context))
        return MemOutcome.hit(cycles=self._last_cycles, fe_full=was_full)

    # -- the coherence walk ------------------------------------------------------

    def _access(self, address, context, is_write, wait):
        """Bring the block into the right state.

        Returns ``None`` on success, setting ``_last_cycles`` to the
        access cost; returns a trap outcome when the controller chose
        to trap the processor instead (the MEXC path).
        """
        now = self._now(context)
        block = self._block(address)
        line = self.cache.lookup(address)

        if line is not None:
            if not is_write or line.state is LineState.MODIFIED:
                self.cache.stats.hits += 1
                self._last_cycles = 1
                return None
            # Write hit on a shared line: upgrade (invalidate peers).
            self.stats.write_upgrades += 1

        if block not in self.pending:
            self.cache.stats.misses += 1

        completion = self.pending.get(block)
        if completion is None:
            txn = self.txn
            if txn is not None:
                txn.begin(self.node_id, block, self._home(block), is_write,
                          now, cpu=context, upgrade=line is not None)
            completion, local = self._start_transaction(
                block, is_write, now)
            if txn is not None:
                txn.commit(completion, local)
            if local:
                # Local miss: the controller holds the processor (MHOLD).
                self.stats.local_misses += 1
                self.stats.holds += 1
                self._fill(block, is_write, now)
                self._last_cycles = max(completion - now, 1)
                if txn is not None:
                    txn.complete(self.node_id, block, completion)
                return None
            self.stats.remote_misses += 1
            self.pending[block] = completion
            if self.events is not None:
                self.events.emit(
                    EventKind.REMOTE_MISS, now, self.node_id,
                    block=block, home=self._home(block), write=is_write,
                    ready_at=completion)

        if now >= completion:
            del self.pending[block]
            self._fill(block, is_write, now)
            self._last_cycles = 1
            if self.txn is not None:
                self.txn.complete(self.node_id, block, now)
            return None

        if wait:
            # Wait-flavor: hold the processor until the data arrives.
            del self.pending[block]
            self._fill(block, is_write, now)
            self.stats.holds += 1
            self._last_cycles = max(completion - now, 1)
            if self.txn is not None:
                self.txn.complete(self.node_id, block, completion)
            return None

        # Trap the processor (MEXC): it will switch-spin and retry.
        self.stats.traps += 1
        if self.txn is not None:
            self.txn.trap_retry(self.node_id, block, now, cpu=context)
        return MemOutcome.trap(TrapKind.CACHE_MISS, cycles=1,
                               detail="block %#x ready at %d" % (
                                   block, completion))

    def _start_transaction(self, block, is_write, now):
        """Walk the protocol legs; returns (completion time, was_local).

        Directory state and peer cache states update immediately; the
        returned time reflects request, directory/memory service, owner
        fetch, invalidation acknowledgments, and the data response,
        each over the contended network.  The phase boundaries tile the
        transaction exactly — request / service / coherence / response —
        and are reported to the transaction tracer when one is active.
        """
        system = self.system
        network = system.network
        home = self._home(block)
        directory = system.directories[home]
        data_flits = self._data_flits()

        arrive = network.send(self.node_id, home, REQUEST_FLITS, now)
        service_done = arrive + system.memory_latency
        coherence_done = service_done
        remote_legs = home != self.node_id

        if is_write:
            invalidees, fetch_from = directory.handle_write(
                block, self.node_id, now=arrive)
            for victim in invalidees:
                system.caches[victim].invalidate(block, now=service_done)
                ack = network.round_trip(
                    home, victim, REQUEST_FLITS, ACK_FLITS, service_done)
                coherence_done = max(coherence_done, ack)
                remote_legs = remote_legs or victim != self.node_id
            if fetch_from is not None and fetch_from != self.node_id:
                fetched = network.round_trip(
                    home, fetch_from, REQUEST_FLITS, data_flits, service_done)
                coherence_done = max(coherence_done, fetched)
                remote_legs = True
        else:
            fetch_from = directory.handle_read(block, self.node_id,
                                               now=arrive)
            if fetch_from is not None and fetch_from != self.node_id:
                system.caches[fetch_from].downgrade(block)
                coherence_done = network.round_trip(
                    home, fetch_from, REQUEST_FLITS, data_flits, service_done)
                remote_legs = True

        done = network.send(home, self.node_id, data_flits, coherence_done)
        if self.txn is not None:
            self.txn.mark_phases(now, arrive, service_done, coherence_done,
                                 done)
        return done, not remote_legs

    def _fill(self, block, is_write, now=0):
        """Install the granted line, notifying the home of any victim."""
        state = LineState.MODIFIED if is_write else LineState.SHARED
        displaced = self.cache.install(block, state, now=now)
        if displaced is not None:
            victim_block, victim_state = displaced
            home = self._home(victim_block)
            self.system.directories[home].handle_eviction(
                victim_block, self.node_id,
                victim_state is LineState.MODIFIED)

    # -- out-of-band mechanisms (Section 3.4) --------------------------------------

    def flush(self, address, context=None):
        """FLUSH: write back + invalidate; dirty flushes raise the fence
        counter until the (simulated) home acknowledgment lands."""
        now = self._now(context)
        block = self._block(address)
        ctx = context.fp if context is not None else 0
        dirty = self.cache.flush(address, context=ctx)
        home = self._home(block)
        self.system.directories[home].handle_eviction(
            block, self.node_id, dirty)
        if dirty:
            txn = self.txn
            if txn is not None:
                txn.begin(self.node_id, block, home, True, now, cpu=context,
                          kind="writeback")
            ack = self.system.network.round_trip(
                self.node_id, home, self._data_flits(), ACK_FLITS, now)
            if txn is not None:
                txn.commit(ack, home == self.node_id, kind="writeback")
            self._fence_acks.append((ack, ctx))
        return MemOutcome.hit(cycles=2)

    def ldio(self, address, context=None):
        now = self._now(context)
        ctx = context.fp if context is not None else 0
        if address == IO_FENCE:
            self._drain_fence_acks(now)
            return MemOutcome.hit(value=self.cache.fence_count(ctx),
                                  cycles=1)
        if address == IO_NODE_ID:
            return MemOutcome.hit(value=self.node_id, cycles=1)
        raise SimulationError("LDIO of unmapped register %#x" % address)

    def stio(self, address, value, context=None):
        now = self._now(context)
        if address == IO_IPI_TARGET:
            self._ipi_target = value % len(self.system.cpus)
            return MemOutcome.hit(cycles=1)
        if address == IO_IPI_SEND:
            latency = self.system.network.send(
                self.node_id, self._ipi_target, REQUEST_FLITS, now) - now
            self.system.cpus[self._ipi_target].post_ipi(value)
            self.stats.ipis_sent += 1
            return MemOutcome.hit(cycles=max(latency // 4, 1))
        if address == IO_BT_SRC:
            self._bt_src = value
            return MemOutcome.hit(cycles=1)
        if address == IO_BT_DST:
            self._bt_dst = value
            return MemOutcome.hit(cycles=1)
        if address == IO_BT_GO:
            return self._block_transfer(value, now)
        raise SimulationError("STIO to unmapped register %#x" % address)

    def _block_transfer(self, length_words, now):
        """Block transfer (Section 3.4): copy words through the network
        at block granularity, far cheaper than per-word remote misses."""
        for i in range(length_words):
            word = self.memory.read_word(self._bt_src + 4 * i)
            self.memory.write_word(self._bt_dst + 4 * i, word)
        dst_home = self._home(self._bt_dst)
        flits = REQUEST_FLITS + length_words
        done = self.system.network.send(self.node_id, dst_home, flits, now)
        self.stats.block_transfers += 1
        return MemOutcome.hit(cycles=max(done - now, length_words))

    def _drain_fence_acks(self, now):
        remaining = []
        for ack_time, ctx in self._fence_acks:
            if ack_time <= now:
                self.cache.fence_ack(ctx)
            else:
                remaining.append((ack_time, ctx))
        self._fence_acks = remaining
