"""Per-node processor cache (paper Sections 2.1, 3.4).

A set-associative cache holding coherence *state* (the MSI lattice) and
tags with LRU replacement.  Data always lives in the shared
:class:`~repro.mem.memory.Memory` — the directory protocol's
single-writer invariant makes memory the correct value source at every
instant, so the cache governs **timing** (hit vs. miss, local vs.
remote) while the memory governs **values** (including full/empty
bits).  See DESIGN.md: this is the standard "timing-first" simulator
factorization.

Also implements the Section 3.4 mechanisms that live cache-side:
``FLUSH`` (software write-back + invalidate) and the per-context
*fence counter*, incremented per dirty flush and decremented as the
(simulated) write-back acknowledgments arrive, readable through LDIO.
"""

import enum

from repro.errors import ConfigError
from repro.obs.events import EventKind


class LineState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


class CacheLine:
    __slots__ = ("tag", "state", "last_used")

    def __init__(self):
        self.tag = None
        self.state = LineState.INVALID
        self.last_used = 0


class CacheStats:
    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations_received = 0
        self.flushes = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def to_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "evictions": self.evictions,
            "invalidations_received": self.invalidations_received,
            "flushes": self.flushes,
        }


class Cache:
    """State/tag array of one node's cache."""

    def __init__(self, size_bytes=64 * 1024, block_bytes=16, assoc=4,
                 node_id=0):
        if size_bytes % (block_bytes * assoc):
            raise ConfigError("cache geometry does not divide evenly")
        if block_bytes & (block_bytes - 1):
            raise ConfigError("block size must be a power of two")
        self.node_id = node_id
        self.block_bytes = block_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (block_bytes * assoc)
        self._sets = [[CacheLine() for _ in range(assoc)]
                      for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()
        #: Optional event bus (see :mod:`repro.obs`); None = no-op hooks.
        self.events = None
        #: Optional transaction tracer (see :mod:`repro.obs.txn`).
        self.txn = None
        # Fence counters, one per hardware context (Section 3.4).
        self.fence_counters = {}

    def block_address(self, address):
        """The block-aligned address containing a byte address."""
        return address & ~(self.block_bytes - 1)

    def _locate(self, address):
        block = self.block_address(address)
        set_index = (block // self.block_bytes) % self.num_sets
        return self._sets[set_index], block

    def lookup(self, address):
        """The line holding this address if present and valid."""
        lines, block = self._locate(address)
        self._clock += 1
        for line in lines:
            if line.tag == block and line.state is not LineState.INVALID:
                line.last_used = self._clock
                return line
        return None

    def probe(self, address):
        """Like lookup but without touching LRU (for the directory)."""
        lines, block = self._locate(address)
        for line in lines:
            if line.tag == block and line.state is not LineState.INVALID:
                return line
        return None

    def install(self, address, state, now=0):
        """Fill a line (evicting LRU if needed); returns the victim's
        ``(tag, state)`` when a valid line was displaced, else None."""
        lines, block = self._locate(address)
        self._clock += 1
        victim = None
        for line in lines:
            if line.state is LineState.INVALID or line.tag == block:
                victim = line
                break
        if victim is None:
            victim = min(lines, key=lambda l: l.last_used)
        displaced = None
        if victim.state is not LineState.INVALID and victim.tag != block:
            displaced = (victim.tag, victim.state)
            self.stats.evictions += 1
            if self.events is not None:
                self.events.emit(
                    EventKind.CACHE_EVICT, now, self.node_id,
                    block=victim.tag, state=victim.state.value)
        victim.tag = block
        victim.state = state
        victim.last_used = self._clock
        return displaced

    def invalidate(self, address, now=0):
        """Drop the line (coherence invalidation); returns its old state."""
        line = self.probe(address)
        if line is None:
            return LineState.INVALID
        old = line.state
        line.state = LineState.INVALID
        self.stats.invalidations_received += 1
        if self.events is not None:
            self.events.emit(
                EventKind.CACHE_INVALIDATE, now, self.node_id,
                block=line.tag, state=old.value)
        if self.txn is not None:
            self.txn.inv_leg(self.node_id, line.tag, old.value, now)
        return old

    def downgrade(self, address):
        """M -> S (another reader appeared); returns True if it was M."""
        line = self.probe(address)
        if line is not None and line.state is LineState.MODIFIED:
            line.state = LineState.SHARED
            return True
        return False

    def flush(self, address, context=0):
        """FLUSH: write back + invalidate; bumps the fence counter for
        dirty lines (decremented when the ack 'arrives' — the caller
        schedules that)."""
        line = self.probe(address)
        self.stats.flushes += 1
        if line is None:
            return False
        dirty = line.state is LineState.MODIFIED
        line.state = LineState.INVALID
        if dirty:
            self.fence_counters[context] = (
                self.fence_counters.get(context, 0) + 1)
        return dirty

    def fence_ack(self, context=0):
        """A write-back acknowledgment arrived for a context."""
        current = self.fence_counters.get(context, 0)
        if current > 0:
            self.fence_counters[context] = current - 1

    def fence_count(self, context=0):
        """Outstanding write-backs (the LDIO-readable fence counter)."""
        return self.fence_counters.get(context, 0)

    def contents(self):
        """All valid (block, state) pairs — for invariant checking."""
        result = {}
        for lines in self._sets:
            for line in lines:
                if line.state is not LineState.INVALID:
                    result[line.tag] = line.state
        return result
