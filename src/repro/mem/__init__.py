"""The ALEWIFE memory system (paper Section 2): word memory with
full/empty bits, per-node caches, the full-map directory protocol, and
the cache/directory controller."""

from repro.mem.cache import Cache, LineState
from repro.mem.directory import Directory, DirState
from repro.mem.ideal import IdealMemoryPort
from repro.mem.memory import Memory

__all__ = ["Cache", "Directory", "DirState", "IdealMemoryPort",
           "LineState", "Memory"]
