"""The coherent memory system: all nodes' caches, directories, and the
network, wired to the processors (the full ALEWIFE of Figure 1/4).

Address-to-home interleaving is by block: block ``b`` is homed at node
``(b / block_bytes) mod N``, spreading the directory and memory traffic
evenly — the "distributed, globally-shared memory" of Section 2.
"""

from repro.core.processor import Processor
from repro.mem.cache import Cache
from repro.mem.controller import CacheController
from repro.mem.directory import Directory
from repro.net.network import Network
from repro.net.topology import KAryNCube


class CoherentMemorySystem:
    """Builds and owns the per-node memory hierarchy."""

    def __init__(self, machine, decoder):
        config = machine.config
        self.machine = machine
        self.memory = machine.memory
        self.memory_latency = config.coherent_memory_latency
        self.block_bytes = config.cache_block_bytes

        self.topology = KAryNCube.fitting(
            config.num_processors, dim=config.network_dim)
        self.network = Network(self.topology,
                               hop_cycles=config.network_hop_cycles)

        self.caches = []
        self.directories = []
        self.controllers = []
        self.cpus = []
        for node in range(config.num_processors):
            cache = Cache(size_bytes=config.cache_bytes,
                          block_bytes=config.cache_block_bytes,
                          assoc=config.cache_assoc,
                          node_id=node)
            directory = Directory(node)
            controller = CacheController(node, self.memory, cache, self)
            cpu = Processor(node_id=node, port=controller,
                            num_frames=config.num_task_frames,
                            decoder=decoder)
            cpu.trap_squash_cycles = config.trap_squash_cycles
            self.caches.append(cache)
            self.directories.append(directory)
            self.controllers.append(controller)
            self.cpus.append(cpu)

    def home_of(self, block_address):
        """The home node of a block (block-interleaved)."""
        return (block_address // self.block_bytes) % len(self.cpus)

    def advance_to(self, time):
        """Hook for time-driven components (none: transactions compute
        their completion at issue; see the controller docstring)."""

    def check_coherence_invariants(self):
        """Machine-wide single-writer check (tests and debugging)."""
        for directory in self.directories:
            directory.check_invariants(self.caches)

    def aggregate_miss_rate(self):
        """Data-access miss rate across all caches."""
        hits = sum(c.stats.hits for c in self.caches)
        misses = sum(c.stats.misses for c in self.caches)
        total = hits + misses
        return misses / total if total else 0.0
