"""Simulated main memory with full/empty bits (paper Section 3.3).

"Words in memory have a 32 bit data field, and have an additional
synchronization bit called the full/empty bit."  A bit associated with
each memory word indicates the state of the word: full or empty.  The
load of an empty location or the store into a full location can trap
the processor.

Addresses are byte addresses; words live at multiples of 4.  The
full/empty state of every word defaults to *full*, so ordinary data is
unaffected; the run-time system allocates synchronization slots (future
value cells, I-structure elements, lock words) in the empty state.

The :meth:`Memory.sync_load` / :meth:`Memory.sync_store` helpers apply
the Table 2 flavor semantics; both the ideal memory port and the full
cache/directory controller are built on them so the synchronization
behavior is identical in every machine mode.
"""

from repro.core.traps import TrapKind
from repro.errors import MemoryError_
from repro.isa.tags import WORD_MASK


class CodeWatch:
    """Write-watch over words that processors have translated.

    Self-modifying-code support for the translation-cache tiers
    (:mod:`repro.core.execops` closures and :mod:`repro.core.jit`
    blocks): each processor registers the word ranges it has compiled
    via :meth:`cover`; :class:`Memory` calls :meth:`notify` from its
    two write choke points (:meth:`Memory.sync_store`,
    :meth:`Memory.write_word` — every store flavor, block transfer, and
    monitor poke lands on one of them) whenever a watched word is
    written, and every registered listener drops its stale
    translations.  Word-granular, so data stores never false-positive;
    the set only grows with the translated code footprint.  Purely a
    host-level mechanism: no cycle accounting is involved, so the
    lockstep schedules are unaffected.
    """

    __slots__ = ("words", "_listeners")

    def __init__(self):
        self.words = set()
        self._listeners = []

    def add_listener(self, callback):
        """Register ``callback(address)`` for writes to watched words."""
        self._listeners.append(callback)

    def cover(self, start, end):
        """Watch the byte range ``[start, end)`` (word granular)."""
        self.words.update(range(start >> 2, (end + 3) >> 2))

    def notify(self, address):
        for callback in self._listeners:
            callback(address)


class Memory:
    """A bank of 32-bit words, each with a full/empty bit.

    Args:
        size_words: capacity in words.
        base: byte address of the first word (banks in a distributed
            machine each cover a slice of the global address space).
    """

    def __init__(self, size_words, base=0):
        if base % 4:
            raise MemoryError_("memory base must be word aligned")
        self.base = base
        self.size_words = size_words
        self._words = [0] * size_words
        # full/empty bits: 1 = full (the default for ordinary data)
        self._full = bytearray(b"\x01" * size_words)
        #: Optional :class:`CodeWatch` (the machine attaches one per
        #: bank); None keeps both write paths check-free.
        self.code_watch = None

    @property
    def limit(self):
        """First byte address past this bank."""
        return self.base + 4 * self.size_words

    def _index(self, address):
        if address % 4:
            raise MemoryError_("misaligned word access: %#x" % address)
        index = (address - self.base) >> 2
        if not 0 <= index < self.size_words:
            raise MemoryError_(
                "address %#x outside bank [%#x, %#x)" % (address, self.base, self.limit)
            )
        return index

    def contains(self, address):
        """True if the byte address falls in this bank."""
        return self.base <= address < self.limit and address % 4 == 0

    # -- raw word access (no synchronization semantics) --------------------

    def read_word(self, address):
        """Read the 32-bit word at a byte address."""
        return self._words[self._index(address)]

    def write_word(self, address, value):
        """Write the 32-bit word at a byte address."""
        self._words[self._index(address)] = value & WORD_MASK
        watch = self.code_watch
        if watch is not None and (address >> 2) in watch.words:
            watch.notify(address)

    # -- full/empty bits ------------------------------------------------------

    def is_full(self, address):
        """State of the word's full/empty bit."""
        return bool(self._full[self._index(address)])

    def set_full(self, address, full):
        """Set the word's full/empty bit."""
        self._full[self._index(address)] = 1 if full else 0

    # -- Table 2 semantics ------------------------------------------------------

    def sync_load(self, address, flavor):
        """Apply a load flavor at this word.

        Returns ``(value, was_full, trap_kind)``.  When ``trap_kind`` is
        not ``None`` the access did not complete (the word state is
        untouched) and the caller must trap the processor.
        """
        index = self._index(address)
        was_full = bool(self._full[index])
        if flavor.raw:
            return self._words[index], was_full, None
        if flavor.trap_on_empty and not was_full:
            return 0, was_full, TrapKind.EMPTY_LOAD
        value = self._words[index]
        if flavor.set_empty:
            self._full[index] = 0
        return value, was_full, None

    def sync_store(self, address, value, flavor):
        """Apply a store flavor at this word.

        Returns ``(was_full, trap_kind)``; semantics mirror
        :meth:`sync_load` (stores trap on *full* locations).
        """
        index = self._index(address)
        was_full = bool(self._full[index])
        if flavor.raw:
            self._words[index] = value & WORD_MASK
            if flavor.set_full:
                self._full[index] = 1
        else:
            if flavor.trap_on_full and was_full:
                return was_full, TrapKind.FULL_STORE
            self._words[index] = value & WORD_MASK
            if flavor.set_full:
                self._full[index] = 1
        watch = self.code_watch
        if watch is not None and (address >> 2) in watch.words:
            watch.notify(address)
        return was_full, None

    # -- program loading --------------------------------------------------------

    def load_program(self, program):
        """Copy an assembled :class:`~repro.isa.assembler.Program` in."""
        address = program.base
        for word in program.words:
            self.write_word(address, word)
            address += 4

    def dump(self, address, count):
        """Read ``count`` words starting at a byte address (debugging)."""
        return [self.read_word(address + 4 * i) for i in range(count)]
