"""An ideal (uniform, single-cycle) memory port.

This is the memory system used for the paper's Table 3 multiprocessor
measurements: "Measurements for multiple processor executions on APRIL
(2-16) used the processor simulator without the cache and network
simulators, in effect simulating a shared-memory machine with no memory
latency."

Full/empty-bit semantics are still enforced (synchronization is the
point of those runs); only latency and coherence are idealized.  All
processors share one :class:`~repro.mem.memory.Memory`.
"""

from repro.core.memport import MemOutcome, MemoryPort


class IdealMemoryPort(MemoryPort):
    """Uniform-latency port over a shared memory bank.

    Args:
        memory: the shared :class:`Memory`.
        latency: cycles per data access (1 = the Table 3 configuration).
    """

    def __init__(self, memory, latency=1):
        self.memory = memory
        self.latency = latency
        #: Simple I/O register space for LDIO/STIO; the run-time system's
        #: IPI mechanism installs hooks here.
        self.io_read_hook = None
        self.io_write_hook = None

    def fetch(self, address):
        return self.memory.read_word(address)

    def load(self, address, flavor, context=None):
        value, was_full, trap_kind = self.memory.sync_load(address, flavor)
        if trap_kind is not None:
            return MemOutcome.trap(trap_kind, cycles=self.latency,
                                   fe_full=was_full)
        return MemOutcome.hit(value=value, cycles=self.latency,
                              fe_full=was_full)

    def store(self, address, value, flavor, context=None):
        was_full, trap_kind = self.memory.sync_store(address, value, flavor)
        if trap_kind is not None:
            return MemOutcome.trap(trap_kind, cycles=self.latency,
                                   fe_full=was_full)
        return MemOutcome.hit(cycles=self.latency, fe_full=was_full)

    def flush(self, address, context=None):
        # No cache to flush in the ideal machine.
        return MemOutcome.hit(cycles=1)

    def ldio(self, address, context=None):
        if self.io_read_hook is not None:
            value, cycles = self.io_read_hook(address, context)
            return MemOutcome.hit(value=value, cycles=cycles)
        return MemOutcome.hit(value=0, cycles=1)

    def stio(self, address, value, context=None):
        if self.io_write_hook is not None:
            cycles = self.io_write_hook(address, value, context)
            return MemOutcome.hit(cycles=cycles)
        return MemOutcome.hit(cycles=1)
