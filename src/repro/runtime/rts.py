"""The APRIL run-time system (paper Section 6).

Owns the memory layout (per-node user and kernel heaps, thread stacks),
the scheduler, the future table, the lazy task queues, and the idle
loop, and installs the trap handlers of :mod:`repro.runtime.handlers`
on every processor.

The run-time system is deliberately machine-wide (not per-node): in the
real ALEWIFE its queues live in shared memory and any node manipulates
them under full/empty locks; here the simulation event loop serializes
handler execution, which subsumes those locks (see DESIGN.md).
"""

from repro.core.psr import ET_BIT
from repro.errors import DeadlockError, RuntimeSystemError
from repro.isa import registers, tags
from repro.obs.events import EventKind
from repro.runtime.futures import FutureTable
from repro.runtime.handlers import TrapHandlers
from repro.runtime.heap import Arena, Heap
from repro.runtime.lazy import LazyQueue
from repro.runtime.scheduler import Scheduler
from repro.runtime.stubs import THREAD_START_LABEL
from repro.runtime.thread import Thread, ThreadState


def _align8(address):
    return (address + 7) & ~7


class RuntimeSystem:
    """Scheduler + heaps + trap handlers for one machine.

    Args:
        config: a :class:`~repro.machine.config.MachineConfig`.
        memory: the shared :class:`~repro.mem.memory.Memory`.
        cpus: the machine's processors.
        program: the loaded :class:`~repro.isa.assembler.Program`; must
            define the ``__thread_start`` stub label.
    """

    def __init__(self, config, memory, cpus, program):
        self.config = config
        self.memory = memory
        self.cpus = cpus
        self.program = program
        self.thread_start_pc = program.address_of(THREAD_START_LABEL)

        self.scheduler = Scheduler(cpus, config)
        self.futures = FutureTable()
        self.lazy_queues = [LazyQueue(i) for i in range(len(cpus))]
        self.lazy_pushed = 0
        self.lazy_stolen = 0
        #: The :class:`~repro.runtime.sync.SyncAllocator`, if one was
        #: built for this machine (it registers itself here).
        self.sync = None

        self.done = False
        self.result = None
        self.output = []
        self.threads = []
        self._stack_free_lists = [[] for _ in cpus]
        self._ipi_receiver = None
        #: Optional event bus (see :mod:`repro.obs`); None = no-op hooks.
        self.events = None
        #: Optional lifetime accountant (see :mod:`repro.obs.lifetime`).
        self.lifetime = None

        self._layout_heaps()
        self._make_singletons()
        handlers = TrapHandlers(self)
        for cpu in cpus:
            handlers.install(cpu)
            self._init_globals(cpu)
            cpu.env = self

    # -- memory layout ------------------------------------------------------

    def _layout_heaps(self):
        config = self.config
        cursor = _align8(self.program.end)
        self._user_arenas = []
        self._kernel_heaps = []
        for node in range(len(self.cpus)):
            user_base = cursor
            cursor += config.user_heap_words * 4
            kernel_base = cursor
            cursor += config.kernel_heap_words * 4
            if cursor > self.memory.limit:
                raise RuntimeSystemError(
                    "memory_words too small for %d nodes of heap"
                    % len(self.cpus))
            self._user_arenas.append(
                Arena(self.memory, user_base, kernel_base))
            self._kernel_heaps.append(
                Heap(Arena(self.memory, kernel_base, cursor)))

    def _make_singletons(self):
        heap0 = self._kernel_heaps[0]
        self.nil = heap0.singleton(0)
        self.true = heap0.singleton(1)

    def _init_globals(self, cpu):
        arena = self._user_arenas[cpu.node_id]
        cpu.write_reg(registers.GP, arena.pointer)
        cpu.write_reg(registers.GL, arena.limit)
        cpu.write_reg(registers.NIL, self.nil)
        cpu.write_reg(registers.TRUE, self.true)

    def kernel_heap(self, node):
        """The kernel heap (futures, stacks, descriptors) of a node."""
        return self._kernel_heaps[node]

    def user_vector(self, cpu, length, fill=0):
        """Allocate a vector from a node's *user* arena, keeping the
        processor's inline allocation register ``gp`` in sync."""
        from repro.runtime.heap import TYPE_VECTOR, make_header
        arena = self._user_arenas[cpu.node_id]
        arena.pointer = cpu.read_reg(registers.GP)
        address = arena.allocate(length + 1)
        cpu.write_reg(registers.GP, arena.pointer)
        self.memory.write_word(address, make_header(TYPE_VECTOR, length))
        for i in range(length):
            self.memory.write_word(address + 4 * (i + 1), fill)
        return tags.make_other(address)

    # -- stacks --------------------------------------------------------------

    def allocate_stack(self, node):
        """A stack region for a thread on ``node`` (free-list reuse)."""
        free = self._stack_free_lists[node]
        if free:
            return free.pop()
        return self._kernel_heaps[node].arena.allocate(self.config.stack_words)

    def free_stack(self, thread):
        """Return a finished thread's stack to its node's free list."""
        if thread.stack_base is not None:
            self._stack_free_lists[thread.home_node].append(thread.stack_base)
            thread.stack_base = None

    # -- threads -----------------------------------------------------------------

    def new_thread(self, home_node, entry_closure=None, future=None,
                   args=(), is_root=False, name=None, cpu=None, parent=None):
        """Create a fresh (unloaded, stack-less) virtual thread.

        The stack is assigned lazily at first load, so deep eager-future
        trees don't hold stacks for queued-but-never-started threads.
        ``cpu`` is the creating processor, used only to timestamp the
        spawn event when observability is attached.  ``parent`` is the
        spawning thread's tid (the spawn edge of the causal DAG); when
        omitted it is taken from the creating processor's active frame.
        """
        thread = Thread(
            stack_base=None,
            stack_words=self.config.stack_words,
            home_node=home_node,
            future=future,
            entry_closure=entry_closure,
            args=args,
            is_root=is_root,
            name=name,
        )
        self.threads.append(thread)
        if self.events is not None:
            if parent is None and cpu is not None:
                active = cpu.frames[cpu.fp].thread
                parent = active.tid if active is not None else None
            self.events.emit(
                EventKind.THREAD_SPAWN,
                cpu.cycles if cpu is not None else 0,
                cpu.node_id if cpu is not None else home_node,
                tid=thread.tid, thread=thread.name, home=home_node,
                parent=parent)
        return thread

    def bootstrap(self, cpu, frame, thread):
        """Initialize a fresh thread's registers in its new frame."""
        if thread.stack_base is None:
            thread.stack_base = self.allocate_stack(thread.home_node)
            thread.stolen_base = thread.stack_base
        frame.regs[registers.CL] = thread.entry_closure or 0
        for i, arg in enumerate(thread.args):
            frame.regs[registers.ARG_REGS[i]] = arg & tags.WORD_MASK
        frame.regs[registers.SP] = thread.stack_base
        frame.pc = self.thread_start_pc
        frame.npc = self.thread_start_pc + 4
        frame.psr.value = ET_BIT

    def spawn_main(self, entry, args=()):
        """Create the root thread calling ``entry`` (label or address).

        Arguments are Python ints (converted to fixnums) or pre-tagged
        words.  The thread is queued on node 0; the machine's idle loop
        loads it.
        """
        address = (self.program.address_of(entry)
                   if isinstance(entry, str) else entry)
        closure = self._kernel_heaps[0].closure(address)
        words = [
            arg if isinstance(arg, TaggedWord) else tags.make_fixnum(arg)
            for arg in args
        ]
        thread = self.new_thread(
            0, entry_closure=closure, args=words, is_root=True, name="main")
        self.scheduler.enqueue(thread, 0)
        return thread

    # -- futures -------------------------------------------------------------------

    def resolve_future(self, cpu, future_word, value, waker=None):
        """Resolve a future cell and wake its blocked waiters.

        ``waker`` is the tid of the resolving thread; when omitted it is
        taken from the active frame (callers that resolve *after*
        retiring the producer must pass it explicitly — the frame is
        empty by then).
        """
        cell = tags.pointer_address(future_word)
        if self.memory.is_full(cell):
            raise RuntimeSystemError("future @%#x resolved twice" % cell)
        self.memory.write_word(cell, value)
        self.memory.set_full(cell, True)
        cpu.charge(self.config.future_resolve_cycles, "trap")
        waiters = self.futures.take_waiters(future_word)
        self.futures.note_resolved(cpu.cycles, cpu.node_id, cell=cell,
                                   waiters=len(waiters))
        if waker is None:
            active = cpu.frames[cpu.fp].thread
            waker = active.tid if active is not None else None
        for waiter in waiters:
            waiter.blocked_on = None
            waiter.transition(ThreadState.READY)
            self.scheduler.enqueue(waiter)
            self.futures.note_woken(cpu.cycles, cpu.node_id, cell=cell,
                                    tid=waiter.tid, waker=waker)

    # -- dispatch / idle loop ------------------------------------------------------

    def dispatch_next(self, cpu):
        """After a frame frees up: run another loaded thread, or load one."""
        next_frame = self.scheduler.next_occupied_frame(cpu)
        if next_frame is not None:
            self.scheduler.activate_frame(cpu, next_frame)
            return True
        thread = self.scheduler.dequeue_local(cpu.node_id)
        if thread is not None:
            frame = self.scheduler.load_thread(
                cpu, thread, bootstrap=self.bootstrap)
            self.scheduler.activate_frame(cpu, frame)
            return True
        return False

    def has_work(self, cpu):
        """True if the processor has a loaded thread to execute."""
        frames = cpu.frames
        # The active frame is occupied for the entire life of a running
        # thread — check it first so the per-step call rarely scans.
        if frames[cpu.fp].thread is not None:
            return True
        for frame in frames:
            if frame.thread is not None:
                return True
        return False

    def on_idle(self, cpu):
        """Idle processor looks for work (paper Section 3.2: 'the new
        task is created only when some processor becomes idle and looks
        for work, stealing the continuation').

        Order: local ready queue, then steal a lazy continuation, then
        steal a ready thread from another node.  Returns True if work
        was found and loaded.
        """
        if self.done:
            return False
        if cpu.ipi_queue:
            # Even an idle processor must take preemptive interrupts
            # (Section 3.4: IPIs are an alternative to polling).
            message = cpu.ipi_queue.popleft()
            self.deliver_ipi(cpu, message)
            cpu.charge(10, "trap")
            return True
        thread = self.scheduler.dequeue_local(cpu.node_id)
        if thread is None and self.config.lazy_futures:
            thread = self.steal_lazy_task(cpu)
        if thread is None:
            cpu.charge(self.config.steal_poll_cycles, "idle")
            thread = self.scheduler.steal_ready_thread(cpu.node_id)
        if thread is None:
            cpu.charge(self.config.idle_poll_cycles, "idle")
            return False
        frame = self.scheduler.load_thread(cpu, thread, bootstrap=self.bootstrap)
        self.scheduler.activate_frame(cpu, frame)
        return True

    # -- lazy continuation stealing ---------------------------------------------

    def steal_lazy_task(self, thief_cpu):
        """Steal the oldest lazy marker anywhere; returns a READY thread.

        Implements the stack splitting of Mohr et al. [17]: copy the
        victim's frozen continuation region into a fresh stack, create
        the future the victim will resolve at its finish trap, and
        transfer any older stolen markers (plus root-ness and future
        responsibility when the stack bottom moves).
        """
        count = len(self.cpus)
        marker = None
        for step in range(count):
            node = (thief_cpu.node_id + step) % count
            marker = self.lazy_queues[node].steal()
            if marker is not None:
                break
        if marker is None:
            return None

        victim = marker.thread
        future_word = self.kernel_heap(thief_cpu.node_id).future_cell()
        marker.future = future_word
        self.futures.note_created(thief_cpu.cycles, thief_cpu.node_id,
                                  cell=tags.pointer_address(future_word))
        self.lazy_stolen += 1

        lo, hi = victim.stolen_base, marker.sp
        if hi < lo:
            raise RuntimeSystemError(
                "stolen region [%#x, %#x) is inverted" % (lo, hi))
        thread = self.new_thread(
            thief_cpu.node_id,
            name="steal-of-%s" % victim.name,
            cpu=thief_cpu,
            parent=victim.tid,
        )
        thread.stack_base = self.allocate_stack(thief_cpu.node_id)
        thread.stolen_base = thread.stack_base
        copied_words = (hi - lo) // 4
        for i in range(copied_words):
            self.memory.write_word(
                thread.stack_base + 4 * i, self.memory.read_word(lo + 4 * i))
        new_sp = thread.stack_base + (hi - lo)

        # Markers older than the stolen one (all stolen themselves) ride
        # along with the continuation frames they point into.
        index = victim.lazy_markers.index(marker)
        thread.lazy_markers = victim.lazy_markers[:index]
        victim.lazy_markers = victim.lazy_markers[index:]
        for moved in thread.lazy_markers:
            moved.thread = thread

        # The stack bottom carries the thread identity: root-ness and
        # the future this spine must resolve on normal exit.
        if lo == (victim.stack_base if victim.stack_base is not None else lo):
            thread.future = victim.future
            victim.future = None
            thread.is_root = victim.is_root
            victim.is_root = False
        victim.stolen_base = hi

        regs = [0] * registers.NUM_FRAME_REGISTERS
        regs[registers.SP] = new_sp
        regs[registers.ARG_REGS[0]] = future_word
        thread.saved_state = {
            "regs": regs,
            "pc": marker.resume_pc,
            "npc": marker.resume_pc + 4,
            "psr": ET_BIT,
        }
        lifetime = self.lifetime
        if lifetime is not None:
            # The steal cost is the stolen thread's startup, not idle time.
            lifetime.push_owner(thief_cpu, thread.tid)
        thief_cpu.charge(
            self.config.lazy_steal_cycles + copied_words, "trap")
        if lifetime is not None:
            lifetime.pop_owner(thief_cpu)
        return thread

    # -- IPIs ----------------------------------------------------------------------

    def set_ipi_receiver(self, callback):
        """Install the machine-wide IPI receiver ``callback(cpu, message)``."""
        self._ipi_receiver = callback

    def deliver_ipi(self, cpu, message):
        if self._ipi_receiver is None:
            return False
        self._ipi_receiver(cpu, message)
        return True

    # -- termination -------------------------------------------------------------

    def finish(self, result_word):
        """The root thread exited; record the program result."""
        self.done = True
        self.result = result_word

    def decode_value(self, word):
        """Decode a tagged result word to Python data."""
        return self._kernel_heaps[0].to_python(
            word, false_object=self.nil, true_object=self.true)

    def check_deadlock(self):
        """Raise if no processor can ever make progress again."""
        if self.done:
            return
        if any(self.has_work(cpu) for cpu in self.cpus):
            return
        if self.scheduler.ready_count():
            return
        if any(len(q) for q in self.lazy_queues):
            return
        blocked = self.futures.waiting_count()
        raise DeadlockError(
            "deadlock: no loaded or ready threads, %d blocked on futures"
            % blocked)


class TaggedWord(int):
    """Marker type: an argument to :meth:`spawn_main` that is already a
    tagged word (skip fixnum conversion)."""
