"""Thread scheduling (paper Sections 3 and 6).

"In APRIL, thread scheduling is done in software, and unlimited virtual
dynamic threads are supported. ... The scheduler tries to choose
threads from the set of loaded threads for execution to minimize the
overhead of saving and restoring threads to and from memory."

The scheduler keeps one ready queue per node (threads prefer their home
node, and ``future-on`` pins placement), assigns hardware task frames,
and performs the expensive load/unload operations, charging their cycle
costs to the processor doing the work.
"""

from collections import deque

from repro.errors import RuntimeSystemError
from repro.isa import registers, tags
from repro.obs.events import EventKind
from repro.runtime.thread import ThreadState


class Scheduler:
    """Ready queues + task-frame management for all nodes."""

    def __init__(self, cpus, config):
        self.cpus = cpus
        self.config = config
        self.ready = [deque() for _ in cpus]
        self._rr_counter = 0
        # Event counters for the harness.
        self.loads = 0
        self.unloads = 0
        self.steals = 0
        #: Optional event bus (see :mod:`repro.obs`); None = no-op hooks.
        self.events = None
        #: Optional lifetime accountant (see :mod:`repro.obs.lifetime`);
        #: load/unload costs are charged while no thread is active, so
        #: the accountant is told which thread owns them.
        self.lifetime = None

    def counters(self):
        """Counter snapshot for reports."""
        return {
            "loads": self.loads,
            "unloads": self.unloads,
            "steals": self.steals,
            "ready": self.ready_count(),
        }

    # -- placement -------------------------------------------------------

    def pick_node(self, creating_node, pinned=None):
        """Choose the home node for a new thread."""
        if pinned is not None:
            if not 0 <= pinned < len(self.cpus):
                raise RuntimeSystemError("future-on node %d out of range" % pinned)
            return pinned
        if self.config.placement == "local":
            return creating_node
        node = self._rr_counter % len(self.cpus)
        self._rr_counter += 1
        return node

    def enqueue(self, thread, node=None):
        """Put a READY thread on a node's ready queue."""
        if thread.state is not ThreadState.READY:
            raise RuntimeSystemError(
                "enqueue of non-ready thread %r" % thread)
        self.ready[node if node is not None else thread.home_node].append(thread)

    def ready_count(self):
        return sum(len(q) for q in self.ready)

    # -- frame management ------------------------------------------------------

    def load_thread(self, cpu, thread, frame=None, bootstrap=None):
        """Load a thread into a hardware task frame (Section 6.2 cost).

        ``bootstrap`` is a callable ``(cpu, frame, thread)`` that
        initializes a *fresh* thread's registers (entry closure, stack
        pointer, start PC); threads with ``saved_state`` are restored
        from it instead.
        """
        if frame is None:
            frame = cpu.free_frame()
        if frame is None:
            raise RuntimeSystemError("no free task frame on node %d" % cpu.node_id)
        if frame.occupied:
            raise RuntimeSystemError("loading into occupied frame %d" % frame.index)
        thread.transition(ThreadState.LOADED)
        frame.thread = thread
        if thread.saved_state is not None:
            frame.load_state(thread.saved_state)
            thread.saved_state = None
        else:
            if bootstrap is None:
                raise RuntimeSystemError(
                    "fresh thread %r needs a bootstrap" % thread)
            frame.reset()
            frame.thread = thread
            bootstrap(cpu, frame, thread)
        frame.psr.tid = thread.tid & 0xFFFF
        lifetime = self.lifetime
        if lifetime is not None:
            lifetime.push_owner(cpu, thread.tid)
        cpu.charge(self.config.thread_load_cycles, "switch")
        if lifetime is not None:
            lifetime.pop_owner(cpu)
        self.loads += 1
        if self.events is not None:
            self.events.emit(
                EventKind.THREAD_LOAD, cpu.cycles, cpu.node_id,
                frame=frame.index, tid=thread.tid, thread=thread.name)
        return frame

    def unload_thread(self, cpu, frame, new_state):
        """Save a loaded thread's state out to memory and free the frame."""
        thread = frame.thread
        if thread is None:
            raise RuntimeSystemError("unloading an empty frame")
        thread.saved_state = frame.save_state()
        thread.transition(new_state)
        frame.thread = None
        lifetime = self.lifetime
        if lifetime is not None:
            lifetime.push_owner(cpu, thread.tid)
        cpu.charge(self.config.thread_unload_cycles, "switch")
        if lifetime is not None:
            lifetime.pop_owner(cpu)
        self.unloads += 1
        if self.events is not None:
            extra = {}
            if (new_state is ThreadState.BLOCKED
                    and thread.blocked_on is not None):
                extra["cell"] = tags.pointer_address(thread.blocked_on)
                if thread.block_pc is not None:
                    extra["pc"] = thread.block_pc
            self.events.emit(
                EventKind.THREAD_UNLOAD, cpu.cycles, cpu.node_id,
                frame=frame.index, tid=thread.tid, thread=thread.name,
                state=new_state.value, **extra)
        return thread

    def retire_thread(self, frame, cpu=None):
        """Free the frame of a thread that finished (no state to save)."""
        thread = frame.thread
        thread.transition(ThreadState.DONE)
        frame.thread = None
        if self.events is not None and cpu is not None:
            self.events.emit(
                EventKind.THREAD_EXIT, cpu.cycles, cpu.node_id,
                frame=frame.index, tid=thread.tid, thread=thread.name)
        return thread

    # -- frame selection ----------------------------------------------------------

    def next_occupied_frame(self, cpu, exclude=None):
        """The next loaded frame after FP (round robin), or ``None``.

        ``exclude`` skips a frame index (e.g. the one being vacated).
        """
        count = len(cpu.frames)
        for step in range(1, count + 1):
            index = (cpu.fp + step) % count
            if index == exclude:
                continue
            if cpu.frames[index].occupied:
                return cpu.frames[index]
        return None

    def activate_frame(self, cpu, frame):
        """Point FP at a frame (the context-switch FP change)."""
        cpu.fp = frame.index

    # -- work finding ---------------------------------------------------------------

    def dequeue_local(self, node):
        """Pop the *newest* ready thread (owner runs LIFO).

        Depth-first order bounds the number of simultaneously-live
        thread stacks by the spawn-tree depth instead of its breadth —
        the classic work-stealing-deque discipline.
        """
        queue = self.ready[node]
        return queue.pop() if queue else None

    def steal_ready_thread(self, node):
        """Steal the *oldest* ready thread from another node (FIFO steal,
        taking the coarsest-grain work)."""
        count = len(self.cpus)
        for step in range(1, count):
            victim = (node + step) % count
            queue = self.ready[victim]
            if queue:
                self.steals += 1
                thread = queue.popleft()
                if self.events is not None:
                    self.events.emit(
                        EventKind.THREAD_STEAL, self.cpus[node].cycles,
                        node, victim=victim, tid=thread.tid,
                        thread=thread.name)
                return thread
        return None
