"""Virtual threads (paper Section 3, Figure 2).

"Threads in ALEWIFE are virtual.  Only a small subset of all threads can
be physically resident on the processors; these threads are called
loaded threads.  The remaining threads are referred to as unloaded
threads and live on various queues in memory, waiting their turn to be
loaded."

A :class:`Thread` is the descriptor the run-time system keeps for one
virtual thread: its saved architectural state when unloaded, its stack
region, the future cell it is computing (if it was spawned by
``future``), and scheduling bookkeeping.
"""

import enum
import itertools

from repro.errors import RuntimeSystemError

_tid_counter = itertools.count(1)


class ThreadState(enum.Enum):
    """Life cycle of a virtual thread."""

    READY = "ready"          # runnable, waiting on a ready queue
    LOADED = "loaded"        # resident in a hardware task frame
    BLOCKED = "blocked"      # unloaded, waiting on an unresolved future
    DONE = "done"            # finished; descriptor kept for inspection


class Thread:
    """One virtual thread.

    Args:
        stack_base: byte address of the thread's stack (grows upward).
        stack_words: stack capacity.
        home_node: node whose ready queue this thread prefers.
        future: the future-tagged pointer this thread resolves on exit,
            or ``None`` for plain threads (the main thread).
    """

    def __init__(self, stack_base, stack_words, home_node=0, future=None,
                 name=None, entry_closure=None, args=(), is_root=False):
        self.tid = next(_tid_counter)
        self.name = name or ("thread-%d" % self.tid)
        self.state = ThreadState.READY
        self.stack_base = stack_base
        self.stack_words = stack_words
        self.home_node = home_node
        self.future = future
        #: Entry closure word + argument words for fresh-thread bootstrap.
        self.entry_closure = entry_closure
        self.args = tuple(args)
        #: True for the thread whose exit finishes the whole run.  Lazy
        #: continuation stealing transfers root-ness with the stack bottom.
        self.is_root = is_root
        #: Stack addresses below this were stolen away (lazy splitting).
        self.stolen_base = stack_base
        #: Saved architectural state while unloaded (TaskFrame.save_state).
        self.saved_state = None
        #: Consecutive unresolved-touch context switches (starvation guard).
        self.spin_count = 0
        #: PC of the last full/empty fault (resets the spin counter when
        #: the thread faults somewhere new).
        self.last_fault_pc = None
        #: The future this thread is blocked on, when BLOCKED.
        self.blocked_on = None
        #: PC of the touch that blocked this thread (source attribution
        #: for the lifetime accountant; survives until the next block).
        self.block_pc = None
        #: Result word once DONE.
        self.result = None
        #: Lazy-task markers pushed by this thread (innermost last).
        self.lazy_markers = []

    @property
    def stack_limit(self):
        """First byte past the stack region."""
        return self.stack_base + 4 * self.stack_words

    def check_transition(self, new_state):
        """Validate a state transition; the scheduler calls this."""
        valid = {
            ThreadState.READY: (ThreadState.LOADED,),
            ThreadState.LOADED: (
                ThreadState.READY, ThreadState.BLOCKED, ThreadState.DONE,
            ),
            ThreadState.BLOCKED: (ThreadState.READY,),
            ThreadState.DONE: (),
        }
        if new_state not in valid[self.state]:
            raise RuntimeSystemError(
                "%s: illegal transition %s -> %s"
                % (self.name, self.state.value, new_state.value)
            )

    def transition(self, new_state):
        self.check_transition(new_state)
        self.state = new_state

    def __repr__(self):
        return "Thread(%s, %s, stack=%#x)" % (
            self.name, self.state.value, self.stack_base)
