"""Trap handlers: the run-time system's entry points.

These are the software routines the paper describes in Sections 3 and 6:
the context-switch (switch-spin) handler, the future-touch handler, the
full/empty exception handlers, and the ``future`` creation / lazy task
services that compiled Mul-T code reaches through software traps.

Each handler charges the cycle cost the paper measured for the
corresponding assembly routine (11-cycle context switch = 5-cycle squash
charged by the hardware + 6-cycle handler body here; 23-cycle resolved
future touch; parameterized costs for the rest — see
:class:`repro.machine.config.MachineConfig`).
"""

from repro.core.traps import TrapAction, TrapKind
from repro.errors import RuntimeSystemError, SimulationError
from repro.isa import registers, tags
from repro.obs.events import EventKind
from repro.runtime import stubs
from repro.runtime.lazy import LazyMarker
from repro.runtime.thread import ThreadState

_A0 = registers.ARG_REGS[0]
_A1 = registers.ARG_REGS[1]
_T7 = registers.TEMP_REGS[7]


class TrapHandlers:
    """Installs and implements all trap handlers for one machine."""

    def __init__(self, rts):
        self.rts = rts
        self.config = rts.config

    def install(self, cpu):
        """Register every handler on a processor's trap table."""
        table = cpu.trap_table
        table.register(TrapKind.CACHE_MISS, self.on_cache_miss)
        table.register(TrapKind.EMPTY_LOAD, self.on_fe_exception)
        table.register(TrapKind.FULL_STORE, self.on_fe_exception)
        table.register(TrapKind.FUTURE_COMPUTE, self.on_future_touch)
        table.register(TrapKind.FUTURE_ADDRESS, self.on_future_touch)
        table.register(TrapKind.IPI, self.on_ipi)
        table.register(TrapKind.ALIGNMENT, self.on_fatal)
        table.register(TrapKind.ILLEGAL, self.on_fatal)
        table.register_software(stubs.V_THREAD_EXIT, self.on_thread_exit)
        table.register_software(stubs.V_FUTURE, self.on_future_create)
        table.register_software(stubs.V_FUTURE_ON, self.on_future_create)
        table.register_software(stubs.V_LAZY_PUSH, self.on_lazy_push)
        table.register_software(stubs.V_LAZY_FINISH, self.on_lazy_finish)
        table.register_software(stubs.V_MAKE_VECTOR, self.on_make_vector)
        table.register_software(stubs.V_PRINT, self.on_print)
        table.register_software(stubs.V_ERROR, self.on_error)
        table.register_software(stubs.V_TOUCH, self.on_explicit_touch)

    # -- context switching -----------------------------------------------

    def _switch_spin(self, cpu, frame):
        """The Section 6.1 switch-spin: FP moves to the next loaded frame.

        The trapping instruction re-executes when control returns to
        this frame (the handler body is the rdpsr/save/save/wrpsr/jmpl/
        rett sequence: 6 cycles, 11 with the squash)."""
        cpu.charge(self.config.switch_handler_cycles, "switch")
        cpu.stats.context_switches += 1
        next_frame = self.rts.scheduler.next_occupied_frame(cpu)
        if next_frame is not None and next_frame is not frame:
            self.rts.scheduler.activate_frame(cpu, next_frame)
        if cpu.events is not None:
            cpu.events.emit(
                EventKind.CONTEXT_SWITCH, cpu.cycles, cpu.node_id,
                from_frame=frame.index, to_frame=cpu.fp)
        return TrapAction.SWITCHED

    def on_cache_miss(self, cpu, frame, trap):
        """Remote cache miss: the controller trapped us; switch-spin."""
        return self._switch_spin(cpu, frame)

    def on_fe_exception(self, cpu, frame, trap):
        """Full/empty synchronization fault (Section 6.1).

        Default policy is switch-spinning.  A thread that keeps faulting
        at the same instruction (the producer must be an *unloaded*
        thread — the starvation scenario of Section 3.1) is eventually
        unloaded and re-queued, the paper's "controller initiated trap
        ... whose handler unloads the thread".
        """
        thread = frame.thread
        if thread is None:
            raise RuntimeSystemError("f/e trap in an empty frame")
        if trap.pc == getattr(thread, "last_fault_pc", None):
            thread.spin_count += 1
        else:
            thread.last_fault_pc = trap.pc
            thread.spin_count = 1
        limit = self.config.touch_spin_limit * max(
            1, len(cpu.occupied_frames()))
        if thread.spin_count <= limit:
            return self._switch_spin(cpu, frame)
        # Yield: unload and requeue so unloaded producers can run.
        thread.spin_count = 0
        thread.block_pc = trap.pc
        self.rts.scheduler.unload_thread(cpu, frame, ThreadState.READY)
        self.rts.scheduler.enqueue(thread)
        self.rts.dispatch_next(cpu)
        return TrapAction.SWITCHED

    # -- futures -----------------------------------------------------------

    def on_future_touch(self, cpu, frame, trap):
        """Hardware-detected touch of a future (Sections 5, 6.2).

        If resolved, substitute the value into the trapping operand
        register(s) and retry — 23 cycles.  Otherwise switch-spin, and
        block (unload into the future's waiter list) after the spin
        limit, freeing the task frame.
        """
        future_word = trap.value
        if future_word is None or not tags.has_future_lsb(future_word):
            raise RuntimeSystemError("future trap without a future operand")
        memory = self.rts.memory
        cell = tags.pointer_address(future_word)
        if memory.is_full(cell):
            value = memory.read_word(cell)
            for reg in trap.instr.source_registers():
                if cpu.read_reg(reg, frame) == future_word:
                    cpu.write_reg(reg, value, frame)
            cpu.charge(self.config.future_touch_resolved_cycles, "trap")
            self.rts.futures.note_touch(True, cpu.cycles, cpu.node_id,
                                        cell=cell)
            if frame.thread is not None:
                frame.thread.spin_count = 0
            return TrapAction.RETRY

        self.rts.futures.note_touch(False, cpu.cycles, cpu.node_id,
                                    cell=cell)
        thread = frame.thread
        if thread is None:
            raise RuntimeSystemError("future touch in an empty frame")
        thread.spin_count += 1
        limit = self.config.touch_spin_limit * max(
            1, len(cpu.occupied_frames()))
        if thread.spin_count <= limit:
            return self._switch_spin(cpu, frame)
        # Block: unload the thread onto the future's waiter list.
        thread.spin_count = 0
        thread.blocked_on = future_word
        thread.block_pc = trap.pc
        self.rts.futures.add_waiter(future_word, thread)
        self.rts.scheduler.unload_thread(cpu, frame, ThreadState.BLOCKED)
        self.rts.dispatch_next(cpu)
        return TrapAction.SWITCHED

    def on_explicit_touch(self, cpu, frame, trap):
        """``(touch X)`` run-time service: resolve-or-wait on ``a0``."""
        value = cpu.read_reg(_A0, frame)
        if not tags.is_future(value):
            cpu.charge(2, "trap")
            return TrapAction.RESUME
        trap.value = value
        trap.instr = _TouchInstr()
        return self.on_future_touch(cpu, frame, trap)

    def on_future_create(self, cpu, frame, trap):
        """``(future E)`` with eager task creation (and ``future-on``)."""
        thunk = cpu.read_reg(_A0, frame)
        pinned = None
        if trap.vector == stubs.V_FUTURE_ON:
            pinned = tags.fixnum_value(cpu.read_reg(_A1, frame))
        future_word = self.rts.kernel_heap(cpu.node_id).future_cell()
        node = self.rts.scheduler.pick_node(cpu.node_id, pinned)
        thread = self.rts.new_thread(
            node, entry_closure=thunk, future=future_word, cpu=cpu)
        self.rts.scheduler.enqueue(thread, node)
        self.rts.futures.note_created(
            cpu.cycles, cpu.node_id, cell=tags.pointer_address(future_word))
        cpu.write_reg(_A0, future_word, frame)
        cpu.charge(self.config.eager_task_create_cycles, "trap")
        return TrapAction.RESUME

    # -- lazy task creation ---------------------------------------------------

    def on_lazy_push(self, cpu, frame, trap):
        """Push a lazy-task marker before evaluating the child inline."""
        thread = frame.thread
        marker = LazyMarker(
            thread,
            sp=cpu.read_reg(registers.SP, frame),
            resume_pc=cpu.read_reg(_T7, frame),
            node=cpu.node_id,
        )
        thread.lazy_markers.append(marker)
        self.rts.lazy_queues[cpu.node_id].push(marker)
        self.rts.lazy_pushed += 1
        cpu.charge(self.config.lazy_push_cycles, "trap")
        return TrapAction.RESUME

    def on_lazy_finish(self, cpu, frame, trap):
        """Child returned to its marker: pop, or resolve if stolen."""
        thread = frame.thread
        if not thread.lazy_markers:
            raise RuntimeSystemError(
                "%s: lazy finish without a marker" % thread.name)
        marker = thread.lazy_markers.pop()
        if not marker.stolen:
            self.rts.lazy_queues[marker.node].discard(marker)
            cpu.charge(self.config.lazy_finish_cycles, "trap")
            return TrapAction.RESUME
        # Stolen: resolve the thief's future with the child's value;
        # this thread's continuation now runs elsewhere, so retire it.
        if thread.lazy_markers:
            raise RuntimeSystemError(
                "%s: markers older than a stolen marker must have been "
                "transferred at steal time" % thread.name)
        value = cpu.read_reg(_A0, frame)
        self.rts.resolve_future(cpu, marker.future, value, waker=thread.tid)
        marker.active = False
        if thread.is_root:
            raise RuntimeSystemError(
                "root-ness must transfer with the stolen stack bottom")
        self.rts.scheduler.retire_thread(frame, cpu=cpu)
        self.rts.free_stack(thread)
        self.rts.dispatch_next(cpu)
        return TrapAction.SWITCHED

    # -- thread exit -------------------------------------------------------------

    def on_thread_exit(self, cpu, frame, trap):
        """A thread's entry closure returned; result is in ``a0``."""
        thread = frame.thread
        result = cpu.read_reg(_A0, frame)
        thread.result = result
        cpu.charge(self.config.thread_exit_cycles, "trap")
        self.rts.scheduler.retire_thread(frame, cpu=cpu)
        self.rts.free_stack(thread)
        if thread.future is not None:
            # The frame is already empty: tell the accountant the resolve
            # cost still belongs to the exiting thread.
            lifetime = self.rts.lifetime
            if lifetime is not None:
                lifetime.push_owner(cpu, thread.tid)
            self.rts.resolve_future(cpu, thread.future, result,
                                    waker=thread.tid)
            if lifetime is not None:
                lifetime.pop_owner(cpu)
        if thread.is_root:
            self.rts.finish(result)
            return TrapAction.SWITCHED
        self.rts.dispatch_next(cpu)
        return TrapAction.SWITCHED

    # -- services -----------------------------------------------------------------

    def on_make_vector(self, cpu, frame, trap):
        """``(make-vector n fill)`` — allocates in the node's user heap."""
        length = tags.fixnum_value(cpu.read_reg(_A0, frame))
        fill = cpu.read_reg(_A1, frame)
        vector = self.rts.user_vector(cpu, length, fill)
        cpu.write_reg(_A0, vector, frame)
        cpu.charge(10 + max(length, 0) // 4, "trap")
        return TrapAction.RESUME

    def on_print(self, cpu, frame, trap):
        """Record ``a0`` (decoded to Python data) on the output list."""
        word = cpu.read_reg(_A0, frame)
        self.rts.output.append(self.rts.decode_value(word))
        cpu.charge(5, "trap")
        return TrapAction.RESUME

    def on_error(self, cpu, frame, trap):
        code = cpu.read_reg(_A0, frame)
        raise SimulationError(
            "program signalled error %s at pc=%#x"
            % (tags.describe(code), trap.pc))

    def on_fatal(self, cpu, frame, trap):
        raise SimulationError(
            "%s trap at pc=%#x (%s)" % (trap.kind.name, trap.pc, trap.cause))

    def on_ipi(self, cpu, frame, trap):
        """Interprocessor interrupt: dispatch to the registered receiver."""
        handled = self.rts.deliver_ipi(cpu, trap.value)
        cpu.charge(10, "trap")
        if not handled:
            raise RuntimeSystemError("IPI with no receiver installed")
        return TrapAction.RETRY


class _TouchInstr:
    """Fake instruction making ``a0`` the substitution target of a touch."""

    def source_registers(self):
        return [_A0]
