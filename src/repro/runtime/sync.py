"""Fine-grain synchronization on full/empty bits (paper Section 3.3).

"APRIL adopts the full/empty bit approach used in the HEP to reduce
both the storage requirements and the number of memory accesses...
The load of an empty location or the store into a full location can
trap the processor causing a context switch, which helps hide
synchronization delay."

This module provides the classic structures as APRIL assembly routines
(linked into programs that want them) plus Python-side allocators that
lay the structures out in simulated memory:

* **I-structures** [3] — write-once slots: ``__istore`` traps on double
  writes, ``__ifetch`` waits (switch-spinning) for the producer.
* **L-structure locks** — a lock is one word whose full/empty bit *is*
  the lock: ``ldett`` atomically takes it (trapping while empty),
  ``stftt`` releases.  No test&set loop, no separate lock storage —
  the Section 3.3 argument.
* **Barriers** — a lock-protected counter with a sense word; arrivers
  decrement, the last one fills the sense word, and waiters ride the
  full/empty trap on it rather than busy-polling.  Barriers are
  single-generation: allocate one per phase (they are four words; the
  paper's data-parallel argument is precisely that such word-grain
  synchronization is cheap enough to allocate freely).
"""

from repro.errors import RuntimeSystemError
from repro.isa import tags

#: Lock layout: 1 word; full = free, empty = held.
LOCK_WORDS = 2       # padded to 8-byte alignment

#: Barrier layout: [0] lock, [1] remaining count, [2] total, [3] sense.
BARRIER_WORDS = 4

SYNC_ASM = """
; --- I-structures ----------------------------------------------------
__istore:            ; a0 = slot address, a1 = value; once only
    stftt a1, [a0+0] ; store + set full; traps FULL_STORE on reuse
    ret

__ifetch:            ; a0 = slot address -> a0 = value
    ldtt [a0+0], a0  ; traps EMPTY_LOAD (switch-spin) until produced
    ret

; --- L-structure locks ------------------------------------------------
__lock_acquire:      ; a0 = lock address
    ldett [a0+0], t0 ; atomically read-and-empty; traps while held
    ret

__lock_release:      ; a0 = lock address
    stftt r0, [a0+0] ; refill; traps FULL_STORE on double release
    ret

; --- barriers ----------------------------------------------------------
; a0 = barrier address.  Layout: +0 lock, +4 remaining, +8 total,
; +12 sense (full/empty bit used as the generation flag).
__barrier_wait:
    st ra, [sp+0]
    st a0, [sp+4]
    addr sp, 8, sp
    call __lock_acquire
    ldr [sp-4], a0       ; reload barrier pointer
    ldr [a0+4], t0       ; remaining
    subr t0, 4, t0       ; one fixnum less
    cmpr t0, 0
    be __barrier_last
    str t0, [a0+4]
    call __lock_release
    ldr [sp-4], a0
    ldtt [a0+12], t0     ; wait on the sense word (empty until release)
    ba __barrier_done
__barrier_last:
    ldr [a0+8], t1       ; reset remaining = total
    str t1, [a0+4]
    call __lock_release
    ldr [sp-4], a0
    stfnt r0, [a0+12]    ; fill the sense word: releases the waiters
__barrier_done:
    subr sp, 8, sp
    ld [sp+0], ra
    ret
"""


class SyncAllocator:
    """Allocates synchronization structures in a machine's memory."""

    def __init__(self, machine):
        self.machine = machine
        self.heap = machine.runtime.kernel_heap(0)
        self.memory = machine.memory
        self.istructure_arrays = 0
        self.istructure_slots = 0
        self.locks = 0
        self.barriers = 0
        self.words_allocated = 0
        machine.runtime.sync = self

    def counters(self):
        """Counter snapshot for reports."""
        return {
            "istructure_arrays": self.istructure_arrays,
            "istructure_slots": self.istructure_slots,
            "locks": self.locks,
            "barriers": self.barriers,
            "words_allocated": self.words_allocated,
        }

    @staticmethod
    def empty_counters():
        """The all-zero snapshot for machines with no allocator."""
        return {
            "istructure_arrays": 0,
            "istructure_slots": 0,
            "locks": 0,
            "barriers": 0,
            "words_allocated": 0,
        }

    def new_istructure_array(self, length):
        """An array of empty I-structure slots; returns the base address."""
        base = self.heap.arena.allocate(max(length, 2))
        for i in range(length):
            self.memory.write_word(base + 4 * i, 0)
            self.memory.set_full(base + 4 * i, False)
        self.istructure_arrays += 1
        self.istructure_slots += length
        self.words_allocated += max(length, 2)
        return base

    def new_lock(self):
        """A free lock (full word); returns its address."""
        base = self.heap.arena.allocate(LOCK_WORDS)
        self.memory.write_word(base, 0)
        self.memory.set_full(base, True)
        self.locks += 1
        self.words_allocated += LOCK_WORDS
        return base

    def new_barrier(self, parties):
        """A barrier for ``parties`` threads; returns its address."""
        if parties < 1:
            raise RuntimeSystemError("barrier needs at least one party")
        self.barriers += 1
        self.words_allocated += BARRIER_WORDS
        base = self.heap.arena.allocate(BARRIER_WORDS)
        self.memory.write_word(base + 0, 0)
        self.memory.set_full(base + 0, True)                    # lock free
        self.memory.write_word(base + 4, tags.make_fixnum(parties))
        self.memory.write_word(base + 8, tags.make_fixnum(parties))
        self.memory.write_word(base + 12, 0)
        self.memory.set_full(base + 12, False)                  # sense empty
        return base

    def lock_is_free(self, address):
        return self.memory.is_full(address)

    def istructure_value(self, base, index):
        address = base + 4 * index
        if not self.memory.is_full(address):
            raise RuntimeSystemError("I-structure slot %d still empty" % index)
        return self.memory.read_word(address)
