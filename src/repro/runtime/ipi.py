"""Message passing over IPIs and block transfers (paper Section 3.4).

"We are considering an interprocessor-interrupt mechanism (IPI) which
permits preemptive messages to be sent to specific processors.  IPIs
offer reasonable alternatives to polling and, in conjunction with
block-transfers, form a primitive for the message-passing computational
model."

This module builds exactly that primitive on the simulated hardware:

* a per-node **mailbox** in simulated memory (a ring of slots whose
  full/empty bits flow-control producer and consumer);
* ``send``: the sender deposits the payload with a block transfer (or
  plain stores for single words) and fires an IPI at the target;
* the IPI handler wakes a registered receiver (or queues the
  notification until one asks).

User programs drive it through the controller's memory-mapped registers
(``STIO``); this Python layer is the run-time-system half, used by the
examples and tests and available to trap handlers.
"""

from collections import deque

from repro.errors import RuntimeSystemError
from repro.isa import tags

#: Mailbox geometry: slots of (header, payload...) words.
DEFAULT_SLOTS = 8
SLOT_WORDS = 8            # 1 header + up to 7 payload words


class Mailbox:
    """One node's receive ring in simulated memory."""

    def __init__(self, memory, base, slots):
        self.memory = memory
        self.base = base
        self.slots = slots
        self.head = 0       # next slot the consumer reads
        self.tail = 0       # next slot the producer writes
        for index in range(slots):
            memory.set_full(self._slot(index), False)

    def _slot(self, index):
        return self.base + 4 * SLOT_WORDS * (index % self.slots)

    def deposit(self, words):
        """Producer side; returns the slot address, or None when full."""
        if len(words) >= SLOT_WORDS:
            raise RuntimeSystemError(
                "message longer than a mailbox slot (%d words)" % SLOT_WORDS)
        address = self._slot(self.tail)
        if self.memory.is_full(address):
            return None      # ring full: sender must retry
        self.memory.write_word(address, tags.make_fixnum(len(words)))
        for i, word in enumerate(words):
            self.memory.write_word(address + 4 * (i + 1), word)
        self.memory.set_full(address, True)   # publish
        self.tail += 1
        return address

    def collect(self):
        """Consumer side; returns the payload words, or None when empty."""
        address = self._slot(self.head)
        if not self.memory.is_full(address):
            return None
        count = tags.fixnum_value(self.memory.read_word(address))
        words = [self.memory.read_word(address + 4 * (i + 1))
                 for i in range(count)]
        self.memory.set_full(address, False)  # free the slot
        self.head += 1
        return words


class MessagePassing:
    """Machine-wide message-passing service on mailboxes + IPIs."""

    def __init__(self, machine, slots=DEFAULT_SLOTS):
        self.machine = machine
        runtime = machine.runtime
        self.mailboxes = []
        for node in range(len(machine.cpus)):
            base = runtime.kernel_heap(node).arena.allocate(
                slots * SLOT_WORDS)
            self.mailboxes.append(Mailbox(machine.memory, base, slots))
        self.notifications = [deque() for _ in machine.cpus]
        self.receivers = {}        # node -> callable(src_node, words)
        self.sent = 0
        self.delivered = 0
        runtime.set_ipi_receiver(self._on_ipi)

    # -- sending ------------------------------------------------------------

    def send(self, src_node, dst_node, payload_words, charge_to=None):
        """Deposit a message and interrupt the target.

        Returns True on success, False if the target's mailbox is full
        (the sender should back off and retry — preemptive messages are
        unreliable under overload, like the hardware).
        """
        if not 0 <= dst_node < len(self.mailboxes):
            raise RuntimeSystemError("bad destination node %d" % dst_node)
        mailbox = self.mailboxes[dst_node]
        if mailbox.deposit(list(payload_words)) is None:
            return False
        cpu = self.machine.cpus[dst_node]
        cpu.post_ipi(("message", src_node))
        if charge_to is not None:
            # Block transfer + IPI launch cost, charged to the sender.
            charge_to.charge(4 + len(payload_words), "trap")
        self.sent += 1
        return True

    # -- receiving --------------------------------------------------------------

    def on_message(self, node, callback):
        """Install ``callback(src_node, payload_words)`` for a node."""
        self.receivers[node] = callback

    def receive(self, node):
        """Poll a node's mailbox directly; returns words or None."""
        return self.mailboxes[node].collect()

    def pending(self, node):
        """IPI notifications not yet consumed by a receiver."""
        return len(self.notifications[node])

    def _on_ipi(self, cpu, message):
        if not (isinstance(message, tuple) and message
                and message[0] == "message"):
            return            # someone else's IPI payload
        src = message[1]
        words = self.mailboxes[cpu.node_id].collect()
        if words is None:
            raise RuntimeSystemError(
                "IPI with empty mailbox on node %d" % cpu.node_id)
        self.delivered += 1
        callback = self.receivers.get(cpu.node_id)
        if callback is not None:
            callback(src, words)
        else:
            self.notifications[cpu.node_id].append((src, words))
