"""Tagged heap allocation for the APRIL run-time system.

The Mul-T heap holds cons cells, vectors, closures, and future value
cells, all 8-byte aligned so their pointers can carry the Figure 3 tags.
Allocation is bump-pointer per processor: each node owns an *arena* (a
slice of the shared address space) and compiled code allocates inline
from the ``gp``/``gl`` global registers; the run-time system uses the
same arenas for futures, thread stacks and descriptors.

Object layouts (word offsets from the untagged base address):

* **cons** — ``[0]`` car, ``[1]`` cdr.  No header: the tag is the type.
* **vector** — ``[0]`` header, ``[1..n]`` elements.
* **closure** — ``[0]`` header, ``[1]`` code entry address (raw),
  ``[2..]`` captured values.
* **future cell** — ``[0]`` value slot, *full/empty bit starts empty*;
  ``[1]`` state word.  "The future is resolved if the full/empty bit of
  the future's value slot is set to full" (paper Section 6.2).

Headers are raw words: ``(length << 8) | type_code``.  Booleans and the
empty list are distinguished static objects allocated once per machine:
``#f`` and ``()`` are the same object (classic Lisp), ``#t`` is another.
"""

from repro.errors import RuntimeSystemError
from repro.isa import tags

#: Header type codes.
TYPE_VECTOR = 1
TYPE_CLOSURE = 2
TYPE_FUTURE = 3
TYPE_SINGLETON = 4
TYPE_STRING = 5

#: Word offsets within a future cell.
FUTURE_VALUE_SLOT = 0
FUTURE_STATE_SLOT = 1
FUTURE_STATE_UNRESOLVED = 0
FUTURE_STATE_RESOLVED = 1

#: Byte displacement that cancels each pointer tag when addressing the
#: object's base word, e.g. ``ld [consptr + CAR_OFF], rd``.
CAR_OFF = -tags.TAG_CONS
CDR_OFF = 4 - tags.TAG_CONS
VECTOR_HEADER_OFF = -tags.TAG_OTHER
VECTOR_ELEM_OFF = 4 - tags.TAG_OTHER          # element 0
CLOSURE_CODE_OFF = 4 - tags.TAG_OTHER
CLOSURE_CAPTURE_OFF = 8 - tags.TAG_OTHER      # capture 0
FUTURE_VALUE_OFF = -tags.TAG_FUTURE


def make_header(type_code, length):
    """Build a raw header word."""
    return ((length << 8) | type_code) & tags.WORD_MASK


def header_type(word):
    """Type code of a header word."""
    return word & 0xFF


def header_length(word):
    """Payload length (in words) of a header word."""
    return (word >> 8) & 0xFFFFFF


class Arena:
    """A bump-pointer allocation region inside the shared memory.

    Compiled code allocates with the same discipline through the
    ``gp``/``gl`` registers; the run-time keeps ``pointer`` in sync with
    the processor's ``gp`` when both allocate from one arena.
    """

    def __init__(self, memory, base, limit):
        if base % tags.OBJECT_ALIGN or limit % tags.OBJECT_ALIGN:
            raise RuntimeSystemError("arena bounds must be 8-byte aligned")
        if limit <= base:
            raise RuntimeSystemError("empty arena [%#x, %#x)" % (base, limit))
        self.memory = memory
        self.base = base
        self.limit = limit
        self.pointer = base

    @property
    def free_words(self):
        return (self.limit - self.pointer) // 4

    def allocate(self, nwords):
        """Reserve ``nwords`` (rounded up to 8-byte multiples).

        Returns the byte address of the block.  Raises on exhaustion —
        the reproduction runs without a garbage collector, so arenas are
        sized generously and exhaustion is a configuration error.
        """
        nbytes = ((nwords * 4 + tags.OBJECT_ALIGN - 1)
                  // tags.OBJECT_ALIGN) * tags.OBJECT_ALIGN
        address = self.pointer
        if address + nbytes > self.limit:
            raise RuntimeSystemError(
                "arena exhausted: need %d bytes, %d left (grow heap_words)"
                % (nbytes, self.limit - address)
            )
        self.pointer = address + nbytes
        return address


class Heap:
    """Typed object allocation over an :class:`Arena`."""

    def __init__(self, arena):
        self.arena = arena
        self.memory = arena.memory

    # -- constructors ------------------------------------------------------

    def cons(self, car, cdr):
        """Allocate a pair; returns the cons-tagged pointer."""
        address = self.arena.allocate(2)
        self.memory.write_word(address, car)
        self.memory.write_word(address + 4, cdr)
        return tags.make_cons(address)

    def vector(self, length, fill=0):
        """Allocate a vector of ``length`` elements; other-tagged."""
        if length < 0:
            raise RuntimeSystemError("negative vector length")
        address = self.arena.allocate(length + 1)
        self.memory.write_word(address, make_header(TYPE_VECTOR, length))
        for i in range(length):
            self.memory.write_word(address + 4 * (i + 1), fill)
        return tags.make_other(address)

    def closure(self, code_address, captures=()):
        """Allocate a closure over ``captures``; other-tagged."""
        address = self.arena.allocate(2 + len(captures))
        self.memory.write_word(address, make_header(TYPE_CLOSURE, len(captures)))
        self.memory.write_word(address + 4, code_address)
        for i, value in enumerate(captures):
            self.memory.write_word(address + 8 + 4 * i, value)
        return tags.make_other(address)

    def future_cell(self):
        """Allocate an unresolved future; returns the future-tagged pointer.

        The value slot's full/empty bit starts *empty*: a strict consumer
        that reaches it before resolution synchronizes on that bit.
        """
        address = self.arena.allocate(2)
        self.memory.write_word(address, 0)
        self.memory.set_full(address, False)
        self.memory.write_word(
            address + 4, tags.make_fixnum(FUTURE_STATE_UNRESOLVED))
        return tags.make_future(address)

    def singleton(self, code):
        """Allocate a distinguished static object (``()``/``#f``, ``#t``)."""
        address = self.arena.allocate(2)
        self.memory.write_word(address, make_header(TYPE_SINGLETON, code))
        self.memory.write_word(address + 4, 0)
        return tags.make_other(address)

    def string(self, text):
        """Allocate a string as one char per word (simple, debug-friendly)."""
        address = self.arena.allocate(len(text) + 1)
        self.memory.write_word(address, make_header(TYPE_STRING, len(text)))
        for i, ch in enumerate(text):
            self.memory.write_word(address + 4 * (i + 1), ord(ch))
        return tags.make_other(address)

    # -- accessors (run-time side; compiled code uses inline loads) --------

    def car(self, pair):
        return self.memory.read_word(tags.pointer_address(pair))

    def cdr(self, pair):
        return self.memory.read_word(tags.pointer_address(pair) + 4)

    def set_car(self, pair, value):
        self.memory.write_word(tags.pointer_address(pair), value)

    def set_cdr(self, pair, value):
        self.memory.write_word(tags.pointer_address(pair) + 4, value)

    def vector_length(self, vec):
        return header_length(self.memory.read_word(tags.pointer_address(vec)))

    def vector_ref(self, vec, index):
        self._check_index(vec, index)
        return self.memory.read_word(tags.pointer_address(vec) + 4 * (index + 1))

    def vector_set(self, vec, index, value):
        self._check_index(vec, index)
        self.memory.write_word(
            tags.pointer_address(vec) + 4 * (index + 1), value)

    def _check_index(self, vec, index):
        length = self.vector_length(vec)
        if not 0 <= index < length:
            raise RuntimeSystemError(
                "vector index %d out of range [0, %d)" % (index, length))

    def closure_code(self, clo):
        return self.memory.read_word(tags.pointer_address(clo) + 4)

    def closure_capture(self, clo, index):
        return self.memory.read_word(tags.pointer_address(clo) + 8 + 4 * index)

    # -- future cells ------------------------------------------------------------

    def future_is_resolved(self, future):
        """Test the value slot's full/empty bit (the paper's check)."""
        return self.memory.is_full(tags.pointer_address(future))

    def future_value(self, future):
        address = tags.pointer_address(future)
        if not self.memory.is_full(address):
            raise RuntimeSystemError("reading unresolved future @%#x" % address)
        return self.memory.read_word(address)

    def resolve_future(self, future, value):
        """Store the value and set the slot full (resolving the future)."""
        address = tags.pointer_address(future)
        if self.memory.is_full(address):
            raise RuntimeSystemError(
                "future @%#x resolved twice" % address)
        self.memory.write_word(address, value)
        self.memory.set_full(address, True)
        self.memory.write_word(
            address + 4, tags.make_fixnum(FUTURE_STATE_RESOLVED))

    # -- Python <-> simulated data conversion (tests, harness, printing) ----

    def from_python(self, obj, false_object=None, true_object=None):
        """Build a tagged value from a Python int / bool / list / tuple."""
        if isinstance(obj, bool):
            if false_object is None or true_object is None:
                raise RuntimeSystemError("boolean conversion needs singletons")
            return true_object if obj else false_object
        if isinstance(obj, int):
            return tags.make_fixnum(obj)
        if isinstance(obj, (list, tuple)):
            if false_object is None:
                raise RuntimeSystemError("list conversion needs nil singleton")
            result = false_object
            for item in reversed(obj):
                result = self.cons(
                    self.from_python(item, false_object, true_object), result)
            return result
        raise RuntimeSystemError("cannot convert %r to a tagged value" % (obj,))

    def to_python(self, word, false_object=None, true_object=None, depth=0):
        """Decode a tagged value into Python data (for assertions)."""
        if depth > 10000:
            raise RuntimeSystemError("cyclic or too-deep structure")
        if false_object is not None and word == false_object:
            return []
        if true_object is not None and word == true_object:
            return True
        if tags.is_fixnum(word):
            return tags.fixnum_value(word)
        if tags.is_cons(word):
            items = []
            while tags.is_cons(word):
                items.append(self.to_python(
                    self.car(word), false_object, true_object, depth + 1))
                word = self.cdr(word)
                depth += 1
            return items
        if tags.is_future(word):
            if self.future_is_resolved(word):
                return self.to_python(
                    self.future_value(word), false_object, true_object,
                    depth + 1)
            return "<unresolved future>"
        if tags.is_other(word):
            header = self.memory.read_word(tags.pointer_address(word))
            kind = header_type(header)
            if kind == TYPE_VECTOR:
                return [
                    self.to_python(self.vector_ref(word, i),
                                   false_object, true_object, depth + 1)
                    for i in range(self.vector_length(word))
                ]
            if kind == TYPE_STRING:
                base = tags.pointer_address(word)
                return "".join(
                    chr(self.memory.read_word(base + 4 * (i + 1)))
                    for i in range(header_length(header))
                )
            if kind == TYPE_CLOSURE:
                return "<closure@%d>" % tags.pointer_address(word)
            if kind == TYPE_SINGLETON:
                return "<singleton:%d>" % header_length(header)
        return "<raw:%#010x>" % word
