"""The APRIL run-time system (paper Section 6): virtual threads, the
scheduler, futures (eager and lazy), trap handlers, heaps, the
full/empty synchronization library, and IPI message passing."""

from repro.runtime.rts import RuntimeSystem
from repro.runtime.thread import Thread, ThreadState

__all__ = ["RuntimeSystem", "Thread", "ThreadState"]
