"""Run-time system assembly stubs linked into every program.

The run-time system is "written partly in APRIL assembly code and
partly in T" (paper Section 6); the assembly part that *must* exist in
simulated memory is small: the thread bootstrap that every virtual
thread starts at, which calls the thread's entry closure and traps into
the scheduler when it returns.  The Python trap handlers stand in for
the T part (see DESIGN.md).

Register conventions (see :mod:`repro.isa.registers`): the entry
closure arrives in ``a0``; ``cl`` holds the callee's closure; ``g3`` /
``g4`` hold the nil and true singletons; ``g0``/``g1`` are the inline
heap allocation pointer and limit.
"""

from repro.runtime import heap as heap_layout

#: Software trap vectors (the run-time system's entry points).
V_THREAD_EXIT = 1
V_FUTURE = 2        # eager create:  a0=thunk closure -> a0=future
V_LAZY_PUSH = 3     # t7=resume address
V_LAZY_FINISH = 4   # a0=child value
V_MAKE_VECTOR = 5   # a0=length (fixnum), a1=fill -> a0=vector
V_PRINT = 6         # a0=value to record on the output list
V_FUTURE_ON = 7     # a0=thunk closure, a1=node (fixnum) -> a0=future
V_ERROR = 8         # a0=error code (fixnum)
V_TOUCH = 9         # a0=value -> a0=resolved value (explicit touch)

#: Label every program's threads start at.
THREAD_START_LABEL = "__thread_start"


def thread_start_stub():
    """Assembly for the thread bootstrap.

    A fresh thread is loaded with ``cl`` = entry closure, ``a0..a3`` =
    arguments, ``sp`` = its stack base, PC = ``__thread_start``.  The
    stub calls the closure's code and traps ``V_THREAD_EXIT`` with the
    result in ``a0``.
    """
    return """
{label}:
    ldr [cl+{code_off}], t0
    jmpl [t0+0], ra
    trap {exit}
    halt                  ; unreachable: the exit trap never resumes
""".format(
        label=THREAD_START_LABEL,
        code_off=heap_layout.CLOSURE_CODE_OFF,
        exit=V_THREAD_EXIT,
    )
