"""Lazy task creation (paper Section 3.2; Mohr, Kranz & Halstead [17]).

"With lazy task creation a future expression does not create a new
task, but computes the expression as a local procedure call, leaving
behind a marker indicating that a new task could have been created.
The new task is created only when some processor becomes idle and looks
for work, stealing the continuation of that procedure call."

Protocol (compiled code <-> run-time system):

1. ``(future E)`` evaluates E's argument registers, loads the
   continuation resume address into ``t7``, and traps ``V_LAZY_PUSH``.
   The handler records a :class:`LazyMarker` capturing the thread and
   its stack pointer and publishes it on the node's lazy queue.
2. The child E is then evaluated *inline* — by protocol it only touches
   the stack at or above the marker's SP, so the continuation frames
   below stay frozen while the marker is stealable.
3. On return, compiled code traps ``V_LAZY_FINISH``.  If the marker was
   never stolen it is simply discarded — the future cost was a few
   cycles of push/pop.  If it *was* stolen, the handler resolves the
   future the thief created and retires this thread (its continuation
   now runs elsewhere).

A thief always steals a thread's **oldest** active marker: the stolen
continuation is the region between the thread's previously-stolen
boundary and the marker's SP, so stealing oldest-first keeps every
region well-formed.  The stack slice is *copied* into the thief's new
thread (stack splitting); compiled code addresses the stack only
SP-relatively, so the copy relocates freely.  Any older (already
stolen) markers ride along to the new thread, which will reach their
``V_LAZY_FINISH`` traps.  "The race conditions are resolved using the
fine-grain locking provided by the full/empty bits" — in this simulator
the event loop serializes handler execution, which subsumes that lock.
"""

import itertools
from collections import deque

from repro.errors import RuntimeSystemError

_marker_ids = itertools.count(1)


class LazyMarker:
    """One 'a task could have been created here' marker."""

    __slots__ = ("mid", "thread", "sp", "resume_pc", "node",
                 "stolen", "future", "active")

    def __init__(self, thread, sp, resume_pc, node):
        self.mid = next(_marker_ids)
        self.thread = thread
        self.sp = sp                # stack pointer at push time
        self.resume_pc = resume_pc  # continuation entry (after the finish trap)
        self.node = node            # node whose lazy queue lists it
        self.stolen = False
        self.future = None          # future cell created by the thief
        self.active = True          # still on a lazy queue / owner list

    def __repr__(self):
        state = "stolen" if self.stolen else ("active" if self.active else "dead")
        return "LazyMarker(%d, %s, sp=%#x)" % (self.mid, state, self.sp)


class LazyQueue:
    """Per-node queue of stealable markers.

    Owners push at the back and pop from the back (LIFO, like a call
    stack); thieves steal from the front (the oldest, coarsest-grain
    work) — the classic lazy-task-queue discipline.  Entries are
    invalidated in place (``active``/``stolen`` flags) and skipped
    during steals, avoiding O(n) removals.
    """

    def __init__(self, node):
        self.node = node
        self._markers = deque()
        self.pushes = 0
        self.steals = 0
        self.discards = 0
        self.peak_depth = 0

    def counters(self):
        """Counter snapshot for reports."""
        return {
            "pushes": self.pushes,
            "steals": self.steals,
            "discards": self.discards,
            "peak_depth": self.peak_depth,
            "live": len(self),
        }

    def push(self, marker):
        self._markers.append(marker)
        self.pushes += 1
        depth = len(self)
        if depth > self.peak_depth:
            self.peak_depth = depth

    def discard(self, marker):
        """Owner finished the marker unstolen; drop it lazily."""
        marker.active = False
        self.discards += 1
        while self._markers and not self._markers[-1].active:
            self._markers.pop()

    def steal(self):
        """Take the oldest stealable marker, or ``None``.

        A marker is stealable only while it is its thread's oldest
        active, unstolen marker; front-of-queue order guarantees that
        for live entries, so the first live entry wins.
        """
        while self._markers:
            marker = self._markers[0]
            if not marker.active or marker.stolen:
                self._markers.popleft()
                continue
            if marker is not _oldest_active(marker.thread):
                # Stale ordering (cannot happen with oldest-first steals,
                # but guard against protocol violations loudly).
                raise RuntimeSystemError(
                    "lazy queue head %r is not its thread's oldest marker"
                    % marker
                )
            self._markers.popleft()
            marker.stolen = True
            self.steals += 1
            return marker
        return None

    def __len__(self):
        return sum(1 for m in self._markers if m.active and not m.stolen)


def _oldest_active(thread):
    for marker in thread.lazy_markers:
        if marker.active and not marker.stolen:
            return marker
    return None
