"""Future bookkeeping: waiter lists and resolution.

The future *cell* lives in simulated memory (see
:mod:`repro.runtime.heap`): its value slot's full/empty bit is the
resolution flag, exactly as in the paper.  This module adds the
run-time-system bookkeeping the hardware does not provide: which
blocked threads wait on which unresolved future, so resolution can move
them back to a ready queue.
"""

from repro.isa import tags
from repro.errors import RuntimeSystemError
from repro.obs.events import EventKind


class FutureTable:
    """Maps unresolved future cells to their blocked waiters."""

    def __init__(self):
        self._waiters = {}     # cell byte address -> [Thread]
        self.created = 0       # eager + stolen-lazy futures
        self.resolved = 0
        self.touches_resolved = 0    # touch traps that found a value
        self.touches_unresolved = 0  # touch traps that had to wait
        #: Optional event bus (see :mod:`repro.obs`); None = no-op hooks.
        self.events = None

    # -- counter/event bookkeeping (single choke points) -----------------

    def note_created(self, cycle=0, node=0, cell=None):
        """A future cell was created (eager create or lazy steal)."""
        self.created += 1
        if self.events is not None:
            self.events.emit(EventKind.FUTURE_CREATE, cycle, node, cell=cell)

    def note_touch(self, resolved, cycle=0, node=0, cell=None):
        """A touch trap ran; ``resolved`` = the value was already there."""
        if resolved:
            self.touches_resolved += 1
        else:
            self.touches_unresolved += 1
        if self.events is not None:
            self.events.emit(EventKind.FUTURE_TOUCH, cycle, node,
                             cell=cell, resolved=resolved)

    def note_resolved(self, cycle=0, node=0, cell=None, waiters=0):
        """A future cell was resolved, waking ``waiters`` threads."""
        self.resolved += 1
        if self.events is not None:
            self.events.emit(EventKind.FUTURE_RESOLVE, cycle, node,
                             cell=cell, waiters=waiters)

    def note_woken(self, cycle=0, node=0, cell=None, tid=None, waker=None):
        """One blocked waiter was moved back to a ready queue.

        ``waker`` is the tid of the thread that resolved the future —
        the producer→consumer edge the critical-path analyzer follows.
        """
        if self.events is not None:
            self.events.emit(EventKind.THREAD_WAKE, cycle, node,
                             cell=cell, tid=tid, waker=waker)

    def counters(self):
        """Counter snapshot for reports."""
        return {
            "created": self.created,
            "resolved": self.resolved,
            "touches_resolved": self.touches_resolved,
            "touches_unresolved": self.touches_unresolved,
            "waiting": self.waiting_count(),
        }

    def add_waiter(self, future_word, thread):
        """Record a thread blocked on an unresolved future."""
        cell = tags.pointer_address(future_word)
        self._waiters.setdefault(cell, []).append(thread)

    def take_waiters(self, future_word):
        """Remove and return all threads blocked on this future."""
        cell = tags.pointer_address(future_word)
        return self._waiters.pop(cell, [])

    def waiting_count(self):
        """Total threads blocked on any future (deadlock diagnostics)."""
        return sum(len(threads) for threads in self._waiters.values())

    def check_empty_on_shutdown(self):
        """Raise if the machine finished with threads still blocked."""
        if self._waiters:
            cells = sorted(self._waiters)
            raise RuntimeSystemError(
                "machine finished with threads blocked on futures at %s"
                % ", ".join("%#x" % c for c in cells[:5])
            )
