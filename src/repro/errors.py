"""Exception hierarchy for the APRIL reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch simulation problems without masking genuine Python bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblerError(ReproError):
    """Raised when APRIL assembly source cannot be assembled."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


class TagError(ReproError):
    """Raised on an invalid tagged-value operation (bad tag, overflow)."""


class MemoryError_(ReproError):
    """Raised on an out-of-range or misaligned simulated memory access."""


class ProcessorError(ReproError):
    """Raised when the simulated processor reaches an illegal state."""


class RuntimeSystemError(ReproError):
    """Raised by the run-time system (scheduler, futures, heap)."""


class CompilerError(ReproError):
    """Raised when a Mul-T program cannot be compiled."""

    def __init__(self, message, form=None):
        if form is not None:
            message = "%s (in form %r)" % (message, form)
        super().__init__(message)
        self.form = form


class SimulationError(ReproError):
    """Raised when a simulation run fails (deadlock, cycle limit, ...)."""


class ConfigError(ReproError):
    """Raised for inconsistent machine or model configuration."""
