"""Exception hierarchy for the APRIL reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch simulation problems without masking genuine Python bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblerError(ReproError):
    """Raised when APRIL assembly source cannot be assembled."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


class TagError(ReproError):
    """Raised on an invalid tagged-value operation (bad tag, overflow)."""


class MemoryError_(ReproError):
    """Raised on an out-of-range or misaligned simulated memory access."""


class ProcessorError(ReproError):
    """Raised when the simulated processor reaches an illegal state."""


class RuntimeSystemError(ReproError):
    """Raised by the run-time system (scheduler, futures, heap)."""


class CompilerError(ReproError):
    """Raised when a Mul-T program cannot be compiled."""

    def __init__(self, message, form=None):
        if form is not None:
            message = "%s (in form %r)" % (message, form)
        super().__init__(message)
        self.form = form


class SimulationError(ReproError):
    """Raised when a simulation run fails (deadlock, cycle limit, ...)."""


class DeadlockError(SimulationError):
    """Raised when no processor can ever make progress again: no loaded
    or ready threads anywhere, yet threads remain blocked on futures."""


class HangDetected(SimulationError):
    """A hang diagnosed by the watchdog (see :mod:`repro.obs.flight`).

    Carries the machine-readable post-mortem the watchdog assembled at
    detection time: the wait-for graph over future cells, per-node
    flight-recorder tails, register/PSR snapshots, and disassembly
    around each blocked pc.

    Attributes:
        kind: ``"deadlock"`` (every thread blocked on an unresolved
            future) or ``"livelock"`` (spin-storm: synchronization traps
            re-entering with no forward progress).
        cycle: simulated cycle at detection.
        reason: one-line human explanation.
        postmortem: the JSON-ready post-mortem dict.
    """

    def __init__(self, kind, cycle, reason, postmortem=None):
        super().__init__("%s at cycle %d: %s" % (kind, cycle, reason))
        self.kind = kind
        self.cycle = cycle
        self.reason = reason
        self.postmortem = postmortem if postmortem is not None else {}

    def render(self):
        """The human-readable post-mortem report."""
        from repro.obs.flight import render_postmortem
        return render_postmortem(self.postmortem)


class ConfigError(ReproError):
    """Raised for inconsistent machine or model configuration."""


class WorkloadCheckError(ReproError):
    """A workload self-check failed: a run returned a different value
    than the reference configuration for the same program.

    Carries the full program/config context so a sweep can surface the
    failure as a failed cell instead of dying on a bare assert.
    """

    def __init__(self, message, program=None, system=None, processors=None,
                 config=None, expected=None, actual=None):
        parts = [p for p in (
            program,
            system,
            "%d cpus" % processors if processors is not None else None,
        ) if p]
        if parts:
            message = "%s: %s" % ("/".join(str(p) for p in parts), message)
        super().__init__(message)
        self.program = program
        self.system = system
        self.processors = processors
        self.config = config
        self.expected = expected
        self.actual = actual

    @property
    def context(self):
        """JSON-ready context dict (what a failed sweep cell records)."""
        data = {
            "program": self.program,
            "system": self.system,
            "processors": self.processors,
            "expected": repr(self.expected),
            "actual": repr(self.actual),
        }
        if self.config is not None and hasattr(self.config, "to_dict"):
            data["config"] = self.config.to_dict()
        return data


class SweepSpecError(ReproError):
    """Raised when an ``april sweep`` spec file cannot be understood."""


class ServeError(ReproError):
    """Raised for ``april serve`` service-side failures (bad listener
    configuration, socket setup, drain problems)."""


class ServeRequestError(ServeError):
    """One malformed/unacceptable request on the serve wire protocol.

    Carries a short machine-readable ``kind`` (``"bad-request"``,
    ``"bad-json"``, ``"bad-job"``, ...) so the server can answer with a
    typed error response and keep the connection alive — a bad request
    must never take down the service or the connection handling it.
    """

    def __init__(self, message, kind="bad-request"):
        super().__init__(message)
        self.kind = kind
