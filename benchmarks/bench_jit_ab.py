"""JIT A/B smoke: the generated-code tier vs. the fuse-closure tier.

CI's ``jit-smoke`` job runs this after the lockstep exactness tests.
Both legs run the same program and must report the *same simulated
cycle count* (the JIT is exact); only the host wall clock differs.
``jit=False`` keeps the translation-cache fast path, so the measured
ratio isolates what the generated code objects alone are worth.

Methodology: the process-wide shared block cache is warmed with one
throwaway run, then each leg takes the best of three timings.  Block
compilation is a fixed startup fee amortised across machines
(``repro.core.jit.SHARED_BLOCKS``), and minimum-of-reps is the
standard defence against noisy CI runners.  The sequential leg is the
gate (the JIT's win there is ~3-4x locally, floor 2x); the eager leg
is reported for information only — at smoke sizes its wall time is
dominated by runtime-system trap handlers and scheduler ping-pong,
which the JIT cannot touch (see EXPERIMENTS.md, "Superblock JIT").
"""

import time

from repro.lang.run import run_mult
from repro import workloads

#: The sequential leg must show at least this JIT/closure speed ratio.
FLOOR = 2.0

#: Sized for a CI smoke: a few seconds total, yet long enough that the
#: warm JIT ratio is stable (fib(14) sequential is ~170k cycles).
SEQ_N = 14
EAGER_N = 11
REPS = 3


def _best_of(source, jit, reps=REPS, **kwargs):
    """(cycles, best wall seconds) over ``reps`` identical runs."""
    best = None
    cycles = None
    for _ in range(reps):
        start = time.perf_counter()
        result = run_mult(source, jit=jit, **kwargs)
        elapsed = time.perf_counter() - start
        cycles = result.cycles
        best = elapsed if best is None else min(best, elapsed)
    return cycles, best


def test_jit_speedup():
    module = workloads.get("fib")
    source = module.source()

    # Warm SHARED_BLOCKS so the gate times steady-state execution, not
    # the one-off compile fee.
    run_mult(source, mode="sequential", args=(11,), jit=True)

    seq_kwargs = {"mode": "sequential", "args": (SEQ_N,)}
    jit_cycles, jit_s = _best_of(source, True, **seq_kwargs)
    closure_cycles, closure_s = _best_of(source, False, **seq_kwargs)
    assert jit_cycles == closure_cycles, (
        "JIT changed the simulated cycle count: %d vs %d"
        % (jit_cycles, closure_cycles))
    ratio = closure_s / jit_s
    print("sequential fib(%d): jit %.0f cycles/s, closure %.0f cycles/s "
          "-> %.2fx" % (SEQ_N, jit_cycles / jit_s,
                        closure_cycles / closure_s, ratio))

    eager_kwargs = {"mode": "eager", "processors": 2, "args": (EAGER_N,)}
    ecy_jit, eager_jit_s = _best_of(source, True, **eager_kwargs)
    ecy_clo, eager_closure_s = _best_of(source, False, **eager_kwargs)
    assert ecy_jit == ecy_clo, (
        "JIT changed the eager cycle count: %d vs %d" % (ecy_jit, ecy_clo))
    print("eager p2 fib(%d): jit %.0f cycles/s, closure %.0f cycles/s "
          "-> %.2fx (informational)"
          % (EAGER_N, ecy_jit / eager_jit_s, ecy_clo / eager_closure_s,
             eager_closure_s / eager_jit_s))

    assert ratio >= FLOOR, (
        "JIT sequential speedup %.2fx below the %.1fx floor "
        "(jit %.3fs vs closure %.3fs)" % (ratio, FLOOR, jit_s, closure_s))


if __name__ == "__main__":
    test_jit_speedup()
    print("jit A/B smoke: ok")
