"""Shared benchmark configuration.

The benchmarks regenerate the paper's tables and figures; each is a
full machine simulation (deterministic), so every bench runs exactly
once (``pedantic`` with one round) — we are measuring the *simulated*
machine, not the simulator's wall clock jitter.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a target exactly once under pytest-benchmark."""
    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return runner
