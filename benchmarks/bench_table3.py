"""Regenerate **Table 3**: normalized execution time of the four Mul-T
benchmarks on the Encore Multimax, APRIL (eager futures), and APRIL
with lazy task creation, for 1-16 processors.

Run with ``pytest benchmarks/bench_table3.py --benchmark-only -s`` to
see the assembled table; it is also written to ``results/table3.txt``.

Expected shape (paper Section 7):

* "Mul-T seq" ~2x on the Encore (software future detection), 1.0 on
  APRIL (hardware tags);
* fib's eager-future overhead ~14x on APRIL, ~2x that on the Encore;
  lazy task creation cuts it to ~1.5x;
* near-linear speedup to 16 processors for the lazy configuration.
"""

import pytest

from repro import workloads
from repro.harness import reporting
from repro.harness.table3 import SYSTEMS, render_table3, run_program_row

_ROWS = []


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("module", workloads.ALL, ids=lambda m: m.NAME)
def test_table3_row(benchmark, module, system):
    """One (program, system) row; the benchmark value is the simulated
    single-processor parallel-code cycle count."""
    def run():
        row = run_program_row(module, system)
        _ROWS.append(row)
        return row

    row = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["program"] = module.NAME
    benchmark.extra_info["system"] = system
    benchmark.extra_info["mult_seq"] = round(row.mult_seq, 3)
    benchmark.extra_info["parallel"] = {
        str(n): round(t, 3) for n, t in row.parallel.items()}
    # Structural sanity of the row, so a broken run fails loudly here.
    assert row.t_seq == 1.0
    assert row.mult_seq >= 0.99
    cpus = sorted(row.parallel)
    times = [row.parallel[n] for n in cpus]
    assert times == sorted(times, reverse=True), "must speed up with CPUs"


def test_zzz_render_table(benchmark):
    """Assemble and print the full table after all rows ran."""
    def render():
        text = render_table3(sorted(
            _ROWS, key=lambda r: ([m.NAME for m in workloads.ALL].index(r.program),
                                  SYSTEMS.index(r.system))))
        return text

    text = benchmark.pedantic(render, rounds=1, iterations=1,
                              warmup_rounds=0)
    path = reporting.save_report("table3.txt", text)
    print(reporting.banner("Table 3 (normalized execution time)"))
    print(text)
    print("saved to", path)
    assert "fib" in text
