"""Validate the analytical model's two component terms against the
executable machine, as the paper did: "The models for the cache and
network terms have been validated through simulations.  Both these
terms are shown to be the sum of two components: one component
independent of the number of threads p and the other linearly related
to p."

We run the full coherent machine (caches + directory + mesh) and check
the *shapes* the model assumes:

1. the measured cache miss rate grows with the number of resident
   contexts sharing a cache (the interference term);
2. the measured network latency grows with offered load (the
   contention term);
3. multithreading raises utilization on the executable machine when
   remote latencies are real — the mechanism Figure 5 quantifies.
"""

from repro.lang.compiler import compile_source
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.net.network import Network
from repro.net.topology import KAryNCube
from repro import workloads


def _run_coherent(processors, frames, args, cache_bytes=1024):
    module = workloads.get("speech")
    compiled = compile_source(module.source(), mode="eager")
    config = MachineConfig(
        num_processors=processors, memory_mode="coherent",
        num_task_frames=frames, cache_bytes=cache_bytes)
    machine = AlewifeMachine(compiled.program, config)
    result = machine.run(entry=compiled.entry_label(), args=args)
    return machine, result


def test_cache_interference_component(benchmark):
    """More resident contexts -> higher per-cache miss rate."""
    def run():
        rates = {}
        for frames in (1, 4):
            machine, _ = _run_coherent(2, frames, args=(4, 8),
                                       cache_bytes=512)
            rates[frames] = machine.fabric.aggregate_miss_rate()
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("miss rate: 1 context %.4f, 4 contexts %.4f"
          % (rates[1], rates[4]))
    benchmark.extra_info["miss_rates"] = {
        str(k): round(v, 4) for k, v in rates.items()}
    assert rates[4] >= rates[1]


def test_network_contention_component(benchmark):
    """Offered load raises measured mesh latency (the T(p) term)."""
    def run():
        results = {}
        for gap in (40, 2):          # inter-message injection gap
            network = Network(KAryNCube(2, 4))
            now = 0
            for i in range(200):
                network.send(i % 16, (i * 7 + 3) % 16, 5, now)
                now += gap
            results[gap] = network.stats.average_latency
        return results

    latency = benchmark.pedantic(run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    print("avg latency: light load %.1f, heavy load %.1f"
          % (latency[40], latency[2]))
    benchmark.extra_info["latencies"] = {
        str(k): round(v, 2) for k, v in latency.items()}
    assert latency[2] > latency[40]


def test_multithreading_raises_utilization(benchmark):
    """The executable-machine analogue of Figure 5's useful-work gain."""
    def run():
        utils = {}
        for frames in (1, 4):
            machine, result = _run_coherent(4, frames, args=(4, 8))
            utils[frames] = result.stats.utilization
        return utils

    utils = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("utilization: 1 frame %.3f, 4 frames %.3f" % (utils[1], utils[4]))
    benchmark.extra_info["utilization"] = {
        str(k): round(v, 3) for k, v in utils.items()}
    assert utils[4] >= utils[1]
