"""Section 6.1 microbenchmark: the context switch costs 11 cycles on
the SPARC-based APRIL (5-cycle trap squash + 6-cycle handler), and 4
cycles on custom silicon.

The measurement runs a two-node program whose main thread touches an
unresolved future and switch-spins until the remote child resolves it.
"""

from repro.isa.assembler import assemble
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs

#: main spawns a slow child, then touches its future: every touch of
#: the unresolved future switch-spins.
SOURCE = stubs.thread_start_stub() + """
main:
    mov gp, t0
    set 2, t1
    str t1, [t0+0]
    set child, t1
    str t1, [t0+4]
    addr gp, 8, gp
    or t0, 2, a0
    trap %d              ; a0 = future
    add a0, 0, a0        ; touch: switch-spins until resolved
    ret
child:
    set 2000, t1
cloop:
    cmpr t1, 0
    ble cdone
    ba cloop
    @subr t1, 1, t1
cdone:
    set 84, a0
    ret
""" % stubs.V_FUTURE


def _measure(config):
    machine = AlewifeMachine(assemble(SOURCE), config)
    machine.run()
    cpu = machine.cpus[0]
    switches = cpu.stats.context_switches
    # Each switch-spin = squash + handler body.
    per_switch = (config.trap_squash_cycles
                  + config.switch_handler_cycles)
    return switches, per_switch, cpu.stats.switch


def test_sparc_switch_is_11_cycles(benchmark):
    config = MachineConfig(num_processors=2, touch_spin_limit=10 ** 6,
                           placement="round_robin")
    switches, per_switch, _ = benchmark.pedantic(
        lambda: _measure(config), rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["switches"] = switches
    benchmark.extra_info["cycles_per_switch"] = per_switch
    print("SPARC APRIL: %d switch-spins at %d cycles each" % (
        switches, per_switch))
    assert per_switch == 11          # the paper's measured figure
    assert switches > 10


def test_custom_april_switch_is_4_cycles(benchmark):
    config = MachineConfig(num_processors=2, touch_spin_limit=10 ** 6,
                           custom_april_switch=True)
    switches, per_switch, _ = benchmark.pedantic(
        lambda: _measure(config), rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["cycles_per_switch"] = per_switch
    print("custom APRIL: %d cycles per switch" % per_switch)
    assert per_switch == 4           # Section 6.1's custom-silicon figure


def test_switch_cost_scales_run_time(benchmark):
    """Sanity: a dearer switch makes the same spin-heavy program slower."""
    def run():
        cheap = AlewifeMachine(assemble(SOURCE), MachineConfig(
            num_processors=2, touch_spin_limit=10 ** 6,
            custom_april_switch=True))
        costly = AlewifeMachine(assemble(SOURCE), MachineConfig(
            num_processors=2, touch_spin_limit=10 ** 6,
            switch_handler_cycles=45))
        return cheap.run().cycles, costly.run().cycles

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1,
                                    warmup_rounds=0)
    print("run cycles: 4-cycle switch %d vs 50-cycle switch %d" % (fast, slow))
    assert slow > fast
