"""Section 6.2 microbenchmark: "Our future touch trap handler takes 23
cycles to execute if the future is resolved" (plus the 5-cycle trap
squash).

Measures the cycle delta of a strict operation on a resolved future
versus the same operation on a plain fixnum.
"""

from repro.isa.assembler import assemble
from repro.isa.tags import make_fixnum
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs

_TOUCH = stubs.thread_start_stub() + """
main:
    set cell, t0
    or t0, 5, t1         ; future-tagged pointer to a resolved cell
    add t1, 4, a0        ; strict op: takes the future-touch trap
    ret
.align 8
cell:
    .fixnum 10
    .fixnum 1
"""

#: Identical instruction mix except the operand is a plain (untagged,
#: even) word, so no trap fires; the cycle delta is the trap cost.
_PLAIN = stubs.thread_start_stub() + """
main:
    set cell, t0
    or t0, 4, t1         ; even low bits: no future trap
    add t1, 4, a0
    ret
.align 8
cell:
    .fixnum 10
    .fixnum 1
"""


def _cycles(source):
    machine = AlewifeMachine(assemble(source), MachineConfig())
    result = machine.run()
    return result.cycles, result.value


def test_resolved_touch_costs_23_plus_squash(benchmark):
    def run():
        touched, value_touched = _cycles(_TOUCH)
        plain, value_plain = _cycles(_PLAIN)
        return touched, plain, value_touched, value_plain

    touched, plain, value_touched, _value_plain = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0)
    config = MachineConfig()
    delta = touched - plain
    expected = config.trap_squash_cycles + config.future_touch_resolved_cycles
    benchmark.extra_info["touch_delta_cycles"] = delta
    print("resolved future touch: +%d cycles (squash %d + handler %d)" % (
        delta, config.trap_squash_cycles,
        config.future_touch_resolved_cycles))
    assert value_touched == 11
    assert delta == expected == 28


def test_touch_trap_count(benchmark):
    def run():
        machine = AlewifeMachine(assemble(_TOUCH), MachineConfig())
        machine.run()
        return machine.runtime.futures.touches_resolved

    touches = benchmark.pedantic(run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    assert touches == 1
