"""Table 1 / Table 2 artifact bench: prints the instruction-set summary
the paper tabulates and measures toolchain throughput (assembler and
encode/decode round trip), which bounds compile times for the harness.
"""

from repro.harness import reporting
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import (
    LOAD_FLAVORS, Opcode, STORE_FLAVORS, category_of,
)

_SAMPLE = "\n".join(
    ["loop%d: add r1, %d, r2\n    ld [r2+4], r3\n    st r3, [sp+%d]\n"
     "    cmpr r3, 0\n    bne loop%d" % (i, (i % 500) * 2, i % 64, i)
     for i in range(200)]
)


def render_table1():
    """The Table 1 instruction summary, from the live opcode table."""
    lines = ["%-8s %-10s" % ("Type", "Mnemonics"), "-" * 60]
    groups = {}
    for op in Opcode:
        groups.setdefault(category_of(op).value, []).append(op.name.lower())
    for category, names in sorted(groups.items()):
        lines.append("%-8s %s" % (category, " ".join(sorted(names))))
    return "\n".join(lines)


def render_table2():
    """Table 2: the load flavors with their semantics bits."""
    lines = ["%-7s %-10s %-10s %-14s" % ("Name", "Reset f/e", "EL trap",
                                         "CM response"),
             "-" * 45]
    for op in sorted(LOAD_FLAVORS, key=int):
        flavor = LOAD_FLAVORS[op]
        lines.append("%-7s %-10s %-10s %-14s" % (
            op.name.lower(),
            "Yes" if flavor.set_empty else "No",
            "Yes" if flavor.trap_on_empty else "No",
            "Wait" if flavor.wait_on_miss else "Trap"))
    return "\n".join(lines)


def test_print_instruction_tables(benchmark):
    text = benchmark.pedantic(
        lambda: render_table1() + "\n\n" + render_table2(),
        rounds=1, iterations=1, warmup_rounds=0)
    print(reporting.banner("Tables 1-2: instruction set"))
    print(text)
    reporting.save_report("tables_1_2.txt", text)
    assert "ldtt" in text and "ldetw" in text
    assert len(STORE_FLAVORS) == 9


def test_assembler_throughput(benchmark):
    program = benchmark(assemble, _SAMPLE)
    assert len(program.words) == 200 * 6  # 5 instrs + delay-slot nop


def test_encode_decode_throughput(benchmark):
    program = assemble(_SAMPLE)

    def roundtrip():
        total = 0
        for word in program.words:
            total += encode(decode(word))
        return total

    benchmark(roundtrip)
