"""Regenerate **Figure 5** (and print **Table 4**): processor
utilization vs. resident threads, decomposed into useful work, context
switch overhead, cache effects, and network effects.

Expected shape (paper Section 8): U(1) ~ 0.48 or a bit below with
contention, close to 80% utilization with as few as three resident
threads at a 10-cycle switch cost, a plateau capped near 0.80 by
network bandwidth, and a gentle decline beyond from cache interference.
"""

from repro.harness import reporting
from repro.harness.figure5 import headline_numbers, render_report, run_figure5
from repro.model.params import ModelParams


def test_figure5_model(benchmark):
    points = benchmark.pedantic(run_figure5, rounds=1, iterations=1,
                                warmup_rounds=0)
    text = render_report()
    path = reporting.save_report("figure5.txt", text)
    print(reporting.banner("Table 4 + Figure 5"))
    print(text)
    print("saved to", path)

    numbers = headline_numbers()
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in numbers.items()})
    # The paper's headline claims.
    assert numbers["base_round_trip"] == 55
    assert 0.75 <= numbers["U(3)"] <= 0.85
    assert numbers["U_max"] < 0.85
    assert points[-1].useful < max(p.useful for p in points)


def test_figure5_four_cycle_switch(benchmark):
    """Section 6.1's custom-APRIL switch: C=4 barely moves the curve
    ("the relatively large ten-cycle context switch overhead does not
    significantly impact performance")."""
    def run():
        ten = run_figure5(ModelParams(), max_threads=6)
        four = run_figure5(ModelParams(context_switch=4), max_threads=6)
        return ten, four

    ten, four = benchmark.pedantic(run, rounds=1, iterations=1,
                                   warmup_rounds=0)
    gap = four[2].useful - ten[2].useful
    benchmark.extra_info["U3_C10"] = round(ten[2].useful, 3)
    benchmark.extra_info["U3_C4"] = round(four[2].useful, 3)
    print("U(3): C=10 -> %.3f, C=4 -> %.3f (gap %.3f)" % (
        ten[2].useful, four[2].useful, gap))
    assert 0 <= gap < 0.05
