"""Section 8 scalability sweeps: the claims around Figure 5.

* close to 80% utilization with 3 resident threads at a 55-cycle base
  round trip and C=10;
* the context-switch overhead barely matters (C in {4, 10, 16});
* caches >= 64KB sustain four contexts; smaller caches "suffer more
  interference and reduce the benefits of multithreading";
* with 4 task frames the processor tolerates latencies of 150-300
  cycles (Section 3: context switch every 50-100 cycles).
"""

from repro.harness import reporting
from repro.model.cache_model import sustainable_threads
from repro.model.params import ModelParams
from repro.model.utilization import solve, utilization_curve


def test_context_switch_sweep(benchmark):
    def run():
        rows = {}
        for c in (4, 10, 16, 64):
            rows[c] = utilization_curve(
                ModelParams(context_switch=c), max_threads=6)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    lines = ["C (cycles)  " + " ".join("p=%d " % p for p in range(1, 7))]
    for c, curve in sorted(rows.items()):
        lines.append("%9d   " % c + " ".join("%.2f" % u for u in curve))
    text = "\n".join(lines)
    print(reporting.banner("U(p) vs context-switch cost"))
    print(text)
    reporting.save_report("scalability_cs_sweep.txt", text)
    # The paper's C=10 sits close to the custom-silicon C=4; a C an
    # order of magnitude larger visibly hurts.
    assert rows[16][2] > rows[64][2]
    assert abs(rows[4][2] - rows[10][2]) < 0.08
    benchmark.extra_info["U3_by_C"] = {
        str(c): round(curve[2], 3) for c, curve in rows.items()}


def test_cache_size_sweep(benchmark):
    def run():
        rows = {}
        for kb in (16, 32, 64, 128, 256):
            params = ModelParams(cache_bytes=kb * 1024)
            rows[kb] = (utilization_curve(params, max_threads=4)[-1],
                        sustainable_threads(params))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    lines = ["cache KB   U(4)    sustainable threads"]
    for kb, (u4, threads) in sorted(rows.items()):
        lines.append("%7d   %.3f   %.1f" % (kb, u4, threads))
    text = "\n".join(lines)
    print(reporting.banner("U(4) vs cache size"))
    print(text)
    reporting.save_report("scalability_cache_sweep.txt", text)
    # The Section 8 claim: >= 64KB comfortably sustains 4 contexts.
    assert rows[64][1] >= 4
    assert rows[16][1] < 4
    assert rows[256][0] > rows[16][0]


def test_latency_tolerance(benchmark):
    """Section 3: with 4 task frames and a switch every 50-100 cycles,
    APRIL tolerates latencies in the 150-300 cycle range: utilization
    at T~150-300 with p=4 stays well above the single-thread level."""
    def run():
        results = {}
        for radix in (20, 60, 110):   # scales the base round trip
            params = ModelParams(network_radix=radix)
            u1, t, _ = solve(params, 1, vary_network=False)
            u4, _, _ = solve(params, 4, vary_network=False)
            results[round(params.base_round_trip)] = (u1, u4)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    lines = ["base T   U(1)    U(4)   gain"]
    for t, (u1, u4) in sorted(results.items()):
        lines.append("%6d   %.3f   %.3f   %.1fx" % (t, u1, u4, u4 / u1))
    text = "\n".join(lines)
    print(reporting.banner("Latency tolerance with 4 task frames"))
    print(text)
    reporting.save_report("scalability_latency.txt", text)
    for t, (u1, u4) in results.items():
        if t >= 150:
            assert u4 > 2.5 * u1      # multithreading pays off most
    # Even at ~300-cycle latencies, 4 threads keep utilization usable.
    worst = min(u4 for _t, (_u1, u4) in results.items())
    assert worst > 0.4


def test_system_power_grows_with_processors(benchmark):
    """System power = processors x utilization (Section 8's metric)."""
    def run():
        params = ModelParams()
        u3, _, _ = solve(params, 3)
        return {n: n * u3 for n in (1000, 8000, 64000)}

    power = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert power[8000] > power[1000]
    benchmark.extra_info["power_8000"] = round(power[8000], 1)
