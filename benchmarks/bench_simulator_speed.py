"""Section 7's simulator-speed note, for our reproduction: the paper's
T-based simulator ran ~40,000 APRIL instructions/second on a
SPARCServer 330; this measures what the Python interpreter manages.
(Only the *simulated* cycle counts matter for the experiments, but the
throughput bounds how large a benchmark instance the harness can use.)
"""

import time

from repro.lang.run import run_mult
from repro import workloads


def test_instruction_throughput(benchmark):
    module = workloads.get("fib")

    def run():
        start = time.time()
        result = run_mult(module.source(), mode="sequential", args=(13,))
        elapsed = time.time() - start
        return result, elapsed

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1,
                                         warmup_rounds=0)
    instructions = result.stats.instructions
    rate = instructions / elapsed if elapsed else float("inf")
    print("simulated %d instructions in %.2fs: %.0f instr/s "
          "(paper's 1990 simulator: ~40,000/s)" % (
              instructions, elapsed, rate))
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["instr_per_sec"] = int(rate)
    assert result.value == module.reference(13)
    assert rate > 10_000     # generous floor: catch pathological slowdowns
