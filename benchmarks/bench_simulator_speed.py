"""Section 7's simulator-speed note, for our reproduction: the paper's
T-based simulator ran ~40,000 APRIL instructions/second on a
SPARCServer 330; this measures what the Python interpreter manages.
(Only the *simulated* cycle counts matter for the experiments, but the
throughput bounds how large a benchmark instance the harness can use.)
"""

import time

from repro.lang.run import run_mult
from repro.machine.config import MachineConfig
from repro.obs import Observation
from repro import workloads


def test_instruction_throughput(benchmark):
    module = workloads.get("fib")

    def run():
        start = time.time()
        result = run_mult(module.source(), mode="sequential", args=(13,))
        elapsed = time.time() - start
        return result, elapsed

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1,
                                         warmup_rounds=0)
    instructions = result.stats.instructions
    rate = instructions / elapsed if elapsed else float("inf")
    print("simulated %d instructions in %.2fs: %.0f instr/s "
          "(paper's 1990 simulator: ~40,000/s)" % (
              instructions, elapsed, rate))
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["instr_per_sec"] = int(rate)
    assert result.value == module.reference(13)
    assert rate > 10_000     # generous floor: catch pathological slowdowns


def test_instrumentation_overhead(benchmark):
    """Dormant hooks must be nearly free; full observation, bounded.

    Every hot-path hook added for repro.obs guards itself with one
    ``is not None`` test, so a run with no Observation attached must
    stay within a few percent of the pre-instrumentation baseline.
    Measured here as the ratio of an observed run (events + sampler +
    profiler) to an unobserved one — the unobserved time IS the
    dormant-hook path, so the benchmark's floor assertion below is the
    regression guard for the "<5% when disabled" budget (the hooks are
    compiled in unconditionally; there is no hook-free build to diff
    against).
    """
    module = workloads.get("fib")
    source = module.source()

    def run(observe=None):
        start = time.time()
        result = run_mult(source, mode="eager", processors=2, args=(12,),
                          observe=observe)
        return result, time.time() - start

    def measure():
        # Interleave to be fair to interpreter warm-up.
        bare = observed = 0.0
        result = None
        for _ in range(3):
            result, elapsed = run()
            bare += elapsed
            _, elapsed = run(Observation(profile=True, window=4096))
            observed += elapsed
        return result, bare / 3, observed / 3

    result, bare, observed = benchmark.pedantic(measure, rounds=1,
                                                iterations=1,
                                                warmup_rounds=0)
    ratio = observed / bare if bare else float("inf")
    print("unobserved %.3fs, fully observed %.3fs: %.2fx overhead"
          % (bare, observed, ratio))
    benchmark.extra_info["unobserved_s"] = round(bare, 4)
    benchmark.extra_info["observed_s"] = round(observed, 4)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 3)
    assert result.value == module.reference(12)
    # Full observation (bus + sampler + per-instruction profiler) may
    # legitimately cost real time; it must stay within a small integer
    # multiple, and the dormant path must not have regressed.
    assert ratio < 4.0
    instructions = result.stats.instructions
    assert instructions / bare > 10_000


def test_transaction_tracing_overhead(benchmark):
    """A fully-traced coherent run (event bus + sampler + profiler +
    transaction tracer) must stay within 4x of its dormant twin — the
    acceptance budget for the txn tracer's hot-path hooks."""
    module = workloads.get("fib")
    source = module.source()
    config = MachineConfig(num_processors=4, memory_mode="coherent")

    def run(observe=None):
        start = time.time()
        result = run_mult(source, mode="eager", args=(10,), config=config,
                          observe=observe)
        return result, time.time() - start

    def measure():
        bare = traced = 0.0
        result = obs = None
        for _ in range(2):
            result, elapsed = run()
            bare += elapsed
            obs = Observation(events=True, window=4096, profile=True,
                              txn=True)
            _, elapsed = run(obs)
            traced += elapsed
        return result, obs, bare / 2, traced / 2

    result, obs, bare, traced = benchmark.pedantic(measure, rounds=1,
                                                   iterations=1,
                                                   warmup_rounds=0)
    ratio = traced / bare if bare else float("inf")
    print("dormant %.3fs, fully traced %.3fs: %.2fx overhead (%d txns)"
          % (bare, traced, ratio, obs.txn.emitted))
    benchmark.extra_info["dormant_s"] = round(bare, 4)
    benchmark.extra_info["traced_s"] = round(traced, 4)
    benchmark.extra_info["traced_ratio"] = round(ratio, 3)
    benchmark.extra_info["transactions"] = obs.txn.emitted
    assert result.value == module.reference(10)
    assert obs.txn.emitted > 0
    assert ratio < 4.0
