"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation removes one APRIL mechanism and measures the damage on
the executable machine:

* **hardware future detection** vs software checks (the Encore's loss);
* **lazy vs eager** task creation at the finest grain (fib);
* **multiple task frames** vs one (coarse-grain multithreading off);
* **switch-spinning** vs block-immediately on unresolved touches;
* **round-robin vs local placement** for eager futures.
"""

from repro.harness import reporting
from repro.lang.run import run_mult
from repro.machine.config import MachineConfig
from repro import workloads

FIB = workloads.get("fib")


def test_ablate_tag_hardware(benchmark):
    def run():
        plain = run_mult(FIB.source(), mode="sequential", args=(10,))
        checked = run_mult(FIB.source(), mode="sequential", args=(10,),
                           software_checks=True)
        return checked.cycles / plain.cycles

    factor = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("software future detection costs %.2fx (paper: ~2x)" % factor)
    benchmark.extra_info["software_check_factor"] = round(factor, 2)
    assert 1.3 < factor < 2.5


def test_ablate_lazy_task_creation(benchmark):
    def run():
        eager = run_mult(FIB.source(), mode="eager", args=(10,))
        lazy = run_mult(FIB.source(), mode="lazy", args=(10,))
        return eager.cycles / lazy.cycles

    gain = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("lazy task creation is %.1fx cheaper than eager on fib" % gain)
    benchmark.extra_info["lazy_gain"] = round(gain, 1)
    assert gain > 4      # paper: 14.2 / 1.5 ~ 9.5x on fib


def test_ablate_task_frames(benchmark):
    """One hardware context forces an unload on every blocked touch."""
    module = workloads.get("factor")
    def run():
        cycles = {}
        for frames in (1, 4):
            config = MachineConfig(num_processors=2, num_task_frames=frames)
            result = run_mult(module.source(), mode="eager",
                              args=module.args(), config=config)
            cycles[frames] = result.cycles
        return cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("factor: 1 frame %d cycles, 4 frames %d cycles"
          % (cycles[1], cycles[4]))
    benchmark.extra_info["cycles_by_frames"] = {
        str(k): v for k, v in cycles.items()}
    assert cycles[4] <= cycles[1]


def test_ablate_switch_spinning(benchmark):
    """Blocking immediately (spin limit 0) pays two thread moves per
    short wait; a bounded switch-spin is cheaper at fib's grain."""
    def run():
        cycles = {}
        for limit in (0, 2):
            config = MachineConfig(num_processors=4, touch_spin_limit=limit)
            result = run_mult(FIB.source(), mode="eager", args=(9,),
                              config=config)
            cycles[limit] = result.cycles
        return cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("fib(9)/4cpu: block-now %d cycles, switch-spin %d cycles"
          % (cycles[0], cycles[2]))
    benchmark.extra_info["cycles_by_spin_limit"] = {
        str(k): v for k, v in cycles.items()}
    # Both complete; the relative order is workload dependent, but the
    # bounded spin policy should never be catastrophically worse.
    assert cycles[2] < cycles[0] * 1.5


def test_ablate_delay_slot_filling(benchmark):
    """The Section 2.1 RISC-pipeline point: postpass delay-slot filling
    recovers single-thread cycles that the conservative assembler
    spends on slot nops."""
    def run():
        plain = run_mult(FIB.source(), mode="sequential", args=(10,))
        optimized = run_mult(FIB.source(), mode="sequential", args=(10,),
                             optimize=True)
        assert optimized.value == plain.value
        return plain.cycles / optimized.cycles

    speedup = benchmark.pedantic(run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    print("delay-slot filling speeds sequential fib by %.2fx" % speedup)
    benchmark.extra_info["slot_fill_speedup"] = round(speedup, 3)
    assert speedup > 1.0


def test_ablate_placement(benchmark):
    """Round-robin spreads eager tasks; local placement serializes them
    until idle processors steal."""
    def run():
        cycles = {}
        for placement in ("round_robin", "local"):
            config = MachineConfig(num_processors=4, placement=placement)
            result = run_mult(FIB.source(), mode="eager", args=(9,),
                              config=config)
            cycles[placement] = result.cycles
        return cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    text = "placement: " + ", ".join(
        "%s=%d" % (k, v) for k, v in sorted(cycles.items()))
    print(text)
    reporting.save_report("ablation_placement.txt", text)
    benchmark.extra_info["cycles"] = dict(cycles)
    assert set(cycles) == {"round_robin", "local"}
