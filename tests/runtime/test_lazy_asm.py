"""Lazy task creation integration tests (hand-written assembly).

The lazy protocol requires the compiled-code convention that every live
value of the continuation — including the return address — is on the
stack when ``V_LAZY_PUSH`` traps, so a stolen continuation can resume
from the stack copy alone (plus ``a0`` = the future).
"""

from repro.isa.assembler import assemble
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs

HDR_CLOSURE0 = 2

#: main does (lazy-future (child)) + 2 with the full stack discipline.
LAZY_BODY = """
main:
    st ra, [sp+0]
    addr sp, 8, sp
    set resume, t7
    trap {push}
    call child
    trap {finish}
resume:
    add a0, 8, a0        ; + fixnum(2); traps if a0 is an unresolved future
    subr sp, 8, sp
    ld [sp+0], ra
    ret

child:                   ; leaf: spins a while, returns fixnum(5)
    set {iters}, t0
loop:
    cmpr t0, 0
    ble done
    ba loop
    @subr t0, 1, t0
done:
    set 20, a0
    ret
"""


def build(iters=0, **config_kwargs):
    source = stubs.thread_start_stub() + LAZY_BODY.format(
        push=stubs.V_LAZY_PUSH, finish=stubs.V_LAZY_FINISH, iters=iters)
    config = MachineConfig(lazy_futures=True, **config_kwargs)
    return AlewifeMachine(assemble(source), config)


class TestUnstolen:
    def test_single_cpu_inline(self):
        machine = build(iters=0, num_processors=1)
        result = machine.run()
        assert result.value == 7
        # No task was ever created: pure push/pop.
        assert result.stats.lazy_pushed == 1
        assert result.stats.lazy_stolen == 0
        assert result.stats.futures_created == 0
        assert result.stats.threads_created == 1

    def test_inline_cost_is_small(self):
        # The whole point of lazy task creation: an unstolen future
        # costs only the push/finish traps, far less than eager creation.
        lazy = build(iters=0, num_processors=1).run()
        eager_config = MachineConfig(num_processors=1)
        assert lazy.cycles < eager_config.eager_task_create_cycles * 3


class TestStolen:
    def test_two_cpus_steal_continuation(self):
        machine = build(iters=300, num_processors=2)
        result = machine.run()
        assert result.value == 7
        assert result.stats.lazy_stolen == 1
        assert result.stats.futures_created == 1
        assert result.stats.futures_resolved == 1
        # The stolen continuation became a second thread.
        assert result.stats.threads_created == 2

    def test_steal_transfers_root(self):
        machine = build(iters=300, num_processors=2)
        result = machine.run()
        threads = machine.runtime.threads
        # The thief's thread (the stolen continuation) finished the run.
        assert threads[1].name.startswith("steal-of-")
        assert threads[1].is_root
        assert not threads[0].is_root

    def test_both_cpus_did_work(self):
        machine = build(iters=300, num_processors=2)
        machine.run()
        assert machine.cpus[0].stats.instructions > 0
        assert machine.cpus[1].stats.instructions > 0
