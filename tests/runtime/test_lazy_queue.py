"""LazyQueue unit behavior: steal discipline and counter snapshots."""

from repro.runtime.lazy import LazyMarker, LazyQueue


class FakeThread:
    def __init__(self):
        self.lazy_markers = []


def push_marker(queue, thread, sp=0x1000):
    marker = LazyMarker(thread, sp, resume_pc=0x2000, node=queue.node)
    thread.lazy_markers.append(marker)
    queue.push(marker)
    return marker


class TestCounters:
    def test_initial_snapshot_is_zero(self):
        queue = LazyQueue(0)
        assert queue.counters() == {"pushes": 0, "steals": 0, "discards": 0,
                                    "peak_depth": 0, "live": 0}

    def test_push_steal_discard_accounting(self):
        queue = LazyQueue(0)
        thread = FakeThread()
        first = push_marker(queue, thread)
        second = push_marker(queue, thread, sp=0x1100)
        assert queue.counters()["pushes"] == 2
        assert queue.counters()["peak_depth"] == 2
        assert len(queue) == 2

        stolen = queue.steal()
        assert stolen is first            # oldest-first
        queue.discard(second)
        counters = queue.counters()
        assert counters["steals"] == 1
        assert counters["discards"] == 1
        assert counters["live"] == 0
        # Peak depth is sticky: it remembers the high-water mark.
        assert counters["peak_depth"] == 2

    def test_steal_skips_dead_markers_without_counting(self):
        queue = LazyQueue(0)
        thread = FakeThread()
        first = push_marker(queue, thread)
        second = push_marker(queue, thread, sp=0x1100)
        first.active = False              # invalidated in place
        stolen = queue.steal()
        assert stolen is second
        assert queue.counters()["steals"] == 1
        assert queue.steal() is None
        assert queue.counters()["steals"] == 1
