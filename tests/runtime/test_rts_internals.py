"""RuntimeSystem internals: stacks, heaps, spawn, deadlock detection,
and lazy-steal bookkeeping invariants."""

import pytest

from repro.errors import RuntimeSystemError, SimulationError
from repro.isa import tags
from repro.isa.assembler import assemble
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs
from repro.runtime.thread import ThreadState


def build(body="main:\n    set 0, a0\n    ret\n", **config):
    source = stubs.thread_start_stub() + body
    return AlewifeMachine(assemble(source), MachineConfig(**config))


class TestHeapLayout:
    def test_arenas_disjoint_per_node(self):
        machine = build(num_processors=3)
        runtime = machine.runtime
        spans = []
        for node in range(3):
            user = runtime._user_arenas[node]
            kernel = runtime.kernel_heap(node).arena
            spans.append((user.base, user.limit))
            spans.append((kernel.base, kernel.limit))
        spans.sort()
        for (b1, l1), (b2, _l2) in zip(spans, spans[1:]):
            assert l1 <= b2, "arena overlap"

    def test_arenas_start_after_program(self):
        machine = build()
        assert machine.runtime._user_arenas[0].base >= machine.program.end

    def test_globals_initialized(self):
        from repro.isa import registers
        machine = build(num_processors=2)
        for cpu in machine.cpus:
            assert cpu.read_reg(registers.GP) > 0
            assert cpu.read_reg(registers.GL) > cpu.read_reg(registers.GP)
            assert cpu.read_reg(registers.NIL) == machine.runtime.nil
            assert cpu.read_reg(registers.TRUE) == machine.runtime.true

    def test_singletons_distinct(self):
        machine = build()
        assert machine.runtime.nil != machine.runtime.true


class TestStacks:
    def test_free_list_reuse(self):
        machine = build()
        runtime = machine.runtime
        base = runtime.allocate_stack(0)
        thread = runtime.new_thread(0)
        thread.stack_base = base
        runtime.free_stack(thread)
        assert runtime.allocate_stack(0) == base

    def test_free_is_idempotent_per_thread(self):
        machine = build()
        runtime = machine.runtime
        thread = runtime.new_thread(0)
        thread.stack_base = runtime.allocate_stack(0)
        runtime.free_stack(thread)
        runtime.free_stack(thread)   # no double free: stack_base cleared
        assert len(runtime._stack_free_lists[0]) == 1


class TestSpawn:
    def test_spawn_main_queues_on_node_zero(self):
        machine = build()
        thread = machine.runtime.spawn_main("main")
        assert thread.is_root
        assert thread.state is ThreadState.READY
        assert machine.runtime.scheduler.ready[0][-1] is thread

    def test_spawn_args_become_fixnums(self):
        machine = build()
        thread = machine.runtime.spawn_main("main", (3, -4))
        assert thread.args == (tags.make_fixnum(3), tags.make_fixnum(-4))

    def test_unknown_entry_raises(self):
        machine = build()
        with pytest.raises(Exception):
            machine.runtime.spawn_main("nosuch")


class TestResolution:
    def test_resolve_wakes_waiters(self):
        machine = build(num_processors=2)
        runtime = machine.runtime
        future = runtime.kernel_heap(0).future_cell()
        waiter = runtime.new_thread(1)
        waiter.transition(ThreadState.LOADED)
        waiter.transition(ThreadState.BLOCKED)
        waiter.blocked_on = future
        runtime.futures.add_waiter(future, waiter)
        runtime.resolve_future(machine.cpus[0], future, tags.make_fixnum(5))
        assert waiter.state is ThreadState.READY
        assert waiter in runtime.scheduler.ready[1]
        assert runtime.futures.waiting_count() == 0

    def test_double_resolve_raises(self):
        machine = build()
        runtime = machine.runtime
        future = runtime.kernel_heap(0).future_cell()
        runtime.resolve_future(machine.cpus[0], future, 0)
        with pytest.raises(RuntimeSystemError):
            runtime.resolve_future(machine.cpus[0], future, 0)


class TestDeadlockDetection:
    def test_blocked_only_machine_raises(self):
        """A program whose only thread blocks forever on a never-
        resolved future dies with a deadlock diagnosis, not a hang."""
        body = """
        main:
            mov gp, t0           ; hand-build an unresolved future word
            or t0, 5, t1
            addr gp, 8, gp
            add t1, 4, a0        ; touch it: spins, blocks, deadlock
            ret
        """
        machine = build(body, num_processors=1, touch_spin_limit=1)
        # Mark the future cell empty (unresolved).
        gp = machine.cpus[0].read_reg(
            __import__("repro.isa.registers", fromlist=["GP"]).GP)
        machine.memory.set_full(gp, False)
        with pytest.raises(SimulationError) as info:
            machine.run(max_cycles=1_000_000)
        assert "deadlock" in str(info.value)

    def test_check_deadlock_quiet_when_working(self):
        machine = build()
        machine.runtime.spawn_main("main")
        machine.runtime.check_deadlock()   # ready thread exists: fine


class TestFutureTable:
    def test_shutdown_check(self):
        from repro.runtime.futures import FutureTable
        table = FutureTable()
        table.check_empty_on_shutdown()    # empty: fine
        machine = build()
        thread = machine.runtime.new_thread(0)
        table.add_waiter(tags.make_future(0x40), thread)
        with pytest.raises(RuntimeSystemError):
            table.check_empty_on_shutdown()
