"""Heap allocator and tagged object layout tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuntimeSystemError
from repro.isa import tags
from repro.mem.memory import Memory
from repro.runtime.heap import (
    Arena, Heap, TYPE_CLOSURE, TYPE_VECTOR, header_length, header_type,
    make_header,
)


@pytest.fixture
def heap():
    memory = Memory(4096)
    return Heap(Arena(memory, 0x100, 0x3000))


class TestArena:
    def test_alignment(self):
        arena = Arena(Memory(1024), 0x100, 0x800)
        a = arena.allocate(1)
        b = arena.allocate(3)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 8

    def test_exhaustion_raises(self):
        arena = Arena(Memory(64), 0, 64)
        arena.allocate(14)
        with pytest.raises(RuntimeSystemError):
            arena.allocate(4)

    def test_bad_bounds(self):
        with pytest.raises(RuntimeSystemError):
            Arena(Memory(64), 4, 64)        # unaligned base
        with pytest.raises(RuntimeSystemError):
            Arena(Memory(64), 64, 64)       # empty

    def test_free_words(self):
        arena = Arena(Memory(64), 0, 64)
        before = arena.free_words
        arena.allocate(2)
        assert arena.free_words == before - 2


class TestHeaders:
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=100000))
    def test_roundtrip(self, type_code, length):
        word = make_header(type_code, length)
        assert header_type(word) == type_code
        assert header_length(word) == length


class TestCons:
    def test_car_cdr(self, heap):
        pair = heap.cons(tags.make_fixnum(1), tags.make_fixnum(2))
        assert tags.is_cons(pair)
        assert tags.fixnum_value(heap.car(pair)) == 1
        assert tags.fixnum_value(heap.cdr(pair)) == 2

    def test_set_car_cdr(self, heap):
        pair = heap.cons(0, 0)
        heap.set_car(pair, tags.make_fixnum(9))
        heap.set_cdr(pair, tags.make_fixnum(8))
        assert tags.fixnum_value(heap.car(pair)) == 9
        assert tags.fixnum_value(heap.cdr(pair)) == 8

    def test_distinct_cells(self, heap):
        a = heap.cons(0, 0)
        b = heap.cons(0, 0)
        assert tags.pointer_address(a) != tags.pointer_address(b)


class TestVectors:
    def test_layout(self, heap):
        vec = heap.vector(3, fill=tags.make_fixnum(7))
        assert tags.is_other(vec)
        assert heap.vector_length(vec) == 3
        for i in range(3):
            assert tags.fixnum_value(heap.vector_ref(vec, i)) == 7

    def test_set(self, heap):
        vec = heap.vector(2)
        heap.vector_set(vec, 1, tags.make_fixnum(42))
        assert tags.fixnum_value(heap.vector_ref(vec, 1)) == 42

    def test_bounds_checked(self, heap):
        vec = heap.vector(2)
        with pytest.raises(RuntimeSystemError):
            heap.vector_ref(vec, 2)
        with pytest.raises(RuntimeSystemError):
            heap.vector_set(vec, -1, 0)

    def test_header_type(self, heap):
        vec = heap.vector(1)
        header = heap.memory.read_word(tags.pointer_address(vec))
        assert header_type(header) == TYPE_VECTOR

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=20))
    def test_roundtrip_property(self, values):
        heap = Heap(Arena(Memory(4096), 0x100, 0x3000))
        vec = heap.vector(len(values))
        for i, v in enumerate(values):
            heap.vector_set(vec, i, tags.make_fixnum(v))
        assert [tags.fixnum_value(heap.vector_ref(vec, i))
                for i in range(len(values))] == values


class TestClosures:
    def test_layout(self, heap):
        clo = heap.closure(0x1234, [tags.make_fixnum(5)])
        assert heap.closure_code(clo) == 0x1234
        assert tags.fixnum_value(heap.closure_capture(clo, 0)) == 5
        header = heap.memory.read_word(tags.pointer_address(clo))
        assert header_type(header) == TYPE_CLOSURE
        assert header_length(header) == 1


class TestFutureCells:
    def test_starts_unresolved(self, heap):
        future = heap.future_cell()
        assert tags.is_future(future)
        assert not heap.future_is_resolved(future)

    def test_resolution(self, heap):
        future = heap.future_cell()
        heap.resolve_future(future, tags.make_fixnum(11))
        assert heap.future_is_resolved(future)
        assert tags.fixnum_value(heap.future_value(future)) == 11

    def test_double_resolve_raises(self, heap):
        future = heap.future_cell()
        heap.resolve_future(future, 0)
        with pytest.raises(RuntimeSystemError):
            heap.resolve_future(future, 0)

    def test_reading_unresolved_raises(self, heap):
        future = heap.future_cell()
        with pytest.raises(RuntimeSystemError):
            heap.future_value(future)

    def test_resolution_is_the_fe_bit(self, heap):
        # "The future is resolved if the full/empty bit of the future's
        # value slot is set to full" (Section 6.2).
        future = heap.future_cell()
        cell = tags.pointer_address(future)
        assert not heap.memory.is_full(cell)
        heap.resolve_future(future, 0)
        assert heap.memory.is_full(cell)


class TestConversion:
    def test_list_roundtrip(self, heap):
        nil = heap.singleton(0)
        true = heap.singleton(1)
        word = heap.from_python([1, [2, 3], 4], nil, true)
        assert heap.to_python(word, nil, true) == [1, [2, 3], 4]

    def test_booleans(self, heap):
        nil = heap.singleton(0)
        true = heap.singleton(1)
        assert heap.to_python(heap.from_python(True, nil, true),
                              nil, true) is True
        assert heap.to_python(heap.from_python(False, nil, true),
                              nil, true) == []

    def test_string(self, heap):
        word = heap.string("hi")
        assert heap.to_python(word) == "hi"

    def test_future_decodes_through(self, heap):
        future = heap.future_cell()
        heap.resolve_future(future, tags.make_fixnum(3))
        assert heap.to_python(future) == 3

    def test_unresolved_future_marked(self, heap):
        assert heap.to_python(heap.future_cell()) == "<unresolved future>"
