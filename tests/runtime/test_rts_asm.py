"""Run-time system integration tests with hand-written APRIL assembly.

These exercise the full thread/future/trap pipeline beneath the Mul-T
compiler: eager future creation, hardware touch traps, switch-spinning,
blocking, and multiprocessor scheduling.
"""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.tags import fixnum_value, make_fixnum
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs

#: Closure header: (ncaptures << 8) | TYPE_CLOSURE.
HDR_CLOSURE0 = 2


def build_machine(body, **config_kwargs):
    source = stubs.thread_start_stub() + body
    program = assemble(source)
    config = MachineConfig(**config_kwargs)
    return AlewifeMachine(program, config)


#: Allocate a zero-capture closure for `label` into a0 (9 instructions).
def make_thunk(label, dest="a0"):
    return """
    mov gp, t0
    set %d, t1
    str t1, [t0+0]
    set %s, t1
    str t1, [t0+4]
    addr gp, 8, gp
    or t0, 2, %s
    """ % (HDR_CLOSURE0, label, dest)


class TestPlainThreads:
    def test_main_returns_value(self):
        machine = build_machine("""
        main:
            set 168, a0      ; fixnum(42)
            ret
        """)
        result = machine.run()
        assert result.value == 42

    def test_main_with_arguments(self):
        machine = build_machine("""
        main:
            add a0, a1, a0
            ret
        """)
        machine.runtime.spawn_main("main", (4, 5))
        # spawn_main was already called; drive the loop manually via run
        # on a fresh machine instead:
        machine2 = build_machine("""
        main:
            add a0, a1, a0
            ret
        """)
        result = machine2.run(args=(4, 5))
        assert result.value == 9

    def test_output_via_print_trap(self):
        machine = build_machine("""
        main:
            set 40, a0       ; fixnum(10)
            trap %d
            ret
        """ % stubs.V_PRINT)
        result = machine.run()
        assert result.output == [10]


class TestEagerFutures:
    FUTURE_BODY = """
    main:
        %s
        trap %d          ; a0 = future for (child)
        add a0, 8, a0    ; touch: future + fixnum(2)
        ret
    child:
        set 20, a0       ; fixnum(5)
        ret
    """ % (make_thunk("child"), stubs.V_FUTURE)

    def test_future_on_one_cpu(self):
        machine = build_machine(self.FUTURE_BODY, num_processors=1)
        result = machine.run()
        assert result.value == 7
        assert result.stats.futures_created == 1
        assert result.stats.futures_resolved == 1

    def test_future_on_two_cpus(self):
        machine = build_machine(self.FUTURE_BODY, num_processors=2)
        result = machine.run()
        assert result.value == 7

    def test_touch_blocks_then_wakes(self):
        # With a spin limit of 0... keep default: the main thread should
        # spin then block; the child resolves and wakes it.
        machine = build_machine(self.FUTURE_BODY, num_processors=1,
                                touch_spin_limit=1)
        result = machine.run()
        assert result.value == 7
        assert result.stats.touches_unresolved >= 1
        assert result.stats.touches_resolved >= 1

    def test_many_futures(self):
        # Sum of 4 futures, each returning fixnum(k).
        body = ["main:", "    set 0, s0"]
        # We cannot use callee-saved regs across traps? s-regs are frame
        # state, preserved: the frame is ours throughout.
        for k in range(4):
            body.append(make_thunk("child%d" % k))
            body.append("    trap %d" % stubs.V_FUTURE)
            body.append("    mov a0, s%d" % k)
        body.append("    add s0, s1, t0")
        body.append("    add t0, s2, t0")
        body.append("    add t0, s3, a0")
        body.append("    ret")
        for k in range(4):
            body.append("child%d:" % k)
            body.append("    set %d, a0" % (4 * (k + 1)))  # fixnum(k+1)
            body.append("    ret")
        machine = build_machine("\n".join(body), num_processors=4)
        result = machine.run()
        assert result.value == 1 + 2 + 3 + 4
        assert result.stats.futures_created == 4

    def test_future_resolving_to_future_chains(self):
        # outer child itself returns a future; the touch must chase it.
        body = """
        main:
            %s
            trap %d
            add a0, 4, a0    ; + fixnum(1)
            ret
        outer:
            %s
            trap %d
            ret              ; returns the *future* for inner
        inner:
            set 12, a0       ; fixnum(3)
            ret
        """ % (make_thunk("outer"), stubs.V_FUTURE,
               make_thunk("inner"), stubs.V_FUTURE)
        machine = build_machine(body, num_processors=2)
        result = machine.run()
        assert result.value == 4


class TestFutureOn:
    def test_future_on_pins_node(self):
        body = """
        main:
            %s
            set 4, a1        ; fixnum(1): run on node 1
            trap %d
            add a0, 0, a0
            ret
        child:
            set 36, a0       ; fixnum(9)
            ret
        """ % (make_thunk("child"), stubs.V_FUTURE_ON)
        machine = build_machine(body, num_processors=2)
        result = machine.run()
        assert result.value == 9
        # The child ran on node 1: that cpu did useful work.
        assert machine.cpus[1].stats.instructions > 0


class TestExplicitTouch:
    def test_touch_of_non_future_is_cheap(self):
        machine = build_machine("""
        main:
            set 44, a0
            trap %d
            ret
        """ % stubs.V_TOUCH)
        result = machine.run()
        assert result.value == 11


class TestErrors:
    def test_error_trap_raises(self):
        machine = build_machine("""
        main:
            set 4, a0
            trap %d
            ret
        """ % stubs.V_ERROR)
        with pytest.raises(SimulationError):
            machine.run()

    def test_cycle_limit(self):
        machine = build_machine("""
        main:
        spin:
            ba spin
        """)
        with pytest.raises(SimulationError):
            machine.run(max_cycles=10_000)


class TestSchedulingStats:
    def test_context_switches_counted(self):
        machine = build_machine(self.__class__.__dict__.get(
            "_body", TestEagerFutures.FUTURE_BODY), num_processors=1)
        result = machine.run()
        assert result.stats.context_switches >= 1

    def test_utilization_bounded(self):
        machine = build_machine(TestEagerFutures.FUTURE_BODY,
                                num_processors=2)
        result = machine.run()
        assert 0.0 < result.stats.utilization <= 1.0
