"""Full/empty-bit synchronization library: locks, I-structures, barriers.

Multi-processor assembly programs exercising mutual exclusion and
producer/consumer handoff through the Section 3.3 structures.
"""

import pytest

from repro.isa.assembler import assemble
from repro.isa.tags import fixnum_value, make_fixnum
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs
from repro.runtime.sync import SYNC_ASM, SyncAllocator


def build(body, processors=2, **overrides):
    source = stubs.thread_start_stub() + SYNC_ASM + body
    config = MachineConfig(num_processors=processors, **overrides)
    return AlewifeMachine(assemble(source), config)


def make_thunk(label):
    return """
    mov gp, t0
    set 2, t1
    str t1, [t0+0]
    set %s, t1
    str t1, [t0+4]
    addr gp, 8, gp
    or t0, 2, a0
    """ % label


class TestLock:
    def test_mutual_exclusion_under_contention(self):
        """Two threads each add 1 to a shared counter 25 times under the
        lock; without mutual exclusion increments would be lost."""
        body = """
        .equ ROUNDS, 25
        main:
            st ra, [sp+0]
            addr sp, 4, sp
            %s
            set 4, a1
            trap %d          ; future-on node 1: second worker
            subr sp, 4, sp
            ld [sp+0], ra
            st a0, [sp+0]    ; save the future
            addr sp, 4, sp
            st ra, [sp+0]
            addr sp, 4, sp
            call worker      ; first worker runs here
            subr sp, 4, sp
            ld [sp+0], ra
            subr sp, 4, sp
            ldr [sp+0], a0
            add a0, 0, a0    ; touch: wait for the second worker
            set counter, t0
            ldr [t0+0], a0
            ret

        worker:
            st ra, [sp+0]
            set ROUNDS, t3
            st t3, [sp+4]
            addr sp, 8, sp
        wloop:
            set lock, a0
            call __lock_acquire
            set counter, t2
            ldr [t2+0], t3
            addr t3, 4, t3   ; counter += fixnum(1)
            str t3, [t2+0]
            set lock, a0
            call __lock_release
            ldr [sp-4], t3
            subr t3, 1, t3
            str t3, [sp-4]
            cmpr t3, 0
            bg wloop
            set 0, a0
            subr sp, 8, sp
            ld [sp+0], ra
            ret

        .align 8
        lock:
            .word 0
        counter:
            .fixnum 0
        """ % (make_thunk("worker"), stubs.V_FUTURE_ON)
        machine = build(body, processors=2)
        result = machine.run()
        assert result.value == 50

    def test_lock_allocator(self):
        machine = build("main:\n    set 0, a0\n    ret\n")
        sync = SyncAllocator(machine)
        lock = sync.new_lock()
        assert sync.lock_is_free(lock)


class TestIStructure:
    def test_producer_consumer_across_nodes(self):
        """The consumer starts first and waits (switch-spinning) on an
        empty I-structure slot until the remote producer fills it."""
        body = """
        main:
            st ra, [sp+0]
            addr sp, 4, sp
            %s
            set 4, a1
            trap %d              ; producer on node 1
            subr sp, 4, sp
            ld [sp+0], ra
            set slot, a0
            st ra, [sp+0]
            addr sp, 4, sp
            call __ifetch        ; waits for the producer
            subr sp, 4, sp
            ld [sp+0], ra
            ret

        producer:
            set wait_count, t0   ; dawdle so the consumer really waits
            set 50, t1
        ploop:
            cmpr t1, 0
            ble fill
            ba ploop
            @subr t1, 1, t1
        fill:
            st ra, [sp+0]
            addr sp, 4, sp
            set slot, a0
            set 168, a1          ; fixnum(42)
            call __istore
            subr sp, 4, sp
            ld [sp+0], ra
            set 0, a0
            ret

        .align 8
        slot:
            .word 0
        wait_count:
            .word 0
        """ % (make_thunk("producer"), stubs.V_FUTURE_ON)
        machine = build(body, processors=2)
        machine.memory.load_program(machine.program)
        # Make the slot empty before the run.
        machine.memory.set_full(machine.program.address_of("slot"), False)
        result = machine.run()
        assert result.value == 42

    def test_istructure_allocator(self):
        machine = build("main:\n    set 0, a0\n    ret\n")
        sync = SyncAllocator(machine)
        base = sync.new_istructure_array(4)
        assert not machine.memory.is_full(base)
        machine.memory.write_word(base, make_fixnum(9))
        machine.memory.set_full(base, True)
        assert fixnum_value(sync.istructure_value(base, 0)) == 9

    def test_reading_empty_slot_raises(self):
        machine = build("main:\n    set 0, a0\n    ret\n")
        sync = SyncAllocator(machine)
        base = sync.new_istructure_array(2)
        with pytest.raises(Exception):
            sync.istructure_value(base, 1)


class TestBarrier:
    def test_two_threads_rendezvous(self):
        """Worker on node 1 writes a value, then both cross a barrier;
        main reads the value only after the barrier — so it must see it."""
        body = """
        main:
            st ra, [sp+0]
            addr sp, 4, sp
            %s
            set 4, a1
            trap %d
            set barrier, a0
            call __barrier_wait
            set shared, t0
            ldr [t0+0], a0
            subr sp, 4, sp
            ld [sp+0], ra
            ret

        worker:
            st ra, [sp+0]
            addr sp, 4, sp
            set shared, t0
            set 292, t1      ; fixnum(73)
            str t1, [t0+0]
            set barrier, a0
            call __barrier_wait
            subr sp, 4, sp
            ld [sp+0], ra
            set 0, a0
            ret

        .align 8
        barrier:
            .word 0          ; lock
            .fixnum 2        ; remaining
            .fixnum 2        ; total
            .word 0          ; sense
        shared:
            .fixnum 0
        """ % (make_thunk("worker"), stubs.V_FUTURE_ON)
        machine = build(body, processors=2)
        sense = machine.program.address_of("barrier") + 12
        machine.memory.set_full(sense, False)
        result = machine.run()
        assert result.value == 73

    def test_barrier_allocator_layout(self):
        machine = build("main:\n    set 0, a0\n    ret\n")
        sync = SyncAllocator(machine)
        base = sync.new_barrier(3)
        assert machine.memory.is_full(base)            # lock free
        assert not machine.memory.is_full(base + 12)   # sense empty
        assert fixnum_value(machine.memory.read_word(base + 4)) == 3


class TestAllocatorCounters:
    def test_counters_track_allocations(self):
        machine = build("main:\n    set 0, a0\n    ret\n")
        sync = SyncAllocator(machine)
        assert machine.runtime.sync is sync   # registered for reports
        assert sync.counters() == SyncAllocator.empty_counters()
        sync.new_lock()
        sync.new_lock()
        sync.new_barrier(4)
        sync.new_istructure_array(6)
        counters = sync.counters()
        assert counters["locks"] == 2
        assert counters["barriers"] == 1
        assert counters["istructure_arrays"] == 1
        assert counters["istructure_slots"] == 6
        # 2 lock words each, 4 barrier words, 6 slot words.
        assert counters["words_allocated"] == 2 * 2 + 4 + 6

    def test_empty_counters_shape_matches(self):
        machine = build("main:\n    set 0, a0\n    ret\n")
        sync = SyncAllocator(machine)
        sync.new_lock()
        assert set(sync.counters()) == set(SyncAllocator.empty_counters())
