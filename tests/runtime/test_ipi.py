"""Message passing over IPIs and mailboxes (Section 3.4)."""

import pytest

from repro.errors import RuntimeSystemError
from repro.isa import tags
from repro.isa.assembler import assemble
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs
from repro.runtime.ipi import SLOT_WORDS, Mailbox, MessagePassing


def build(processors=2, body=None, **overrides):
    body = body or """
    main:
        set 400, t0       ; dawdle so IPIs arrive while running
    mloop:
        cmpr t0, 0
        ble mdone
        ba mloop
        @subr t0, 1, t0
    mdone:
        set 0, a0
        ret
    """
    source = stubs.thread_start_stub() + body
    config = MachineConfig(num_processors=processors, **overrides)
    return AlewifeMachine(assemble(source), config)


class TestMailbox:
    def test_deposit_collect_roundtrip(self):
        machine = build()
        box = Mailbox(machine.memory,
                      machine.runtime.kernel_heap(0).arena.allocate(64), 4)
        assert box.deposit([tags.make_fixnum(1), tags.make_fixnum(2)])
        assert box.collect() == [tags.make_fixnum(1), tags.make_fixnum(2)]
        assert box.collect() is None

    def test_fifo_order(self):
        machine = build()
        box = Mailbox(machine.memory,
                      machine.runtime.kernel_heap(0).arena.allocate(64), 4)
        for k in range(3):
            box.deposit([tags.make_fixnum(k)])
        assert [tags.fixnum_value(box.collect()[0]) for _ in range(3)] == \
            [0, 1, 2]

    def test_ring_fills_and_drains(self):
        machine = build()
        box = Mailbox(machine.memory,
                      machine.runtime.kernel_heap(0).arena.allocate(
                          2 * SLOT_WORDS), 2)
        assert box.deposit([0]) is not None
        assert box.deposit([0]) is not None
        assert box.deposit([0]) is None      # full
        box.collect()
        assert box.deposit([0]) is not None  # slot freed

    def test_oversized_message_raises(self):
        machine = build()
        box = Mailbox(machine.memory,
                      machine.runtime.kernel_heap(0).arena.allocate(64), 4)
        with pytest.raises(RuntimeSystemError):
            box.deposit([0] * SLOT_WORDS)


class TestMessagePassing:
    def test_delivery_during_run(self):
        machine = build()
        mp = MessagePassing(machine)
        received = []
        mp.on_message(1, lambda src, words: received.append((src, words)))
        assert mp.send(0, 1, [tags.make_fixnum(7)])
        machine.run()
        assert received == [(0, [tags.make_fixnum(7)])]
        assert mp.sent == mp.delivered == 1

    def test_unreceived_messages_queue(self):
        machine = build()
        mp = MessagePassing(machine)
        mp.send(0, 1, [tags.make_fixnum(3)])
        machine.run()
        assert mp.pending(1) == 1

    def test_polling_receive(self):
        machine = build()
        mp = MessagePassing(machine)
        box = mp.mailboxes[0]
        box.deposit([tags.make_fixnum(5)])
        assert mp.receive(0) == [tags.make_fixnum(5)]

    def test_backpressure(self):
        machine = build()
        mp = MessagePassing(machine, slots=2)
        assert mp.send(0, 1, [0])
        assert mp.send(0, 1, [0])
        assert not mp.send(0, 1, [0])   # mailbox full: sender backs off

    def test_bad_destination(self):
        machine = build()
        mp = MessagePassing(machine)
        with pytest.raises(RuntimeSystemError):
            mp.send(0, 9, [0])

    def test_ping_pong(self):
        """Two nodes bounce a counter through mailboxes: each delivery
        triggers the next send from the receiving node."""
        machine = build(processors=2)
        mp = MessagePassing(machine)
        log = []

        def bounce(node):
            def handler(src, words):
                value = tags.fixnum_value(words[0])
                log.append((node, value))
                if value < 5:
                    mp.send(node, src, [tags.make_fixnum(value + 1)])
            return handler

        mp.on_message(0, bounce(0))
        mp.on_message(1, bounce(1))
        mp.send(0, 1, [tags.make_fixnum(0)])
        machine.run()
        values = [value for _node, value in log]
        assert values == [0, 1, 2, 3, 4, 5]
        nodes = [node for node, _value in log]
        assert nodes == [1, 0, 1, 0, 1, 0]
