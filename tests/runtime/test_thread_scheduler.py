"""Thread state machine, scheduler queues, and lazy-queue unit tests."""

import pytest

from repro.core.processor import Processor
from repro.errors import RuntimeSystemError
from repro.machine.config import MachineConfig
from repro.mem.ideal import IdealMemoryPort
from repro.mem.memory import Memory
from repro.runtime.lazy import LazyMarker, LazyQueue
from repro.runtime.scheduler import Scheduler
from repro.runtime.thread import Thread, ThreadState


def make_thread(**kwargs):
    defaults = dict(stack_base=0x1000, stack_words=64, home_node=0)
    defaults.update(kwargs)
    return Thread(**defaults)


def make_scheduler(cpus=2, **config_kwargs):
    config = MachineConfig(num_processors=cpus, **config_kwargs)
    port = IdealMemoryPort(Memory(1024))
    processors = [Processor(node_id=i, port=port) for i in range(cpus)]
    return Scheduler(processors, config), processors


class TestThreadStates:
    def test_fresh_thread_is_ready(self):
        assert make_thread().state is ThreadState.READY

    def test_legal_lifecycle(self):
        thread = make_thread()
        thread.transition(ThreadState.LOADED)
        thread.transition(ThreadState.BLOCKED)
        thread.transition(ThreadState.READY)
        thread.transition(ThreadState.LOADED)
        thread.transition(ThreadState.DONE)

    def test_illegal_transition_raises(self):
        thread = make_thread()
        with pytest.raises(RuntimeSystemError):
            thread.transition(ThreadState.BLOCKED)  # ready -> blocked

    def test_done_is_terminal(self):
        thread = make_thread()
        thread.transition(ThreadState.LOADED)
        thread.transition(ThreadState.DONE)
        with pytest.raises(RuntimeSystemError):
            thread.transition(ThreadState.READY)

    def test_unique_tids(self):
        assert make_thread().tid != make_thread().tid

    def test_stack_limit(self):
        thread = make_thread(stack_base=0x1000, stack_words=64)
        assert thread.stack_limit == 0x1000 + 256


class TestScheduler:
    def test_round_robin_placement(self):
        scheduler, _ = make_scheduler(cpus=3)
        nodes = [scheduler.pick_node(0) for _ in range(6)]
        assert nodes == [0, 1, 2, 0, 1, 2]

    def test_local_placement(self):
        scheduler, _ = make_scheduler(cpus=3, placement="local")
        assert scheduler.pick_node(2) == 2

    def test_pinned_placement(self):
        scheduler, _ = make_scheduler(cpus=3)
        assert scheduler.pick_node(0, pinned=2) == 2
        with pytest.raises(RuntimeSystemError):
            scheduler.pick_node(0, pinned=9)

    def test_owner_lifo_thief_fifo(self):
        scheduler, _ = make_scheduler()
        first, second = make_thread(), make_thread()
        scheduler.enqueue(first, 0)
        scheduler.enqueue(second, 0)
        # Owner pops the newest (depth-first) ...
        assert scheduler.dequeue_local(0) is second
        scheduler.enqueue(second, 0)
        # ... a thief takes the oldest.
        assert scheduler.steal_ready_thread(1) is first

    def test_enqueue_requires_ready(self):
        scheduler, _ = make_scheduler()
        thread = make_thread()
        thread.transition(ThreadState.LOADED)
        with pytest.raises(RuntimeSystemError):
            scheduler.enqueue(thread, 0)

    def test_load_unload_roundtrip(self):
        scheduler, cpus = make_scheduler()
        thread = make_thread()

        def bootstrap(cpu, frame, th):
            frame.pc = 0x40
            frame.npc = 0x44
            frame.regs[5] = 99

        frame = scheduler.load_thread(cpus[0], thread, bootstrap=bootstrap)
        assert thread.state is ThreadState.LOADED
        assert frame.thread is thread
        scheduler.unload_thread(cpus[0], frame, ThreadState.READY)
        assert thread.state is ThreadState.READY
        assert thread.saved_state["regs"][5] == 99
        assert frame.thread is None
        # Reload restores the register.
        frame2 = scheduler.load_thread(cpus[0], thread, bootstrap=bootstrap)
        assert frame2.regs[5] == 99

    def test_load_charges_cycles(self):
        scheduler, cpus = make_scheduler()
        before = cpus[0].cycles
        scheduler.load_thread(cpus[0], make_thread(),
                              bootstrap=lambda c, f, t: None)
        assert cpus[0].cycles - before == scheduler.config.thread_load_cycles

    def test_no_free_frame_raises(self):
        scheduler, cpus = make_scheduler()
        for _ in range(len(cpus[0].frames)):
            scheduler.load_thread(cpus[0], make_thread(),
                                  bootstrap=lambda c, f, t: None)
        with pytest.raises(RuntimeSystemError):
            scheduler.load_thread(cpus[0], make_thread(),
                                  bootstrap=lambda c, f, t: None)

    def test_next_occupied_frame_round_robin(self):
        scheduler, cpus = make_scheduler()
        cpu = cpus[0]
        t1, t2 = make_thread(), make_thread()
        scheduler.load_thread(cpu, t1, frame=cpu.frames[0],
                              bootstrap=lambda c, f, t: None)
        scheduler.load_thread(cpu, t2, frame=cpu.frames[2],
                              bootstrap=lambda c, f, t: None)
        cpu.fp = 0
        assert scheduler.next_occupied_frame(cpu) is cpu.frames[2]
        cpu.fp = 2
        assert scheduler.next_occupied_frame(cpu) is cpu.frames[0]


class TestLazyQueue:
    def _marker(self, thread, sp):
        marker = LazyMarker(thread, sp=sp, resume_pc=0x100, node=0)
        thread.lazy_markers.append(marker)
        return marker

    def test_steal_takes_oldest(self):
        queue = LazyQueue(0)
        thread = make_thread()
        m1 = self._marker(thread, 0x1010)
        m2 = self._marker(thread, 0x1020)
        queue.push(m1)
        queue.push(m2)
        stolen = queue.steal()
        assert stolen is m1 and stolen.stolen

    def test_owner_discard_from_back(self):
        queue = LazyQueue(0)
        thread = make_thread()
        m1 = self._marker(thread, 0x1010)
        m2 = self._marker(thread, 0x1020)
        queue.push(m1)
        queue.push(m2)
        queue.discard(m2)
        assert len(queue) == 1
        assert queue.steal() is m1

    def test_steal_skips_discarded(self):
        queue = LazyQueue(0)
        thread = make_thread()
        m1 = self._marker(thread, 0x1010)
        queue.push(m1)
        queue.discard(m1)
        assert queue.steal() is None

    def test_empty_steal(self):
        assert LazyQueue(0).steal() is None
