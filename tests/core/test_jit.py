"""Superblock JIT unit tests: generated code vs. the reference step.

The machine-level lockstep harness (``test_lockstep.py``) proves the
JIT tier end-to-end on whole Mul-T runs; this file pins the mechanism
at the processor level — codegen parity on hand-written assembly,
future-guard trap payloads, the bounded code cache, process-wide block
sharing, and self-modifying-code invalidation.
"""

import pytest

from repro.core.jit import SHARED_BLOCKS, CodeCache, compile_block
from repro.core.traps import TrapAction, TrapKind
from repro.isa.assembler import assemble
from repro.isa.tags import make_fixnum
from repro.mem.memory import CodeWatch

from tests.helpers import build_cpu, run_to_halt


def build_jit_cpu(source, **kwargs):
    """A :func:`build_cpu` whose JIT promotes on the first visit and
    whose memory carries a code watch (as the machine attaches one)."""
    cpu, memory, program = build_cpu(source, **kwargs)
    cpu.jit_threshold = 1
    watch = CodeWatch()
    memory.code_watch = watch
    cpu.attach_code_watch(watch)
    return cpu, memory, program


def run_jit_to_halt(cpu, max_blocks=200000):
    """Drive the processor through ``step_block`` until HALT."""
    blocks = 0
    while not cpu.halted:
        cpu.step_block(1 << 30)
        blocks += 1
        if blocks > max_blocks:
            raise AssertionError("program did not halt in %d blocks" % blocks)
    return cpu


def assert_same_outcome(source, check=None, build_ref=build_cpu,
                        build_jit=build_jit_cpu, prepare=None):
    """Run ``source`` under step() and under the JIT; compare everything.

    ``prepare(cpu, memory)`` (applied to both machines) seeds registers
    or memory; ``check(cpu)`` adds scenario assertions on the JIT run.
    """
    ref_cpu, ref_mem, _ = build_ref(source)
    jit_cpu, jit_mem, _ = build_jit(source)
    if prepare is not None:
        prepare(ref_cpu, ref_mem)
        prepare(jit_cpu, jit_mem)
    run_to_halt(ref_cpu)
    run_jit_to_halt(jit_cpu)
    assert jit_cpu.cycles == ref_cpu.cycles
    assert jit_cpu.stats.snapshot() == ref_cpu.stats.snapshot()
    assert jit_cpu.stats.instructions == ref_cpu.stats.instructions
    assert jit_cpu.globals == ref_cpu.globals
    for jit_frame, ref_frame in zip(jit_cpu.frames, ref_cpu.frames):
        assert jit_frame.regs == ref_frame.regs
        assert jit_frame.psr.value == ref_frame.psr.value
    if check is not None:
        check(jit_cpu)
    return jit_cpu


class TestCodegenParity:
    def test_straight_line_and_loop(self):
        cpu = assert_same_outcome("""
                set 0, r1
                set 1, r2
            loop:
                cmpr r2, 50
                bg done
                addr r1, r2, r1
                addr r2, 1, r2
                ba loop
            done:
                halt
        """, check=lambda cpu: None)
        assert cpu.jit_runs > 0
        assert cpu.jit_compiles > 0
        assert cpu.read_reg(1) == sum(range(1, 51))

    def test_logic_shift_and_wide_constants(self):
        assert_same_outcome("""
            set 0x0FABCDEC, r1
            and r1, 0xFF, r2
            or r2, 0x100, r3
            xor r3, r1, r4
            sll r1, 3, r5
            srl r1, 5, r6
            sra r1, 2, r7
            andn r1, r2, r8
            halt
        """)

    def test_memory_flavors_inline(self):
        # Raw and trapping loads/stores over the ideal port: the inline
        # fast path must be bit-identical, full/empty bits included.
        def prepare(cpu, memory):
            memory.write_word(0x4000, 77)
            memory.set_full(0x4004, False)

        assert_same_outcome("""
                set 0x4000, r1
                set 10, r9
            loop:
                ldnt [r1+0], r2      ; trapping-flavor load (full word)
                addr r2, 1, r2
                stnt r2, [r1+0]      ; trapping-flavor store (leaves full)
                ldr  [r1+0], r3      ; raw load
                str  r3, [r1+8]      ; raw store
                stfnt r3, [r1+4]     ; fill the empty word, set full
                ldent [r1+4], r4     ; empty-setting load
                subr r9, 1, r9
                cmpr r9, 0
                bg loop
                halt
        """, prepare=prepare)

    def test_branch_delay_slots(self):
        assert_same_outcome("""
                set 5, r1
                set 0, r2
            loop:
                cmpr r1, 0
                ble out
                @addr r2, 1, r2      ; conditional-exit delay slot
                subr r1, 1, r1
                ba loop
                @addr r2, 10, r2     ; unconditional-exit delay slot
            out:
                halt
        """)

    def test_call_return_chain(self):
        assert_same_outcome("""
                set 3, r1
                call double
                @nop
                call double
                @nop
                halt
            double:
                addr r1, r1, r1
                jmpl [ra+0], r0
                @nop
        """)


class TestGuardTrapParity:
    FUTURE_WORD = 0x2005     # tagged pointer with the future LSB set

    def _resolver(self, log):
        def resolve(cpu, frame, trap):
            log.append((trap.kind, trap.pc, trap.value, trap.cause,
                        trap.instr.op))
            cpu.write_reg(1, make_fixnum(10), frame)
            return TrapAction.RETRY
        return resolve

    def test_guard_raises_identical_trap(self):
        source = """
            set %d, r1
            addr r0, 0, r2
            add r1, 4, r2
            halt
        """ % self.FUTURE_WORD
        logs = []

        def build_with_log(builder):
            cpu, memory, program = builder(source)
            log = []
            logs.append(log)
            cpu.trap_table.register(
                TrapKind.FUTURE_COMPUTE, self._resolver(log))
            return cpu, memory, program

        assert_same_outcome(
            source,
            build_ref=lambda s: build_with_log(build_cpu),
            build_jit=lambda s: build_with_log(build_jit_cpu))
        ref_log, jit_log = logs
        assert ref_log == jit_log
        assert len(jit_log) == 1
        kind, pc, value, cause, op = jit_log[0]
        assert kind is TrapKind.FUTURE_COMPUTE
        assert value == self.FUTURE_WORD
        assert cause == "ADD"

    def test_guard_mid_block_commits_prefix(self):
        # The guard trips after two straight instructions: their
        # effects and cycles must be banked before the trap is taken.
        source = """
            set %d, r1
            addr r0, 7, r3
            addr r3, 1, r4
            add r1, 4, r2
            halt
        """ % self.FUTURE_WORD
        cpu, _, _ = build_jit_cpu(source)
        cpu.trap_table.register(TrapKind.FUTURE_COMPUTE, self._resolver([]))
        run_jit_to_halt(cpu)
        assert cpu.read_reg(3) == 7
        assert cpu.read_reg(4) == 8


class TestCodeCache:
    def test_lru_eviction_and_counters(self):
        cache = CodeCache(2)
        cache.put(0, "a")
        cache.put(4, "b")
        assert cache.get(0) == "a"         # refreshes 0's recency
        cache.put(8, "c")                  # evicts 4, the LRU tail
        assert cache.evictions == 1
        assert cache.get(4) is None
        assert cache.get(0) == "a"
        assert cache.get(8) == "c"

    def test_discard_counts_invalidations(self):
        cache = CodeCache(4)
        cache.put(0, "a")
        assert cache.discard(0)
        assert not cache.discard(0)
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_counters_shape(self):
        counters = CodeCache(8).counters()
        assert counters == {"size": 0, "capacity": 8, "evictions": 0,
                            "invalidations": 0}


class TestSharedBlocks:
    SOURCE = """
            set 0, r1
            set 1, r2
        loop:
            cmpr r2, 20
            bg done
            addr r1, r2, r1
            addr r2, 1, r2
            ba loop
        done:
            halt
    """

    def test_identical_translations_are_shared(self):
        first, _, program = build_jit_cpu(self.SOURCE)
        second, _, _ = build_jit_cpu(self.SOURCE)
        jb_first = compile_block(first, program.base)
        jb_second = compile_block(second, program.base)
        assert jb_first is not None
        assert jb_first is jb_second        # same object: no recompile
        assert jb_first.key in SHARED_BLOCKS.data

    def test_generated_function_is_machine_independent(self):
        cpu, _, program = build_jit_cpu(self.SOURCE)
        jb = compile_block(cpu, program.base)
        # Nothing machine-specific may be baked into the code object:
        # registers, memory, and the PSR all come off (cpu, frame).
        assert "cpu" in jb.fn.__code__.co_varnames
        assert jb.source.startswith("def _jit(cpu, frame")


class TestSelfModifyingCode:
    def _smc_source(self):
        return """
                set 0, r1
                set 0, r2
            loop:
                addr r1, 1, r1       ; the word patched mid-test
                addr r2, 1, r2
                cmpr r2, 10
                bl loop
                halt
            donor:
                addr r1, 2, r1
        """

    def test_patch_invalidates_compiled_block(self):
        cpu, memory, program = build_jit_cpu(self._smc_source())
        run_jit_to_halt(cpu)
        assert cpu.read_reg(1) == 10
        assert cpu.jit_runs > 0
        stale_keys = set(SHARED_BLOCKS.data)

        # Patch the loop body with the donor word (through the watched
        # write path, as a store instruction would).
        body = program.address_of("loop")
        donor = program.address_of("donor")
        memory.write_word(body, memory.read_word(donor))
        assert cpu._jit.invalidations > 0

        # Re-run from the top: the stale translation must not execute.
        frame = cpu.frame
        frame.pc = program.base
        frame.npc = program.base + 4
        cpu.halted = False
        run_jit_to_halt(cpu)
        assert cpu.read_reg(1) == 20     # 10 iterations of +2

        # The recompiled block has different words, hence a new
        # shared-cache key; the stale entry can never be looked up
        # again (the key embeds the translated words).
        fresh = [key for key in SHARED_BLOCKS.data
                 if key not in stale_keys and key[0] == body]
        assert fresh

    def test_store_instruction_invalidates(self):
        # The program patches its *own* loop body with a raw store,
        # then loops again: classic self-modifying code, JIT-compiled.
        source = """
                set 0, r1
                set 0, r2
            phase1:
                addr r1, 1, r1
                addr r2, 1, r2
                cmpr r2, 8
                bl phase1
                set donor, r3
                ldr [r3+0], r4
                set target, r5
                str r4, [r5+0]       ; overwrite the phase2 body word
                set 0, r2
            phase2:
            target:
                addr r1, 1, r1       ; becomes "addr r1, 5, r1"
                addr r2, 1, r2
                cmpr r2, 8
                bl phase2
                halt
            donor:
                addr r1, 5, r1
        """
        ref_cpu, _, _ = build_cpu(source)
        run_to_halt(ref_cpu)
        jit_cpu, _, _ = build_jit_cpu(source)
        run_jit_to_halt(jit_cpu)
        assert jit_cpu.read_reg(1) == ref_cpu.read_reg(1) == 8 + 8 * 5
        assert jit_cpu.cycles == ref_cpu.cycles
        assert jit_cpu.stats.snapshot() == ref_cpu.stats.snapshot()
        assert jit_cpu._jit.invalidations > 0

    def test_deopt_counter_stays_zero(self):
        # Current codegen never returns without progress (guards raise,
        # delegates charge), so the deopt safety net must stay cold.
        cpu, _, _ = build_jit_cpu(self._smc_source())
        run_jit_to_halt(cpu)
        assert cpu.jit_deopts == 0
