"""Processor pipeline tests: whole small programs on ideal memory."""

import pytest

from repro.core.traps import (
    TRAP_SQUASH_CYCLES, TrapAction, TrapKind,
)
from repro.errors import ProcessorError
from repro.isa import registers
from repro.isa.tags import fixnum_value, make_fixnum

from tests.helpers import build_cpu, run_to_halt


def reg(cpu, name):
    return cpu.read_reg(registers.register_number(name))


class TestStraightLine:
    def test_arithmetic_program(self):
        cpu, _, _ = build_cpu("""
            set 40, r1
            add r1, 8, r2
            sub r2, 6, r3
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r2") == 48
        assert reg(cpu, "r3") == 42

    def test_r0_is_hardwired_zero(self):
        cpu, _, _ = build_cpu("""
            set 99, r0
            mov r0, r1
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 0

    def test_globals_visible_across_frames(self):
        cpu, _, _ = build_cpu("""
            set 7, g3
            incfp
            mov g3, r1
            halt
        """)
        cpu.frames[1].pc = 8
        cpu.frames[1].npc = 12
        run_to_halt(cpu)
        # After incfp, the write to r1 went to frame 1.
        assert cpu.frames[1].regs[1] == 7
        assert cpu.fp == 1

    def test_wide_constant(self):
        cpu, _, _ = build_cpu("""
            set 0x0FABCDEC, r1
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 0x0FABCDEC

    def test_instruction_count_and_cycles(self):
        cpu, _, _ = build_cpu("""
            addr r0, 1, r1
            addr r1, r1, r2
            halt
        """)
        run_to_halt(cpu)
        assert cpu.stats.instructions == 3
        assert cpu.stats.useful == 3


class TestControlFlow:
    def test_loop_sums_one_to_ten(self):
        cpu, _, _ = build_cpu("""
            set 0, r1        ; sum
            set 1, r2        ; i
        loop:
            cmpr r2, 10
            bg done
            addr r1, r2, r1
            addr r2, 1, r2
            ba loop
        done:
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 55

    def test_delay_slot_executes(self):
        cpu, _, _ = build_cpu("""
            ba over
            @addr r0, 5, r1  ; delay slot: must execute
            addr r0, 9, r2   ; skipped
        over:
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 5
        assert reg(cpu, "r2") == 0

    def test_untaken_branch_falls_through(self):
        cpu, _, _ = build_cpu("""
            cmp r0, 0
            bne away
            addr r0, 1, r1
        away:
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 1

    def test_call_and_ret(self):
        cpu, _, _ = build_cpu("""
            set 6, a0
            call double
            mov a0, r1
            halt
        double:
            addr a0, a0, a0
            ret
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 12

    def test_nested_calls_via_stack(self):
        # add3(x) = add1(x) + 2, saving ra on the stack.
        cpu, _, _ = build_cpu("""
            set 0x8000, sp
            set 1, a0
            call add3
            halt
        add3:
            st ra, [sp+0]
            addr sp, 4, sp
            call add1
            subr sp, 4, sp
            ld [sp+0], ra
            addr a0, 2, a0
            ret
        add1:
            addr a0, 1, a0
            ret
        """)
        run_to_halt(cpu)
        assert reg(cpu, "a0") == 4

    def test_jmpl_computed_jump(self):
        cpu, _, program = build_cpu("""
            set target, r5
            jmpl [r5+0], r6
            add r0, 1, r1    ; skipped (after slot)
        target:
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 0
        assert reg(cpu, "r6") != 0  # link register captured


class TestMemoryInstructions:
    def test_load_store_roundtrip(self):
        cpu, memory, _ = build_cpu("""
            set 0x1000, r1
            set 1234, r2
            st r2, [r1+0]
            ld [r1+0], r3
            halt
        """)
        run_to_halt(cpu)
        assert reg(cpu, "r3") == 1234
        assert memory.read_word(0x1000) == 1234

    def test_load_sets_fe_condition_bit(self):
        cpu, memory, _ = build_cpu("""
            set 0x1000, r1
            ldnt [r1+0], r2
            jempty was_empty
            halt
        was_empty:
            set 1, r3
            halt
        """)
        memory.set_full(0x1000, False)
        run_to_halt(cpu)
        assert reg(cpu, "r3") == 1

    def test_ldent_consumes_the_word(self):
        cpu, memory, _ = build_cpu("""
            set 0x1000, r1
            ldent [r1+0], r2
            halt
        """)
        memory.write_word(0x1000, 77)
        run_to_halt(cpu)
        assert reg(cpu, "r2") == 77
        assert not memory.is_full(0x1000)

    def test_stfnt_fills_the_word(self):
        cpu, memory, _ = build_cpu("""
            set 0x1000, r1
            set 5, r2
            stfnt r2, [r1+0]
            halt
        """)
        memory.set_full(0x1000, False)
        run_to_halt(cpu)
        assert memory.is_full(0x1000)
        assert memory.read_word(0x1000) == 5

    def test_empty_load_traps(self):
        cpu, memory, _ = build_cpu("""
            set 0x1000, r1
            ldtt [r1+0], r2
            halt
        """)
        memory.set_full(0x1000, False)
        seen = []

        def handler(cpu_, frame, trap):
            seen.append(trap.kind)
            return TrapAction.RESUME

        cpu.trap_table.register(TrapKind.EMPTY_LOAD, handler)
        run_to_halt(cpu)
        assert seen == [TrapKind.EMPTY_LOAD]

    def test_full_store_traps(self):
        cpu, memory, _ = build_cpu("""
            set 0x1000, r1
            sttt r2, [r1+0]
            halt
        """)
        seen = []
        cpu.trap_table.register(
            TrapKind.FULL_STORE,
            lambda c, f, t: seen.append(t.kind) or TrapAction.RESUME,
        )
        run_to_halt(cpu)
        assert seen == [TrapKind.FULL_STORE]

    def test_misaligned_access_traps(self):
        cpu, _, _ = build_cpu("""
            set 0x1002, r1
            ld [r1+0], r2
            halt
        """)
        seen = []
        cpu.trap_table.register(
            TrapKind.ALIGNMENT,
            lambda c, f, t: seen.append(t.address) or TrapAction.RESUME,
        )
        run_to_halt(cpu)
        assert seen == [0x1002]


class TestFutureTraps:
    FUTURE_WORD = 0x2000 | 0b101  # future-tagged pointer

    def test_strict_compute_on_future_traps(self):
        cpu, _, _ = build_cpu("""
            set %d, r1
            add r1, 4, r2
            halt
        """ % self.FUTURE_WORD)
        seen = []
        cpu.trap_table.register(
            TrapKind.FUTURE_COMPUTE,
            lambda c, f, t: seen.append(t.value) or TrapAction.RESUME,
        )
        run_to_halt(cpu)
        assert seen == [self.FUTURE_WORD]

    def test_load_through_future_pointer_traps(self):
        cpu, _, _ = build_cpu("""
            set %d, r1
            ld [r1+0], r2
            halt
        """ % self.FUTURE_WORD)
        seen = []
        cpu.trap_table.register(
            TrapKind.FUTURE_ADDRESS,
            lambda c, f, t: seen.append(t.value) or TrapAction.RESUME,
        )
        run_to_halt(cpu)
        assert seen == [self.FUTURE_WORD]

    def test_raw_load_ignores_future_tag(self):
        # The run-time system reads future cells with ldr.
        cpu, memory, _ = build_cpu("""
            set %d, r1
            ldr [r1+3], r2   ; +3 cancels the 101 tag bits... (0x2005+3=0x2008)
            halt
        """ % self.FUTURE_WORD)
        memory.write_word(0x2008, 99)
        run_to_halt(cpu)
        assert reg(cpu, "r2") == 99

    def test_trap_retry_reexecutes(self):
        # Handler replaces the future with a fixnum, then retries: the
        # same mechanics as the paper's future-touch trap (Section 6.2).
        cpu, _, _ = build_cpu("""
            set %d, r1
            add r1, 4, r2
            halt
        """ % self.FUTURE_WORD)

        def resolve(cpu_, frame, trap):
            cpu_.write_reg(1, make_fixnum(10), frame)
            return TrapAction.RETRY

        cpu.trap_table.register(TrapKind.FUTURE_COMPUTE, resolve)
        run_to_halt(cpu)
        assert fixnum_value(reg(cpu, "r2")) == 11


class TestTrapMechanism:
    def test_software_trap_dispatch(self):
        cpu, _, _ = build_cpu("""
            trap 42
            halt
        """)
        seen = []
        cpu.trap_table.register_software(
            42, lambda c, f, t: seen.append(t.vector) or TrapAction.RESUME,
        )
        run_to_halt(cpu)
        assert seen == [42]

    def test_unhandled_trap_raises(self):
        cpu, _, _ = build_cpu("trap 9\nhalt")
        with pytest.raises(ProcessorError):
            run_to_halt(cpu)

    def test_trap_squash_cycles_charged(self):
        cpu, _, _ = build_cpu("trap 1\nhalt")
        cpu.trap_table.register_software(
            1, lambda c, f, t: TrapAction.RESUME)
        run_to_halt(cpu)
        assert cpu.stats.trap == TRAP_SQUASH_CYCLES

    def test_trap_handler_halt_action(self):
        cpu, _, _ = build_cpu("trap 1\nnop\nnop")
        cpu.trap_table.register_software(1, lambda c, f, t: TrapAction.HALT)
        run_to_halt(cpu)
        assert cpu.halted

    def test_resume_skips_trapping_instruction(self):
        cpu, _, _ = build_cpu("""
            trap 1
            addr r0, 3, r1
            halt
        """)
        cpu.trap_table.register_software(1, lambda c, f, t: TrapAction.RESUME)
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 3

    def test_illegal_instruction_traps(self):
        cpu, memory, _ = build_cpu("nop\nhalt")
        memory.write_word(0, 0xEE000000)  # not a valid opcode
        seen = []
        cpu.trap_table.register(
            TrapKind.ILLEGAL,
            lambda c, f, t: seen.append(trap_kind_of(t)) or TrapAction.RESUME,
        )
        run_to_halt(cpu)
        assert seen


def trap_kind_of(trap):
    return trap.kind


class TestFramePointer:
    def test_incfp_decfp_wrap(self):
        cpu, _, _ = build_cpu("incfp\nhalt")
        # Frame 1 must have a valid PC chain before we switch into it:
        # point it at the halt.
        cpu.frames[1].pc = 4
        cpu.frames[1].npc = 8
        run_to_halt(cpu)
        assert cpu.fp == 1

    def test_rdfp(self):
        cpu, _, _ = build_cpu("rdfp r1\nhalt")
        run_to_halt(cpu)
        assert reg(cpu, "r1") == 0

    def test_stfp_switches(self):
        cpu, _, _ = build_cpu("""
            set 2, r1
            stfp r1
            halt
        """)
        cpu.frames[2].pc = 8
        cpu.frames[2].npc = 12
        run_to_halt(cpu)
        assert cpu.fp == 2

    def test_frame_registers_are_private(self):
        cpu, _, _ = build_cpu("""
            set 11, r1
            incfp
            set 22, r1
            halt
        """)
        cpu.frames[1].pc = 8
        cpu.frames[1].npc = 12
        run_to_halt(cpu)
        assert cpu.frames[0].regs[1] == 11
        assert cpu.frames[1].regs[1] == 22


class TestIPI:
    def test_ipi_delivered_between_instructions(self):
        cpu, _, _ = build_cpu("nop\nnop\nhalt")
        seen = []
        cpu.trap_table.register(
            TrapKind.IPI,
            lambda c, f, t: seen.append(t.value) or TrapAction.RETRY,
        )
        cpu.post_ipi("hello")
        run_to_halt(cpu)
        assert seen == ["hello"]

    def test_ipi_deferred_when_traps_disabled(self):
        cpu, _, _ = build_cpu("nop\nhalt")
        cpu.frame.psr.traps_enabled = False
        cpu.trap_table.register(
            TrapKind.IPI, lambda c, f, t: TrapAction.RETRY)
        cpu.post_ipi("later")
        run_to_halt(cpu)
        assert list(cpu.ipi_queue) == ["later"]


class TestPSRInstructions:
    def test_rdpsr_wrpsr_roundtrip(self):
        cpu, _, _ = build_cpu("""
            rdpsr r1
            or r1, 1, r2     ; set TID bit 0
            wrpsr r2
            halt
        """)
        run_to_halt(cpu)
        assert cpu.frame.psr.tid == 1
