"""Unit tests for PSR, task frames, FPU, and processor statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fpu import FPU, PHYSICAL_REGS, REGS_PER_CONTEXT
from repro.core.processor import Processor, ProcessorStats
from repro.core.psr import ET_BIT, PSR
from repro.core.task_frame import TaskFrame
from repro.errors import ProcessorError


class TestPSR:
    def test_default_traps_enabled(self):
        assert PSR().traps_enabled

    def test_ccs_roundtrip(self):
        psr = PSR()
        psr.set_ccs(True, False, True, False)
        assert (psr.n, psr.z, psr.v, psr.c) == (True, False, True, False)
        psr.set_ccs(False, True, False, True)
        assert (psr.n, psr.z, psr.v, psr.c) == (False, True, False, True)

    def test_fe_bit(self):
        psr = PSR()
        psr.fe = True
        assert psr.fe
        psr.fe = False
        assert not psr.fe

    def test_tid(self):
        psr = PSR()
        psr.tid = 0x1234
        assert psr.tid == 0x1234
        assert psr.traps_enabled   # untouched

    def test_trap_enable_toggle(self):
        psr = PSR()
        psr.traps_enabled = False
        assert not psr.traps_enabled
        assert psr.value & ET_BIT == 0

    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans(),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_fields_independent(self, n, z, v, c, tid):
        psr = PSR()
        psr.set_ccs(n, z, v, c)
        psr.tid = tid
        psr.fe = True
        assert (psr.n, psr.z, psr.v, psr.c) == (n, z, v, c)
        assert psr.tid == tid
        assert psr.fe


class TestTaskFrame:
    def test_save_load_state(self):
        frame = TaskFrame(0)
        frame.regs[3] = 42
        frame.pc, frame.npc = 0x100, 0x104
        frame.psr.tid = 7
        state = frame.save_state()
        frame.reset()
        assert frame.regs[3] == 0
        frame.load_state(state)
        assert frame.regs[3] == 42
        assert (frame.pc, frame.npc) == (0x100, 0x104)
        assert frame.psr.tid == 7

    def test_trap_window_retry(self):
        frame = TaskFrame(0)
        frame.pc, frame.npc = 0x20, 0x24
        frame.enter_trap()
        frame.pc = 0x999   # handler ran somewhere else
        frame.return_from_trap(retry=True)
        assert (frame.pc, frame.npc) == (0x20, 0x24)

    def test_trap_window_resume(self):
        frame = TaskFrame(0)
        frame.pc, frame.npc = 0x20, 0x24
        frame.enter_trap()
        frame.return_from_trap(retry=False)
        assert (frame.pc, frame.npc) == (0x24, 0x28)

    def test_occupancy(self):
        frame = TaskFrame(1)
        assert not frame.occupied
        frame.thread = object()
        assert frame.occupied


class TestFPU:
    def test_contexts_isolated(self):
        fpu = FPU()
        fpu.write(0, 3, 1.25)
        fpu.write(1, 3, 2.5)
        assert fpu.read(0, 3) == 1.25
        assert fpu.read(1, 3) == 2.5

    def test_windows_map_to_one_file(self):
        fpu = FPU()
        for ctx in range(4):
            for reg in range(REGS_PER_CONTEXT):
                fpu.write(ctx, reg, ctx * 10 + reg)
        snapshot = [fpu.read(c, r) for c in range(4)
                    for r in range(REGS_PER_CONTEXT)]
        assert len(snapshot) == PHYSICAL_REGS
        assert snapshot[9] == 11.0     # context 1, reg 1

    def test_ops(self):
        fpu = FPU()
        fpu.write(2, 0, 6.0)
        fpu.write(2, 1, 1.5)
        fpu.op(2, "fadd", 0, 1, 2)
        fpu.op(2, "fsub", 0, 1, 3)
        fpu.op(2, "fmul", 0, 1, 4)
        fpu.op(2, "fdiv", 0, 1, 5)
        assert fpu.read(2, 2) == 7.5
        assert fpu.read(2, 3) == 4.5
        assert fpu.read(2, 4) == 9.0
        assert fpu.read(2, 5) == 4.0

    def test_condition_bits_per_context(self):
        fpu = FPU()
        fpu.write(0, 0, 1.0)
        fpu.write(0, 1, 2.0)
        fpu.op(0, "fcmp", 0, 1, 0)
        assert fpu.condition(0)
        assert not fpu.condition(1)

    def test_save_restore_context(self):
        fpu = FPU()
        fpu.write(1, 0, 3.0)
        saved = fpu.context_registers(1)
        fpu.write(1, 0, 0.0)
        fpu.load_context(1, saved)
        assert fpu.read(1, 0) == 3.0

    def test_bad_register_raises(self):
        fpu = FPU()
        with pytest.raises(ProcessorError):
            fpu.read(0, 8)
        with pytest.raises(ProcessorError):
            fpu.read(4, 0)
        with pytest.raises(ProcessorError):
            fpu.op(0, "fsin", 0, 0, 0)

    def test_divide_by_zero(self):
        fpu = FPU()
        with pytest.raises(ProcessorError):
            fpu.op(0, "fdiv", 0, 1, 2)


class TestProcessorStats:
    def test_utilization(self):
        stats = ProcessorStats()
        stats._charge["useful"](80)
        stats._charge["idle"](20)
        assert stats.utilization() == 0.8

    def test_total_cycles_is_incremental(self):
        stats = ProcessorStats()
        for i, name in enumerate(("useful", "stall", "trap",
                                  "switch", "spin", "idle")):
            stats._charge[name](i + 1)
        categorical = (stats.useful + stats.stall + stats.trap
                       + stats.switch + stats.spin + stats.idle)
        assert stats.total_cycles == categorical == 21

    def test_snapshot_keys(self):
        snapshot = ProcessorStats().snapshot()
        for key in ("useful", "stall", "trap", "switch", "idle",
                    "instructions", "context_switches", "total_cycles"):
            assert key in snapshot

    def test_negative_charge_rejected(self):
        cpu = Processor()
        with pytest.raises(ProcessorError):
            cpu.charge(-1)

    def test_charge_categories(self):
        cpu = Processor()
        cpu.charge(3, "useful")
        cpu.charge(5, "switch")
        assert cpu.cycles == 8
        assert cpu.stats.useful == 3
        assert cpu.stats.switch == 5
