"""Differential lockstep harness: fast path vs. reference interpreter.

Every scenario runs three times from one compile — the superblock
JIT (``fastpath=True, jit=True``: generated code objects), the closure
tier (``fastpath=True, jit=False``: predecoded dispatch and superblock
fusion), and the reference (``fastpath=False``: the original decode +
if-chain interpreter on the per-instruction heapq loop) — and all runs
must agree on everything a program or an observer could see: the
result value, the final machine clock, every per-CPU cycle-category
counter (byte-identical ``snapshot()`` dicts), the architectural
register state, and printed output.

The fallback matrix then checks the dormant-hook contract from the
other side: attaching any single observability hook must push the
machine onto the reference loop *without changing a single cycle*.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import workloads
from repro.lang.compiler import compile_source
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.obs import Observation
from repro.obs.events import EventBus
from repro.obs.txn import TransactionTracer
from tests.integration.test_differential import future_programs, programs


def _build(compiled, config, fastpath, jit=True):
    if config.lazy_futures != compiled.wants_lazy_scheduling:
        config = config.replace(lazy_futures=compiled.wants_lazy_scheduling)
    return AlewifeMachine(compiled.program, config, fastpath=fastpath,
                          jit=jit)


def _run_pair(source, mode, config, args):
    """One compile, two runs; returns ((machine, result), (machine, result))."""
    compiled = compile_source(source, mode=mode)
    pair = []
    for fastpath in (True, False):
        machine = _build(compiled, config, fastpath)
        result = machine.run(entry=compiled.entry_label("main"), args=args)
        pair.append((machine, result))
    return pair


def _run_triple(source, mode, config, args):
    """One compile, three runs: JIT, closure tier, reference."""
    compiled = compile_source(source, mode=mode)
    runs = []
    for fastpath, jit in ((True, True), (True, False), (False, False)):
        machine = _build(compiled, config, fastpath, jit=jit)
        result = machine.run(entry=compiled.entry_label("main"), args=args)
        runs.append((machine, result))
    return runs


def _assert_triple(jit, closure, reference, expect_jit_runs=True):
    """All three tiers in lockstep; the JIT tier must have fired."""
    _assert_lockstep(jit, reference)
    _assert_lockstep(closure, reference)
    jit_machine = jit[0]
    assert all(not cpu.jit_runs for cpu in closure[0].cpus)
    if expect_jit_runs:
        assert any(cpu.jit_runs > 0 for cpu in jit_machine.cpus)


def _assert_lockstep(fast, reference):
    fast_machine, fast_result = fast
    ref_machine, ref_result = reference
    assert fast_machine.loop_used in ("fast-sequential", "fast-sliced")
    assert ref_machine.loop_used == "reference"
    assert fast_result.value == ref_result.value
    assert fast_result.cycles == ref_result.cycles
    assert fast_result.output == ref_result.output
    for fast_cpu, ref_cpu in zip(fast_machine.cpus, ref_machine.cpus):
        assert fast_cpu.cycles == ref_cpu.cycles
        assert fast_cpu.stats.snapshot() == ref_cpu.stats.snapshot()
        assert fast_cpu.stats.total_cycles == fast_cpu.cycles
        assert fast_cpu.globals == ref_cpu.globals
        assert fast_cpu.fp == ref_cpu.fp
        for fast_frame, ref_frame in zip(fast_cpu.frames, ref_cpu.frames):
            assert fast_frame.regs == ref_frame.regs
            assert fast_frame.pc == ref_frame.pc
            assert fast_frame.npc == ref_frame.npc
            # Thread ids come from a process-global counter (two
            # machines in one process never see the same tids), so the
            # PSR comparison masks the tid field out.
            assert (fast_frame.psr.value & ~0xFFFF
                    == ref_frame.psr.value & ~0xFFFF)


class TestBenchmarkLockstep:
    """The Mul-T benchmarks, across every execution configuration."""

    def test_fib_sequential(self):
        module = workloads.get("fib")
        runs = _run_triple(module.source(), "sequential",
                           MachineConfig(num_processors=1), (10,))
        assert runs[0][1].value == module.reference(10)
        _assert_triple(*runs)

    def test_fib_eager_p2(self):
        module = workloads.get("fib")
        runs = _run_triple(module.source(), "eager",
                           MachineConfig(num_processors=2), (10,))
        assert runs[0][1].value == module.reference(10)
        _assert_triple(*runs)

    def test_fib_lazy_p2(self):
        module = workloads.get("fib")
        runs = _run_triple(module.source(), "lazy",
                           MachineConfig(num_processors=2), (9,))
        assert runs[0][1].value == module.reference(9)
        _assert_triple(*runs)

    def test_fib_coherent_p4(self):
        module = workloads.get("fib")
        runs = _run_triple(
            module.source(), "eager",
            MachineConfig(num_processors=4, memory_mode="coherent"), (9,))
        assert runs[0][1].value == module.reference(9)
        _assert_triple(*runs)

    def test_queens_eager_p4(self):
        module = workloads.get("queens")
        runs = _run_triple(module.source(), "eager",
                           MachineConfig(num_processors=4), (4,))
        assert runs[0][1].value == module.reference(4)
        _assert_triple(*runs)

    def test_queens_sequential(self):
        module = workloads.get("queens")
        runs = _run_triple(module.source(), "sequential",
                           MachineConfig(num_processors=1), (4,))
        assert runs[0][1].value == module.reference(4)
        _assert_triple(*runs)

    def test_fast_sequential_actually_fuses(self):
        """The fast run must exercise the superblock executor, or this
        whole file proves nothing about it."""
        module = workloads.get("fib")
        compiled = compile_source(module.source(), mode="sequential")
        machine = _build(compiled, MachineConfig(num_processors=1), True)
        machine.run(entry=compiled.entry_label("main"), args=(10,))
        assert machine.loop_used == "fast-sequential"
        assert machine.cpus[0].superblocks > 0


_SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRandomizedLockstep:
    """Hypothesis-generated programs through both interpreters."""

    @_SETTINGS
    @given(programs())
    def test_random_sequential(self, source):
        runs = _run_triple(source, "sequential",
                           MachineConfig(num_processors=1), (3, 4))
        # Random programs may be too short to warm the JIT tier; the
        # lockstep assertions still hold regardless.
        _assert_triple(*runs, expect_jit_runs=False)

    @_SETTINGS
    @given(future_programs())
    def test_random_futures_eager_p2(self, source):
        runs = _run_triple(source, "eager",
                           MachineConfig(num_processors=2), (3, 4))
        _assert_triple(*runs, expect_jit_runs=False)


# -- the fallback matrix -----------------------------------------------------

def _dormant_baseline(compiled, config, args):
    machine = _build(compiled, config, True)
    result = machine.run(entry=compiled.entry_label("main"), args=args)
    assert machine.loop_used in ("fast-sequential", "fast-sliced")
    return machine, result


def _attach_trace(machine):
    for cpu in machine.cpus:
        cpu.trace_hook = lambda cpu, pc, instr: None


def _attach_profile(machine):
    for cpu in machine.cpus:
        cpu.profile_hook = lambda cpu, pc, instr: None


def _attach_events(machine):
    bus = EventBus()
    for cpu in machine.cpus:
        cpu.events = bus


def _attach_txn(machine):
    tracer = TransactionTracer()
    for cpu in machine.cpus:
        cpu.txn = tracer


def _attach_machine_events(machine):
    machine.events = EventBus()


class TestFallbackMatrix:
    """Each hook, attached alone, forces the reference loop — and the
    reference loop must be cycle-identical to the dormant fast run."""

    ATTACHERS = {
        "trace_hook": _attach_trace,
        "profile_hook": _attach_profile,
        "cpu_events": _attach_events,
        "cpu_txn": _attach_txn,
        "machine_events": _attach_machine_events,
    }

    @pytest.mark.parametrize("hook", sorted(ATTACHERS))
    def test_single_hook_forces_reference(self, hook):
        module = workloads.get("fib")
        compiled = compile_source(module.source(), mode="eager")
        config = MachineConfig(num_processors=2)
        _, dormant = _dormant_baseline(compiled, config, (9,))

        machine = _build(compiled, config, True)
        self.ATTACHERS[hook](machine)
        result = machine.run(entry=compiled.entry_label("main"), args=(9,))
        assert machine.loop_used == "reference"
        assert machine.cpus[0].superblocks == 0
        assert result.value == dormant.value
        assert result.cycles == dormant.cycles
        for cpu, dormant_row in zip(machine.cpus, dormant.stats.per_cpu):
            assert cpu.stats.snapshot() == dormant_row

    def test_lifetime_observation_conserves(self):
        """PR 4 conservation: a threads=True observation (which wires
        the lifetime accountant, and therefore the reference loop) must
        balance its ledger and agree with the dormant run's clock."""
        module = workloads.get("fib")
        compiled = compile_source(module.source(), mode="eager")
        config = MachineConfig(num_processors=2)
        _, dormant = _dormant_baseline(compiled, config, (9,))

        machine = _build(compiled, config, True)
        obs = Observation(threads=True, window=4096)
        obs.attach(machine)
        result = machine.run(entry=compiled.entry_label("main"), args=(9,))
        assert machine.loop_used == "reference"
        assert result.cycles == dormant.cycles
        assert result.value == dormant.value
        assert obs.lifetime.finalize(machine).check()["exact"]

    def test_sampler_forces_reference(self):
        module = workloads.get("fib")
        compiled = compile_source(module.source(), mode="eager")
        config = MachineConfig(num_processors=2)
        _, dormant = _dormant_baseline(compiled, config, (9,))

        machine = _build(compiled, config, True)
        obs = Observation(events=False, window=512)
        obs.attach(machine)
        result = machine.run(entry=compiled.entry_label("main"), args=(9,))
        assert machine.loop_used == "reference"
        assert result.cycles == dormant.cycles


class TestJitFallbackMatrix:
    """The fallback matrix again, with the JIT axis explicit: a hooked
    run (reference loop, JIT never fires) and a closure-tier run
    (``jit=False``) must both be cycle-identical to the dormant
    JIT-enabled fast run."""

    @pytest.mark.parametrize("hook", sorted(TestFallbackMatrix.ATTACHERS))
    def test_hooked_run_matches_dormant_jit(self, hook):
        module = workloads.get("fib")
        compiled = compile_source(module.source(), mode="eager")
        config = MachineConfig(num_processors=2)
        dormant_machine, dormant = _dormant_baseline(compiled, config, (9,))
        assert any(cpu.jit_runs > 0 for cpu in dormant_machine.cpus)

        machine = _build(compiled, config, True, jit=True)
        TestFallbackMatrix.ATTACHERS[hook](machine)
        result = machine.run(entry=compiled.entry_label("main"), args=(9,))
        assert machine.loop_used == "reference"
        assert all(not cpu.jit_runs for cpu in machine.cpus)
        assert result.value == dormant.value
        assert result.cycles == dormant.cycles
        for cpu, dormant_row in zip(machine.cpus, dormant.stats.per_cpu):
            assert cpu.stats.snapshot() == dormant_row

    def test_jit_disabled_matches_dormant_jit(self):
        module = workloads.get("fib")
        compiled = compile_source(module.source(), mode="eager")
        config = MachineConfig(num_processors=2)
        _, dormant = _dormant_baseline(compiled, config, (9,))

        machine = _build(compiled, config, True, jit=False)
        result = machine.run(entry=compiled.entry_label("main"), args=(9,))
        assert machine.loop_used in ("fast-sequential", "fast-sliced")
        assert all(not cpu.jit_runs for cpu in machine.cpus)
        assert result.value == dormant.value
        assert result.cycles == dormant.cycles
        for cpu, dormant_row in zip(machine.cpus, dormant.stats.per_cpu):
            assert cpu.stats.snapshot() == dormant_row
