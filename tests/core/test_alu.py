"""ALU semantics: tagged arithmetic, condition codes, future traps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import alu
from repro.core.psr import PSR
from repro.core.traps import TrapKind, TrapSignal
from repro.isa.instructions import Opcode
from repro.isa.tags import (
    FIXNUM_MAX, FIXNUM_MIN, WORD_MASK, fixnum_value, make_fixnum, make_future,
)

fixnums = st.integers(min_value=FIXNUM_MIN // 2, max_value=FIXNUM_MAX // 2)


def run(op, a, b):
    return alu.execute(op, a, b)


class TestTaggedArithmetic:
    def test_add_fixnums(self):
        result, _ = run(Opcode.ADD, make_fixnum(3), make_fixnum(4))
        assert fixnum_value(result) == 7

    def test_sub_fixnums(self):
        result, _ = run(Opcode.SUB, make_fixnum(3), make_fixnum(10))
        assert fixnum_value(result) == -7

    def test_mul_fixnums(self):
        result, _ = run(Opcode.MUL, make_fixnum(-6), make_fixnum(7))
        assert fixnum_value(result) == -42

    def test_div_truncates_toward_zero(self):
        result, _ = run(Opcode.DIV, make_fixnum(-7), make_fixnum(2))
        assert fixnum_value(result) == -3

    def test_rem_sign_follows_dividend(self):
        result, _ = run(Opcode.REM, make_fixnum(-7), make_fixnum(2))
        assert fixnum_value(result) == -1

    def test_div_by_zero_traps(self):
        with pytest.raises(TrapSignal) as info:
            run(Opcode.DIV, make_fixnum(1), make_fixnum(0))
        assert info.value.trap.kind is TrapKind.ILLEGAL

    @given(fixnums, fixnums)
    def test_add_matches_python(self, x, y):
        result, _ = run(Opcode.ADD, make_fixnum(x), make_fixnum(y))
        assert fixnum_value(result) == x + y

    @given(fixnums, fixnums)
    def test_sub_matches_python(self, x, y):
        result, _ = run(Opcode.SUB, make_fixnum(x), make_fixnum(y))
        assert fixnum_value(result) == x - y

    @given(st.integers(min_value=-23000, max_value=23000),
           st.integers(min_value=-23000, max_value=23000))
    def test_mul_matches_python(self, x, y):
        result, _ = run(Opcode.MUL, make_fixnum(x), make_fixnum(y))
        assert fixnum_value(result) == x * y

    @given(fixnums, fixnums.filter(lambda y: y != 0))
    def test_div_rem_identity(self, x, y):
        q, _ = run(Opcode.DIV, make_fixnum(x), make_fixnum(y))
        r, _ = run(Opcode.REM, make_fixnum(x), make_fixnum(y))
        assert fixnum_value(q) * y + fixnum_value(r) == x


class TestFutureDetection:
    """Strict ops trap when an operand's LSB is set (paper Section 5)."""

    def test_add_traps_on_future_first_operand(self):
        with pytest.raises(TrapSignal) as info:
            run(Opcode.ADD, make_future(8), make_fixnum(1))
        assert info.value.trap.kind is TrapKind.FUTURE_COMPUTE
        assert info.value.trap.value == make_future(8)

    def test_add_traps_on_future_second_operand(self):
        with pytest.raises(TrapSignal):
            run(Opcode.ADD, make_fixnum(1), make_future(8))

    def test_cmp_traps_on_future(self):
        with pytest.raises(TrapSignal):
            run(Opcode.CMP, make_future(16), make_fixnum(0))

    @pytest.mark.parametrize("op", [Opcode.ADD, Opcode.SUB, Opcode.MUL,
                                    Opcode.DIV, Opcode.REM, Opcode.CMP])
    def test_all_strict_ops_trap(self, op):
        with pytest.raises(TrapSignal):
            run(op, make_future(8), make_fixnum(2))

    @pytest.mark.parametrize("op", [Opcode.AND, Opcode.OR, Opcode.XOR,
                                    Opcode.SLL, Opcode.SRL, Opcode.SRA,
                                    Opcode.ADDR, Opcode.SUBR])
    def test_raw_ops_never_trap(self, op):
        # Raw logic is how the run-time system manipulates future words.
        result, _ = run(op, make_future(8), 2)
        assert isinstance(result, int)


class TestConditionCodes:
    def test_zero_flag(self):
        _, (n, z, v, c) = run(Opcode.SUB, make_fixnum(5), make_fixnum(5))
        assert z and not n

    def test_negative_flag(self):
        _, (n, z, v, c) = run(Opcode.SUB, make_fixnum(1), make_fixnum(2))
        assert n and not z

    def test_carry_on_borrow(self):
        _, (n, z, v, c) = run(Opcode.SUBR, 1, 2)
        assert c

    def test_overflow_on_add(self):
        _, (n, z, v, c) = run(Opcode.ADDR, 0x7FFFFFFF, 1)
        assert v

    def test_no_overflow_normal_add(self):
        _, (n, z, v, c) = run(Opcode.ADDR, 5, 6)
        assert not v and not c


class TestLogic:
    def test_and_or_xor(self):
        assert run(Opcode.AND, 0b1100, 0b1010)[0] == 0b1000
        assert run(Opcode.OR, 0b1100, 0b1010)[0] == 0b1110
        assert run(Opcode.XOR, 0b1100, 0b1010)[0] == 0b0110

    def test_andn(self):
        assert run(Opcode.ANDN, 0b1111, 0b0101)[0] == 0b1010

    def test_shifts(self):
        assert run(Opcode.SLL, 1, 4)[0] == 16
        assert run(Opcode.SRL, 0x80000000, 31)[0] == 1
        assert run(Opcode.SRA, 0x80000000, 31)[0] == WORD_MASK

    def test_shift_counts_mod_32(self):
        assert run(Opcode.SLL, 1, 33)[0] == 2

    @given(st.integers(min_value=0, max_value=WORD_MASK),
           st.integers(min_value=0, max_value=31))
    def test_sll_srl_inverse_low_bits(self, x, k):
        shifted, _ = run(Opcode.SLL, x, k)
        back, _ = run(Opcode.SRL, shifted, k)
        assert back == (x << k & WORD_MASK) >> k


class TestBranchConditions:
    def _psr_after_cmp(self, a, b):
        psr = PSR()
        _, ccs = run(Opcode.CMP, make_fixnum(a), make_fixnum(b))
        psr.set_ccs(*ccs)
        return psr

    @pytest.mark.parametrize("a,b,op,expected", [
        (1, 1, Opcode.BE, True),
        (1, 2, Opcode.BE, False),
        (1, 2, Opcode.BNE, True),
        (1, 2, Opcode.BL, True),
        (2, 1, Opcode.BL, False),
        (1, 1, Opcode.BLE, True),
        (2, 1, Opcode.BG, True),
        (1, 1, Opcode.BG, False),
        (1, 1, Opcode.BGE, True),
        (-5, 3, Opcode.BL, True),
        (-5, -6, Opcode.BG, True),
    ])
    def test_signed_comparisons(self, a, b, op, expected):
        assert alu.branch_taken(op, self._psr_after_cmp(a, b)) is expected

    def test_ba_bn(self):
        psr = PSR()
        assert alu.branch_taken(Opcode.BA, psr)
        assert not alu.branch_taken(Opcode.BN, psr)

    def test_jfull_jempty(self):
        psr = PSR()
        psr.fe = True
        assert alu.branch_taken(Opcode.JFULL, psr)
        assert not alu.branch_taken(Opcode.JEMPTY, psr)
        psr.fe = False
        assert not alu.branch_taken(Opcode.JFULL, psr)
        assert alu.branch_taken(Opcode.JEMPTY, psr)

    @given(fixnums, fixnums)
    def test_trichotomy(self, a, b):
        psr = self._psr_after_cmp(a, b)
        less = alu.branch_taken(Opcode.BL, psr)
        equal = alu.branch_taken(Opcode.BE, psr)
        greater = alu.branch_taken(Opcode.BG, psr)
        assert [less, equal, greater].count(True) == 1
        assert less == (a < b) and equal == (a == b) and greater == (a > b)
