"""Property-based coherence checking: random access interleavings
through the controllers must preserve the directory invariants and
never lose a write (single-writer + freshness)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.instructions import LOAD_FLAVORS, Opcode, STORE_FLAVORS
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.runtime import stubs

_LOAD = LOAD_FLAVORS[Opcode.LDNW]    # wait-flavors: complete synchronously
_STORE = STORE_FLAVORS[Opcode.STNW]

_BLOCKS = [0x5000 + 16 * i for i in range(6)]

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),        # node
        st.booleans(),                                # is_write
        st.integers(min_value=0, max_value=5),        # block index
        st.integers(min_value=0, max_value=1000),     # value (writes)
    ),
    min_size=1, max_size=120,
)


def build_machine(processors=4):
    source = stubs.thread_start_stub() + "main:\n    set 0, a0\n    ret\n"
    config = MachineConfig(num_processors=processors,
                           memory_mode="coherent",
                           cache_bytes=512)    # tiny: force evictions
    return AlewifeMachine(assemble(source), config)


class TestCoherenceProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(operations)
    def test_reads_always_see_last_write(self, ops):
        machine = build_machine()
        controllers = machine.fabric.controllers
        cpus = machine.cpus
        expected = {}
        for node, is_write, block_index, value in ops:
            address = _BLOCKS[block_index]
            if is_write:
                outcome = controllers[node].store(
                    address, value, _STORE, context=cpus[node])
                assert outcome.ok
                expected[address] = value
                # A store advances that node's local clock, like the
                # event loop would.
                cpus[node].charge(outcome.cycles, "useful")
            else:
                outcome = controllers[node].load(
                    address, _LOAD, context=cpus[node])
                assert outcome.ok
                cpus[node].charge(outcome.cycles, "useful")
                assert outcome.value == expected.get(address, 0), (
                    "node %d read stale data at %#x" % (node, address))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(operations)
    def test_directory_invariants_hold_throughout(self, ops):
        machine = build_machine()
        controllers = machine.fabric.controllers
        cpus = machine.cpus
        for node, is_write, block_index, value in ops:
            address = _BLOCKS[block_index]
            if is_write:
                controllers[node].store(address, value, _STORE,
                                        context=cpus[node])
            else:
                controllers[node].load(address, _LOAD, context=cpus[node])
            machine.fabric.check_coherence_invariants()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(operations)
    def test_at_most_one_modified_copy(self, ops):
        from repro.mem.cache import LineState
        machine = build_machine()
        controllers = machine.fabric.controllers
        cpus = machine.cpus
        for node, is_write, block_index, value in ops:
            address = _BLOCKS[block_index]
            if is_write:
                controllers[node].store(address, value, _STORE,
                                        context=cpus[node])
            else:
                controllers[node].load(address, _LOAD, context=cpus[node])
            holders = [
                n for n, cache in enumerate(machine.fabric.caches)
                if cache.contents().get(address) is LineState.MODIFIED
            ]
            assert len(holders) <= 1, (
                "block %#x modified in caches %s" % (address, holders))
