"""Out-of-band controller mechanisms: LDIO/STIO registers, FLUSH +
fence counters, IPIs from assembly, and block transfer (Section 3.4)."""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.machine.alewife import AlewifeMachine
from repro.machine.config import MachineConfig
from repro.mem.controller import (
    IO_BT_DST, IO_BT_GO, IO_BT_SRC, IO_FENCE, IO_NODE_ID,
)
from repro.runtime import stubs


def coherent_machine(body, processors=2, **overrides):
    source = stubs.thread_start_stub() + body
    config = MachineConfig(num_processors=processors,
                           memory_mode="coherent", **overrides)
    return AlewifeMachine(assemble(source), config)


SIMPLE = """
main:
    set 0, a0
    ret
"""


class TestIORegisters:
    def test_node_id_register(self):
        machine = coherent_machine("""
        main:
            set 0xFFFF, t0
            sll t0, 16, t0
            ldio [t0+4], a0      ; IO_NODE_ID
            sll a0, 2, a0        ; fixnum it for the result decode
            ret
        """)
        result = machine.run()
        assert result.value == 0     # main runs on node 0

    def test_unmapped_register_raises(self):
        machine = coherent_machine(SIMPLE)
        controller = machine.fabric.controllers[0]
        with pytest.raises(SimulationError):
            controller.ldio(0xFFFF00F0)
        with pytest.raises(SimulationError):
            controller.stio(0xFFFF00F0, 0)


class TestFlushAndFence:
    def test_flush_dirty_line_raises_fence_then_acks(self):
        machine = coherent_machine("""
        main:
            set 0x6010, t0       ; block homed on node 1: remote ack
            set 100, t1
            st t1, [t0+0]        ; bring the block in modified
            flush [t0+0]
            set 0xFFFF, t2
            sll t2, 16, t2
            ldio [t2+0], t3      ; fence count right after the flush
            set 3000, t4
        spin:
            cmpr t4, 0
            bg spin
            @subr t4, 1, t4
            ldio [t2+0], t5      ; fence count after the ack landed
            sll t3, 2, t3
            sll t5, 2, t5
            addr t3, t5, t6
            or t3, 0, a0
            mov t6, a0
            ret
        """, processors=2)
        result = machine.run()
        # Immediately after the flush the counter was 1; after waiting
        # it drained to 0, so the sum is fixnum(1 + 0) = 1.
        assert result.value == 1
        cache = machine.fabric.caches[0]
        assert cache.stats.flushes == 1

    def test_flush_invalidates(self):
        machine = coherent_machine(SIMPLE)
        controller = machine.fabric.controllers[0]
        from repro.isa.instructions import LOAD_FLAVORS, Opcode
        cpu = machine.cpus[0]
        controller.store(0x5000, 7, _store_flavor(), context=cpu)
        assert machine.fabric.caches[0].probe(0x5000) is not None
        controller.flush(0x5000, context=cpu)
        assert machine.fabric.caches[0].probe(0x5000) is None


def _store_flavor():
    from repro.isa.instructions import STORE_FLAVORS, Opcode
    return STORE_FLAVORS[Opcode.STNW]


def _load_flavor():
    from repro.isa.instructions import LOAD_FLAVORS, Opcode
    return LOAD_FLAVORS[Opcode.LDNW]


class TestBlockTransfer:
    def test_copies_words_with_network_charge(self):
        machine = coherent_machine(SIMPLE)
        memory = machine.memory
        for i in range(8):
            memory.write_word(0x5000 + 4 * i, 100 + i)
        controller = machine.fabric.controllers[0]
        cpu = machine.cpus[0]
        controller.stio(IO_BT_SRC, 0x5000, context=cpu)
        controller.stio(IO_BT_DST, 0x5800, context=cpu)
        outcome = controller.stio(IO_BT_GO, 8, context=cpu)
        assert outcome.ok and outcome.cycles >= 8
        assert [memory.read_word(0x5800 + 4 * i) for i in range(8)] == \
            [100 + i for i in range(8)]
        assert controller.stats.block_transfers == 1

    def test_cheaper_than_per_word_remote_misses(self):
        """The Section 3.4 rationale: one block transfer beats N remote
        miss round trips for bulk data."""
        machine = coherent_machine(SIMPLE, processors=4)
        controller = machine.fabric.controllers[0]
        cpu = machine.cpus[0]
        words = 64
        controller.stio(IO_BT_SRC, 0x5000, context=cpu)
        controller.stio(IO_BT_DST, 0x5000 + words * 4, context=cpu)
        bt_cycles = controller.stio(IO_BT_GO, words, context=cpu).cycles

        miss_cycles = 0
        flavor = _load_flavor()
        base = 0x9000
        for i in range(0, words * 4, machine.config.cache_block_bytes):
            outcome = controller.load(base + i, flavor, context=cpu)
            miss_cycles += outcome.cycles
        assert bt_cycles < miss_cycles


class TestHomeInterleaving:
    def test_blocks_spread_over_nodes(self):
        machine = coherent_machine(SIMPLE, processors=4)
        homes = {machine.fabric.home_of(b * 16) for b in range(8)}
        assert homes == {0, 1, 2, 3}
