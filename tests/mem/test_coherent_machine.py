"""End-to-end tests of the full ALEWIFE configuration: caches,
directory coherence, network, and switch-on-remote-miss."""

import pytest

from repro.lang.run import run_mult
from repro.machine.config import MachineConfig
from repro import workloads

FIB = """
(define (fib n)
  (if (< n 2) n (+ (future (fib (- n 1))) (future (fib (- n 2))))))
(define (main) (fib 8))
"""


def coherent_config(processors, **overrides):
    defaults = dict(num_processors=processors, memory_mode="coherent")
    defaults.update(overrides)
    return MachineConfig(**defaults)


def run_coherent(source, processors=2, mode="eager", args=(), **overrides):
    return run_mult(source, mode=mode, args=args,
                    config=coherent_config(processors, **overrides))


class TestCorrectness:
    def test_fib_sequential(self):
        result = run_coherent(FIB, processors=1, mode="sequential")
        assert result.value == 21

    def test_fib_eager_two_nodes(self):
        result = run_coherent(FIB, processors=2)
        assert result.value == 21

    def test_fib_lazy_four_nodes(self):
        result = run_coherent(FIB, processors=4, mode="lazy")
        assert result.value == 21

    @pytest.mark.parametrize("name", ["factor", "speech"])
    def test_other_workloads(self, name):
        module = workloads.get(name)
        args = (2, 9) if name == "factor" else (3, 4)
        expected = (module.reference(2, 8) if name == "factor"
                    else module.reference(3, 4))
        result = run_coherent(module.source(), processors=2, args=args)
        assert result.value == expected


class TestCoherenceBehavior:
    def test_remote_misses_cause_context_switch_traps(self):
        from repro.lang.compiler import compile_source
        from repro.machine.alewife import AlewifeMachine
        compiled = compile_source(FIB, mode="eager")
        machine = AlewifeMachine(compiled.program, coherent_config(2))
        machine.run(entry=compiled.entry_label())
        controllers = machine.fabric.controllers
        assert sum(c.stats.remote_misses for c in controllers) > 0
        assert sum(c.stats.traps for c in controllers) > 0

    def test_invariants_hold_after_run(self):
        from repro.lang.compiler import compile_source
        from repro.machine.alewife import AlewifeMachine
        compiled = compile_source(FIB, mode="eager")
        machine = AlewifeMachine(compiled.program, coherent_config(4))
        machine.run(entry=compiled.entry_label())
        machine.fabric.check_coherence_invariants()

    def test_network_carried_traffic(self):
        from repro.lang.compiler import compile_source
        from repro.machine.alewife import AlewifeMachine
        compiled = compile_source(FIB, mode="eager")
        machine = AlewifeMachine(compiled.program, coherent_config(2))
        machine.run(entry=compiled.entry_label())
        assert machine.fabric.network.stats.messages > 0

    def test_miss_rate_reported(self):
        from repro.lang.compiler import compile_source
        from repro.machine.alewife import AlewifeMachine
        compiled = compile_source(FIB, mode="sequential")
        machine = AlewifeMachine(compiled.program, coherent_config(1))
        machine.run(entry=compiled.entry_label())
        rate = machine.fabric.aggregate_miss_rate()
        assert 0 < rate < 0.5

    def test_coherent_slower_than_ideal(self):
        ideal = run_mult(FIB, mode="sequential",
                         config=MachineConfig(num_processors=1))
        coherent = run_coherent(FIB, processors=1, mode="sequential")
        assert coherent.cycles > ideal.cycles

    def test_bigger_cache_fewer_misses(self):
        from repro.lang.compiler import compile_source
        from repro.machine.alewife import AlewifeMachine
        module = workloads.get("speech")
        rates = {}
        for size in (256, 64 * 1024):
            compiled = compile_source(module.source(), mode="sequential")
            machine = AlewifeMachine(
                compiled.program, coherent_config(1, cache_bytes=size))
            machine.run(entry=compiled.entry_label(), args=(4, 8))
            rates[size] = machine.fabric.aggregate_miss_rate()
        assert rates[64 * 1024] < rates[256]


class TestMultithreadingHidesLatency:
    def test_more_frames_better_utilization(self):
        """The paper's core claim, on the executable machine: with
        remote latencies, multiple hardware contexts raise utilization."""
        module = workloads.get("factor")
        args = (2, 17)
        results = {}
        for frames in (1, 4):
            result = run_coherent(module.source(), processors=2,
                                  mode="eager", args=args,
                                  num_task_frames=frames)
            results[frames] = result.stats.utilization
        assert results[4] >= results[1]
