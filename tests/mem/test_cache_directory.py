"""Cache array and directory protocol unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.cache import Cache, LineState
from repro.mem.directory import Directory, DirState


class TestCache:
    def make(self, **kwargs):
        defaults = dict(size_bytes=1024, block_bytes=16, assoc=2)
        defaults.update(kwargs)
        return Cache(**defaults)

    def test_miss_then_hit(self):
        cache = self.make()
        assert cache.lookup(0x100) is None
        cache.install(0x100, LineState.SHARED)
        line = cache.lookup(0x100)
        assert line is not None and line.state is LineState.SHARED

    def test_block_granularity(self):
        cache = self.make()
        cache.install(0x100, LineState.SHARED)
        assert cache.lookup(0x10C) is not None    # same 16-byte block
        assert cache.lookup(0x110) is None        # next block

    def test_lru_eviction(self):
        cache = self.make()  # 2-way: set count = 1024/32 = 32 sets
        stride = 16 * 32     # same set
        cache.install(0x0, LineState.SHARED)
        cache.install(stride, LineState.SHARED)
        cache.lookup(0x0)    # touch: 0x0 is now MRU
        displaced = cache.install(2 * stride, LineState.SHARED)
        assert displaced == (stride, LineState.SHARED)
        assert cache.lookup(0x0) is not None
        assert cache.lookup(stride) is None

    def test_invalidate(self):
        cache = self.make()
        cache.install(0x40, LineState.MODIFIED)
        old = cache.invalidate(0x40)
        assert old is LineState.MODIFIED
        assert cache.lookup(0x40) is None
        assert cache.stats.invalidations_received == 1

    def test_downgrade(self):
        cache = self.make()
        cache.install(0x40, LineState.MODIFIED)
        assert cache.downgrade(0x40)
        assert cache.lookup(0x40).state is LineState.SHARED
        assert not cache.downgrade(0x40)  # already shared

    def test_flush_dirty_raises_fence(self):
        cache = self.make()
        cache.install(0x40, LineState.MODIFIED)
        assert cache.flush(0x40, context=1)
        assert cache.fence_count(1) == 1
        cache.fence_ack(1)
        assert cache.fence_count(1) == 0

    def test_flush_clean_no_fence(self):
        cache = self.make()
        cache.install(0x40, LineState.SHARED)
        assert not cache.flush(0x40, context=0)
        assert cache.fence_count(0) == 0

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            Cache(size_bytes=1000, block_bytes=16, assoc=2)
        with pytest.raises(ConfigError):
            Cache(size_bytes=1024, block_bytes=12, assoc=2)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    def test_install_then_lookup_property(self, blocks):
        cache = self.make(size_bytes=4096, assoc=4)
        for b in blocks:
            cache.install(b * 16, LineState.SHARED)
        # The most recently installed block is always present.
        assert cache.lookup(blocks[-1] * 16) is not None
        # Capacity is respected.
        assert len(cache.contents()) <= 4096 // 16


class TestDirectory:
    def test_first_read_uncached_to_shared(self):
        directory = Directory(0)
        assert directory.handle_read(0x100, requester=1) is None
        entry = directory.entry(0x100)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1}

    def test_write_invalidates_sharers(self):
        directory = Directory(0)
        directory.handle_read(0x100, 1)
        directory.handle_read(0x100, 2)
        directory.handle_read(0x100, 3)
        invalidees, fetch = directory.handle_write(0x100, 1)
        assert invalidees == {2, 3}
        assert fetch is None
        entry = directory.entry(0x100)
        assert entry.state is DirState.MODIFIED and entry.owner == 1

    def test_read_of_modified_fetches_owner(self):
        directory = Directory(0)
        directory.handle_write(0x100, 2)
        fetch = directory.handle_read(0x100, 1)
        assert fetch == 2
        entry = directory.entry(0x100)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1, 2}

    def test_write_after_write_fetches_previous_owner(self):
        directory = Directory(0)
        directory.handle_write(0x100, 2)
        invalidees, fetch = directory.handle_write(0x100, 3)
        assert fetch == 2
        assert invalidees == {2}
        assert directory.entry(0x100).owner == 3

    def test_owner_rewrite_is_free(self):
        directory = Directory(0)
        directory.handle_write(0x100, 2)
        invalidees, fetch = directory.handle_write(0x100, 2)
        assert invalidees == set() and fetch is None

    def test_eviction_clears_sharer(self):
        directory = Directory(0)
        directory.handle_read(0x100, 1)
        directory.handle_read(0x100, 2)
        directory.handle_eviction(0x100, 1, was_modified=False)
        assert directory.entry(0x100).sharers == {2}
        directory.handle_eviction(0x100, 2, was_modified=False)
        assert directory.entry(0x100).state is DirState.UNCACHED

    def test_modified_eviction(self):
        directory = Directory(0)
        directory.handle_write(0x100, 1)
        directory.handle_eviction(0x100, 1, was_modified=True)
        assert directory.entry(0x100).state is DirState.UNCACHED

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=3)),
                    max_size=60))
    def test_single_owner_invariant(self, operations):
        """After any op sequence, at most one owner, and sharers only in
        the shared state."""
        directory = Directory(0)
        for is_write, node in operations:
            if is_write:
                directory.handle_write(0x40, node)
            else:
                directory.handle_read(0x40, node)
        entry = directory.entry(0x40)
        if entry.state is DirState.MODIFIED:
            assert entry.owner is not None
            assert not entry.sharers
        elif entry.state is DirState.SHARED:
            assert entry.owner is None
            assert entry.sharers
